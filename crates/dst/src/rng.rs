//! The simulation's only randomness source: a seeded splitmix64.
//!
//! Every nondeterminism point in a simulated run — poll order, packet
//! delay, action choice — draws from a [`SimRng`], so the whole run is a
//! pure function of the `u64` seed. splitmix64 is the repo's standard
//! test PRNG (see `tests/common` and the fabric's jitter hash): tiny,
//! statistically fine for scheduling, and trivially reproducible.

/// Deterministic splitmix64 PRNG.
#[derive(Debug, Clone)]
pub struct SimRng {
    state: u64,
}

impl SimRng {
    /// A generator whose entire stream is determined by `seed`.
    pub fn new(seed: u64) -> SimRng {
        SimRng { state: seed }
    }

    /// Next raw 64-bit draw.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform draw in `0..n` (`n > 0`).
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        self.next_u64() % n
    }

    /// Uniform index in `0..n` (`n > 0`).
    pub fn usize_below(&mut self, n: usize) -> usize {
        self.below(n as u64) as usize
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Bernoulli draw with probability `p`.
    pub fn chance(&mut self, p: f64) -> bool {
        self.f64() < p
    }

    /// A uniformly random permutation of `0..n` (Fisher–Yates).
    pub fn shuffled(&mut self, n: usize) -> Vec<usize> {
        let mut perm: Vec<usize> = (0..n).collect();
        for i in (1..n).rev() {
            perm.swap(i, self.usize_below(i + 1));
        }
        perm
    }

    /// An independent generator derived from this one's stream, for
    /// components that must not perturb each other's draw sequence.
    pub fn fork(&mut self) -> SimRng {
        // Re-mix so the child's stream shares no prefix with the parent.
        SimRng::new(self.next_u64() ^ 0x5851_f42d_4c95_7f2d)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::new(42);
        let mut b = SimRng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SimRng::new(1);
        let mut b = SimRng::new(2);
        assert_ne!(
            (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn shuffled_is_a_permutation() {
        let mut rng = SimRng::new(7);
        for n in [0usize, 1, 2, 5, 17] {
            let perm = rng.shuffled(n);
            let mut sorted = perm.clone();
            sorted.sort_unstable();
            assert_eq!(sorted, (0..n).collect::<Vec<_>>());
        }
    }

    #[test]
    fn shuffles_vary_across_draws() {
        let mut rng = SimRng::new(9);
        let perms: Vec<Vec<usize>> = (0..16).map(|_| rng.shuffled(8)).collect();
        assert!(perms.windows(2).any(|w| w[0] != w[1]));
    }

    #[test]
    fn f64_in_unit_interval_and_chance_extremes() {
        let mut rng = SimRng::new(3);
        for _ in 0..1000 {
            let x = rng.f64();
            assert!((0.0..1.0).contains(&x));
        }
        assert!(!rng.chance(0.0));
        assert!(rng.chance(1.0));
    }

    #[test]
    fn fork_diverges_from_parent() {
        let mut parent = SimRng::new(11);
        let mut child = parent.fork();
        assert_ne!(
            (0..8).map(|_| parent.next_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| child.next_u64()).collect::<Vec<_>>()
        );
    }
}

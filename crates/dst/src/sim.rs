//! The cooperative multi-rank simulation runner.
//!
//! A [`Sim`] owns an in-process MPI world under a frozen virtual clock
//! and drives it one *schedule step* at a time. Each step the seeded
//! action generator picks one of:
//!
//! * **progress** — one rank's default stream runs one sweep (the
//!   schedule controller permutes its task poll order);
//! * **advance** — virtual time moves forward by a randomized quantum,
//!   letting in-flight packets arrive and timeouts fire;
//! * **detector tick** — one rank's failure detector runs one injected
//!   detection pass (only when resilience is enabled).
//!
//! Because the clock is virtual and the only thread is the caller's, the
//! run is a pure function of [`SimConfig::seed`]: replaying a seed
//! reproduces every poll order, packet arrival, and failure detection,
//! byte-for-byte in the trace.
//!
//! **Scenarios must stay nonblocking.** All ranks run on the caller's
//! thread, so `wait()`/`recv()` style blocking calls would spin forever
//! waiting for peers that only make progress when *this* loop drives
//! them. Use `isend`/`irecv` + `is_complete`/`take`, collective futures,
//! and [`Sim::run_until`].

use std::sync::Arc;

use mpfa_mpi::{Comm, DetectorConfig, Proc, Resilience, World, WorldConfig};

use crate::clock::{virtual_time, VirtualClockGuard};
use crate::rng::SimRng;
use crate::schedule::{Schedule, ScheduleCfg};
use crate::trace::Action;

/// Everything that defines one simulated world + schedule.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// World size.
    pub ranks: usize,
    /// The seed; the entire run derives from it.
    pub seed: u64,
    /// Schedule-step budget for [`Sim::run_until`] (a liveness backstop,
    /// not a tuning knob — runs that hit it count as failures).
    pub max_steps: u64,
    /// Base duration of one **advance** step, seconds; actual advances
    /// are uniform in `[0.5, 1.5)` quanta.
    pub time_quantum: f64,
    /// One-way fabric latency, seconds (applies intra- and inter-node).
    pub latency: f64,
    /// Enable the ULFM resilience stack on every rank with this detector
    /// configuration (required for [`Sim::kill_at`] scenarios).
    pub resilience: Option<DetectorConfig>,
    /// Perturbation knobs for the schedule controller.
    pub schedule: ScheduleCfg,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            ranks: 2,
            seed: 0,
            max_steps: 100_000,
            time_quantum: 1e-6,
            latency: 1e-6,
            resilience: None,
            schedule: ScheduleCfg::default(),
        }
    }
}

impl SimConfig {
    /// A default config over `ranks` ranks.
    pub fn ranks(ranks: usize) -> SimConfig {
        SimConfig {
            ranks,
            ..SimConfig::default()
        }
    }

    /// The same config with a different seed (what the explorer uses to
    /// fan one scenario out over many schedules).
    pub fn with_seed(&self, seed: u64) -> SimConfig {
        SimConfig {
            seed,
            ..self.clone()
        }
    }
}

/// One seeded, virtual-time, cooperative multi-rank simulation.
pub struct Sim {
    cfg: SimConfig,
    schedule: Arc<Schedule>,
    procs: Vec<Proc>,
    resil: Vec<Arc<Resilience>>,
    actions: SimRng,
    steps: u64,
    // Declared last: dropped after the world, so teardown of everything
    // above happens under the still-held clock lock.
    clock: VirtualClockGuard,
}

impl Sim {
    /// Build the world and freeze the process clock at t=0. Blocks until
    /// no other test holds the clock (see [`crate::clock`]).
    pub fn new(cfg: SimConfig) -> Sim {
        assert!(cfg.ranks >= 1, "a world needs at least one rank");
        assert!(cfg.time_quantum > 0.0, "time must be able to move");
        let clock = virtual_time(0.0);

        let mut master = SimRng::new(cfg.seed);
        let schedule = Arc::new(Schedule::with_rng(cfg.seed, cfg.schedule, master.fork()));
        let actions = master.fork();

        let mut wc = WorldConfig::instant(cfg.ranks);
        wc.inter_latency = cfg.latency;
        wc.intra_latency = cfg.latency;
        let procs = World::init(wc);

        // Resilience must exist before any communicator is created, or
        // the comms won't observe failures (see Proc::enable_resilience).
        let resil: Vec<Arc<Resilience>> = match cfg.resilience {
            Some(dc) => procs.iter().map(|p| p.enable_resilience(dc)).collect(),
            None => Vec::new(),
        };

        if let Some(fabric) = procs[0].world().fabric() {
            fabric.set_delivery_hook(Some(schedule.clone()));
        }
        for p in &procs {
            schedule.register_stream(p.default_stream().id(), p.rank());
            p.default_stream().set_sweep_order(Some(schedule.clone()));
        }

        Sim {
            cfg,
            schedule,
            procs,
            resil,
            actions,
            steps: 0,
            clock,
        }
    }

    /// The generating seed.
    pub fn seed(&self) -> u64 {
        self.cfg.seed
    }

    /// The per-rank processes.
    pub fn procs(&self) -> &[Proc] {
        &self.procs
    }

    /// One rank's process handle.
    pub fn proc(&self, rank: usize) -> &Proc {
        &self.procs[rank]
    }

    /// World communicators for every rank, in rank order.
    pub fn world_comms(&self) -> Vec<Comm> {
        self.procs.iter().map(|p| p.world_comm()).collect()
    }

    /// This rank's resilience handle (panics unless
    /// [`SimConfig::resilience`] was set).
    pub fn resilience(&self, rank: usize) -> &Arc<Resilience> {
        &self.resil[rank]
    }

    /// Current virtual time.
    pub fn now(&self) -> f64 {
        self.clock.now()
    }

    /// Schedule steps taken so far.
    pub fn steps(&self) -> u64 {
        self.steps
    }

    /// Run one schedule step: draw an action, record it, execute it.
    pub fn step(&mut self) {
        self.steps += 1;
        let ranks = self.cfg.ranks;
        // Choice space: progress(rank) × ranks, advance, and — with
        // resilience on — detector-tick(rank) × ranks.
        let detector_ticks = if self.resil.is_empty() { 0 } else { ranks };
        let choice = self.actions.usize_below(ranks + 1 + detector_ticks);
        if choice < ranks {
            self.schedule.record(Action::Progress { rank: choice });
            self.procs[choice].default_stream().progress();
        } else if choice == ranks {
            let dt = self.cfg.time_quantum * (0.5 + self.actions.f64());
            self.schedule.record(Action::Advance { dt });
            self.clock.advance(dt);
        } else {
            let rank = choice - ranks - 1;
            self.schedule.record(Action::DetectorTick { rank });
            let transport = self.procs[rank].world().rank_transport(rank);
            self.resil[rank].detector().tick(Some(transport.as_ref()));
        }
    }

    /// Step until `cond` holds. Returns false if the
    /// [`SimConfig::max_steps`] budget ran out first (treat that as the
    /// scenario hanging under this schedule).
    pub fn run_until(&mut self, mut cond: impl FnMut() -> bool) -> bool {
        while !cond() {
            if self.steps >= self.cfg.max_steps {
                return false;
            }
            self.step();
        }
        true
    }

    /// Take exactly `n` schedule steps.
    pub fn run_steps(&mut self, n: u64) {
        for _ in 0..n {
            self.step();
        }
    }

    /// Schedule a chaos kill of `victim` at virtual time `at`. Requires
    /// resilience to be useful (the kill itself needs only the world).
    pub fn kill_at(&mut self, victim: usize, at: f64) -> bool {
        let ok = self.procs[0].world().chaos_kill_at(victim, at);
        if ok {
            self.schedule.record(Action::KillAt { victim, at });
        }
        ok
    }

    /// Append a scenario annotation to the trace.
    pub fn note(&self, text: impl Into<String>) {
        self.schedule.record(Action::Note { text: text.into() });
    }

    /// The determinism artifact: the schedule trace rendered as a
    /// string. Same seed ⇒ same bytes.
    pub fn trace_string(&self) -> String {
        self.schedule.trace_string()
    }

    /// Orderly teardown: stop the resilience stacks, then co-operatively
    /// drain every rank's default stream, advancing virtual time so
    /// in-flight work can land. Returns true if everything drained
    /// within the step budget.
    pub fn shutdown(&mut self) -> bool {
        for r in &self.resil {
            r.shutdown();
        }
        let ranks = self.cfg.ranks;
        for _ in 0..self.cfg.max_steps {
            let pending: usize = self
                .procs
                .iter()
                .map(|p| p.default_stream().pending_tasks())
                .sum();
            if pending == 0 {
                return true;
            }
            for r in 0..ranks {
                self.procs[r].default_stream().progress();
            }
            self.clock.advance(self.cfg.time_quantum);
        }
        self.procs
            .iter()
            .all(|p| p.default_stream().pending_tasks() == 0)
    }
}

impl Drop for Sim {
    fn drop(&mut self) {
        // Uninstall the hooks so the schedule's rng stops being consumed
        // by any straggler teardown progress, and the Arc cycles clear.
        if let Some(fabric) = self.procs[0].world().fabric() {
            fabric.set_delivery_hook(None);
        }
        for p in &self.procs {
            p.default_stream().set_sweep_order(None);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_rank_world_steps_and_shuts_down() {
        let mut sim = Sim::new(SimConfig::ranks(1));
        sim.run_steps(16);
        assert!(sim.now() > 0.0 || sim.steps() == 16);
        assert!(sim.shutdown());
    }

    #[test]
    fn nonblocking_pingpong_completes_under_simulation() {
        let mut sim = Sim::new(SimConfig::ranks(2));
        let comms = sim.world_comms();
        let recv = comms[1].irecv::<u64>(4, 0, 7).unwrap();
        let send = comms[0].isend(&[1u64, 2, 3, 4], 1, 7).unwrap();
        let req = recv.request();
        assert!(sim.run_until(|| send.is_complete() && req.is_complete()));
        let (data, status) = recv.take();
        assert_eq!(data, vec![1, 2, 3, 4]);
        assert_eq!(status.source, 0);
        assert_eq!(status.tag, 7);
        assert!(sim.shutdown());
    }

    #[test]
    fn virtual_time_only_moves_when_the_schedule_says() {
        let mut sim = Sim::new(SimConfig::ranks(2));
        let t0 = sim.now();
        assert_eq!(t0, 0.0);
        sim.run_steps(64);
        let t1 = sim.now();
        // Only advance steps move the clock, and they move it forward.
        assert!(t1 >= t0);
        assert!(t1 < 64.0 * 1.5 * sim.cfg.time_quantum + f64::EPSILON);
    }

    #[test]
    fn run_until_gives_up_at_max_steps() {
        let mut sim = Sim::new(SimConfig {
            max_steps: 50,
            ..SimConfig::ranks(1)
        });
        assert!(!sim.run_until(|| false));
        assert_eq!(sim.steps(), 50);
    }

    #[test]
    fn killed_rank_is_detected_via_injected_ticks() {
        let mut sim = Sim::new(SimConfig {
            resilience: Some(DetectorConfig { quiet_period: 1e9 }),
            ..SimConfig::ranks(3)
        });
        assert!(sim.kill_at(2, 5e-6));
        let detector = sim.resilience(0).detector().clone();
        assert!(sim.run_until(|| detector.is_failed(2)));
        assert!(detector.epoch() >= 1);
        sim.shutdown();
    }
}

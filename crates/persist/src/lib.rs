//! # mpfa-persist — persistent & partitioned operations
//!
//! The facade over the persistent-operation machinery in `mpfa-mpi`
//! (`MPI_Send_init` / `MPI_Recv_init` / `MPI_Start` / `MPI_Startall`,
//! `MPI_Psend_init` / `MPI_Precv_init` / `MPI_Pready` /
//! `MPI_Parrived`, `MPI_Allreduce_init`).
//!
//! A persistent descriptor front-loads the per-message costs of the
//! one-shot path: argument validation and route/VCI selection happen at
//! init, and — the part the paper's progress model makes interesting —
//! `recv_init` pins a **matching-bucket slot** announced to the sender
//! in a one-time handshake, so every re-fire is slot-addressed and
//! skips tag matching entirely. See `docs/PERSISTENT.md` for the
//! lifecycle, the pairing contract, and the partitioned-readiness
//! rules.
//!
//! This crate re-exports the descriptor types, adds the
//! [`Startable`] abstraction and [`start_all`] (`MPI_Startall`), and
//! carries the cross-subsystem tests (continuations and async/await
//! per re-fire generation via `mpfa-async`).

#![warn(missing_docs)]

pub use mpfa_mpi::persist::{
    PartitionedRecv, PartitionedSend, PersistentAllreduce, PersistentRecv, PersistentRecvBytes,
    PersistentSend, PersistentSendBytes,
};
pub use mpfa_mpi::vci::PartFlags;

use mpfa_mpi::datatype::MpiType;
use mpfa_mpi::error::MpiResult;
use mpfa_mpi::op::Reducible;

/// Anything `MPI_Startall` can start: one round of a persistent or
/// partitioned operation.
///
/// The object-safe `start_round` discards the per-round request handle
/// (send descriptors keep it internally — use the inherent `start`
/// when you need the request itself).
pub trait Startable {
    /// Start one round. Errors if the previous round is still active
    /// (starting an active persistent request is erroneous in MPI).
    fn start_round(&mut self) -> MpiResult<()>;

    /// True if the most recently started round has completed (false
    /// when no round was ever started).
    fn round_complete(&self) -> bool;
}

impl<T: MpiType> Startable for PersistentSend<T> {
    fn start_round(&mut self) -> MpiResult<()> {
        self.start().map(|_| ())
    }
    fn round_complete(&self) -> bool {
        self.active().map(|r| r.is_complete()).unwrap_or(false)
    }
}

impl<T: MpiType> Startable for PersistentRecv<T> {
    fn start_round(&mut self) -> MpiResult<()> {
        self.start()
    }
    fn round_complete(&self) -> bool {
        self.is_complete()
    }
}

impl Startable for PersistentSendBytes {
    fn start_round(&mut self) -> MpiResult<()> {
        self.start().map(|_| ())
    }
    fn round_complete(&self) -> bool {
        // The bytes send keeps its request private; a fresh descriptor
        // reports false until its first start like the others.
        self.is_complete()
    }
}

impl Startable for PersistentRecvBytes {
    fn start_round(&mut self) -> MpiResult<()> {
        self.start()
    }
    fn round_complete(&self) -> bool {
        self.is_complete()
    }
}

impl Startable for PartitionedSend {
    fn start_round(&mut self) -> MpiResult<()> {
        self.start().map(|_| ())
    }
    fn round_complete(&self) -> bool {
        self.active().map(|r| r.is_complete()).unwrap_or(false)
    }
}

impl Startable for PartitionedRecv {
    fn start_round(&mut self) -> MpiResult<()> {
        self.start()
    }
    fn round_complete(&self) -> bool {
        self.is_complete()
    }
}

impl<T: Reducible> Startable for PersistentAllreduce<T> {
    fn start_round(&mut self) -> MpiResult<()> {
        self.start()
    }
    fn round_complete(&self) -> bool {
        self.is_complete()
    }
}

/// `MPI_Startall`: start one round of every descriptor. Fails on the
/// first descriptor that cannot start (an already-active round); the
/// descriptors before it have started — as in MPI, where `Startall`
/// with an active request is erroneous, there is no rollback.
pub fn start_all(reqs: &mut [&mut dyn Startable]) -> MpiResult<()> {
    for r in reqs.iter_mut() {
        r.start_round()?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpfa_mpi::world::{World, WorldConfig};
    use mpfa_mpi::Proc;

    /// Single-process multi-rank driver: pump every proc's stream until
    /// the condition holds.
    fn drive_all(procs: &[Proc], mut cond: impl FnMut() -> bool) {
        for _ in 0..200_000 {
            if cond() {
                return;
            }
            for p in procs {
                p.default_stream().progress();
            }
        }
        panic!("condition not reached");
    }

    #[test]
    fn start_all_fires_heterogeneous_descriptors() {
        let procs = World::init(WorldConfig::instant(2));
        let c0 = procs[0].world_comm();
        let c1 = procs[1].world_comm();

        // Receiver descriptors first: their init sends the binds that
        // the senders' first start waits for.
        let mut ra = c1.recv_init::<u32>(2, 0, 1).unwrap();
        let mut rb = c1.recv_init_bytes(64, 0, 2).unwrap();
        let mut sa = c0.send_init(&[7u32, 9], 1, 1).unwrap();
        let mut sb = c0.send_init_bytes(vec![3u8; 64], 1, 2).unwrap();

        for round in 0..3 {
            start_all(&mut [&mut ra, &mut rb]).unwrap();
            start_all(&mut [&mut sa, &mut sb]).unwrap();
            drive_all(&procs, || ra.is_complete() && rb.is_complete());
            let (a, _) = ra.wait().unwrap();
            let (b, st) = rb.wait().unwrap();
            assert_eq!(a, vec![7u32, 9], "round {round}");
            assert_eq!(st.bytes, 64);
            assert_eq!(b[0], 3);
            drive_all(&procs, || sa.round_complete() && sb.round_complete());
        }
    }

    #[test]
    fn start_all_propagates_active_round_errors() {
        let procs = World::init(WorldConfig::instant(2));
        let c0 = procs[0].world_comm();
        let c1 = procs[1].world_comm();
        let mut r = c1.recv_init::<u8>(1, 0, 0).unwrap();
        let mut s = c0.send_init(&[1u8], 1, 0).unwrap();
        r.start_round().unwrap();
        // The recv round is still active: restarting it must error.
        assert!(start_all(&mut [&mut r]).is_err());
        s.start_round().unwrap();
        drive_all(&procs, || r.is_complete());
        r.wait().unwrap();
    }

    #[test]
    fn refire_generations_complete_into_futures() {
        // Each re-fire generation is a fresh request; awaiting the
        // receiver's per-round request with the mpfa-async executor
        // must yield that round's status, round after round.
        let procs = World::init(WorldConfig::instant(2));
        let c0 = procs[0].world_comm();
        let c1 = procs[1].world_comm();
        let mut pr = c1.recv_init::<u64>(1, 0, 4).unwrap();
        let mut ps = c0.send_init(&[0u64], 1, 4).unwrap();
        for round in 0..6u64 {
            pr.start().unwrap();
            ps.buffer_mut()[0] = round * 100;
            // Round 0's fire waits on the sender's stream for the bind;
            // later rounds buffer into the wire at start. Drive the
            // sender until the round is on the wire, then hand the
            // receiver side to the async executor.
            let sent = ps.start().unwrap();
            drive_all(&procs, || sent.is_complete());
            let req = pr.request().expect("active round has a request");
            let st = mpfa_async::block_on(procs[1].default_stream(), req).unwrap();
            assert_eq!(st.source, 0);
            assert_eq!(st.tag, 4);
            let (data, _) = pr.wait().unwrap();
            assert_eq!(data, vec![round * 100]);
        }
    }

    #[test]
    fn partitioned_round_via_start_all() {
        let procs = World::init(WorldConfig::instant(2));
        let c0 = procs[0].world_comm();
        let c1 = procs[1].world_comm();
        let mut pr = c1.precv_init(4096, 4, 0, 0).unwrap();
        let mut ps = c0.psend_init(vec![0xabu8; 4096], 4, 1, 0).unwrap();
        start_all(&mut [&mut pr as &mut dyn Startable]).unwrap();
        start_all(&mut [&mut ps as &mut dyn Startable]).unwrap();
        ps.pready_range(0, 4).unwrap();
        drive_all(&procs, || pr.is_complete());
        let (data, st) = pr.wait().unwrap();
        assert_eq!(st.bytes, 4096);
        assert!(data.iter().all(|&b| b == 0xab));
        drive_all(&procs, || ps.round_complete());
    }

    #[test]
    fn allreduce_descriptor_restarts_through_startable() {
        let procs = World::init(WorldConfig::instant(3));
        let mut descs: Vec<PersistentAllreduce<i32>> = procs
            .iter()
            .map(|p| {
                let c = p.world_comm();
                c.allreduce_init(&[c.rank() + 1], mpfa_mpi::Op::Max)
                    .unwrap()
            })
            .collect();
        for _ in 0..2 {
            for d in descs.iter_mut() {
                d.start_round().unwrap();
            }
            drive_all(&procs, || descs.iter().all(|d| d.round_complete()));
            for d in descs.iter_mut() {
                let (out, _) = d.wait().unwrap();
                assert_eq!(out, vec![3]);
            }
        }
    }
}

//! Typed receive handles.
//!
//! A receive completes asynchronously inside progress hooks, so the
//! payload cannot land in a caller-borrowed slice; instead the runtime
//! fills a shared slot and the [`RecvRequest`] hands the typed data out on
//! completion. `is_complete` remains the side-effect-free atomic query of
//! the paper's `MPIX_Request_is_complete`.

use std::future::Future;
use std::marker::PhantomData;
use std::pin::Pin;
use std::task::{Context, Poll};

use mpfa_core::{Request, RequestError, Status};
use mpfa_transport::MpfaBytes;

use crate::datatype::{from_bytes, MpiType};
use crate::matching::RecvSlot;

/// A pending typed receive: request + landing slot.
pub struct RecvRequest<T: MpiType> {
    req: Request,
    slot: RecvSlot,
    // `fn() -> T` rather than `T`: marks the element type without
    // inheriting `T`'s auto traits, so the handle stays `Unpin` (its
    // `Future` impl never pins `T` itself).
    _elem: PhantomData<fn() -> T>,
}

impl<T: MpiType> RecvRequest<T> {
    pub(crate) fn new(req: Request, slot: RecvSlot) -> RecvRequest<T> {
        RecvRequest {
            req,
            slot,
            _elem: PhantomData,
        }
    }

    /// `MPIX_Request_is_complete`: atomic, no progress, no side effects.
    #[inline]
    pub fn is_complete(&self) -> bool {
        self.req.is_complete()
    }

    /// A clone of the underlying request (for waitall-style aggregation).
    pub fn request(&self) -> Request {
        self.req.clone()
    }

    /// Completion status, if complete.
    pub fn status(&self) -> Option<Status> {
        self.req.status()
    }

    /// `MPI_Wait`: drive the bound stream until complete, then take the
    /// typed payload.
    pub fn wait(self) -> (Vec<T>, Status) {
        let status = self.req.wait();
        (from_bytes(&self.slot.take_bytes()), status)
    }

    /// `MPI_Test`: one progress call; on completion, the typed payload.
    pub fn test(self) -> Result<(Vec<T>, Status), RecvRequest<T>> {
        match self.req.test() {
            Some(status) => Ok((from_bytes(&self.slot.take_bytes()), status)),
            None => Err(self),
        }
    }

    /// Take the payload of an already-complete receive without waiting.
    ///
    /// # Panics
    /// Panics if the request is not complete yet.
    pub fn take(self) -> (Vec<T>, Status) {
        let status = self
            .req
            .status()
            .expect("RecvRequest::take on incomplete receive");
        (from_bytes(&self.slot.take_bytes()), status)
    }
}

/// Awaiting a receive resolves to its typed payload and status once the
/// message lands (or to the `RequestError` that doomed it). Uses the
/// per-request waker bridge: the awaiting task is woken by the sweep that
/// completes the receive.
impl<T: MpiType> Future for RecvRequest<T> {
    type Output = Result<(Vec<T>, Status), RequestError>;

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
        let this = self.get_mut();
        match Pin::new(&mut this.req).poll(cx) {
            Poll::Ready(Ok(status)) => {
                Poll::Ready(Ok((from_bytes(&this.slot.take_bytes()), status)))
            }
            Poll::Ready(Err(err)) => Poll::Ready(Err(err)),
            Poll::Pending => Poll::Pending,
        }
    }
}

/// A pending raw-bytes receive whose payload comes out as a refcounted
/// view ([`MpfaBytes`]) — the end of the zero-copy receive path. On a
/// shared-memory transport a large payload completes as a window into
/// the peer's ring, released when the view drops; no typed conversion,
/// no flatten.
pub struct RecvBytesRequest {
    req: Request,
    slot: RecvSlot,
}

impl RecvBytesRequest {
    pub(crate) fn new(req: Request, slot: RecvSlot) -> RecvBytesRequest {
        RecvBytesRequest { req, slot }
    }

    /// `MPIX_Request_is_complete`: atomic, no progress, no side effects.
    #[inline]
    pub fn is_complete(&self) -> bool {
        self.req.is_complete()
    }

    /// A clone of the underlying request (for waitall-style aggregation).
    pub fn request(&self) -> Request {
        self.req.clone()
    }

    /// Completion status, if complete.
    pub fn status(&self) -> Option<Status> {
        self.req.status()
    }

    /// `MPI_Wait`: drive the bound stream until complete, then take the
    /// payload view without copying.
    pub fn wait(self) -> (MpfaBytes, Status) {
        let status = self.req.wait();
        (self.slot.take_bytes(), status)
    }

    /// Take the payload of an already-complete receive without waiting.
    ///
    /// # Panics
    /// Panics if the request is not complete yet.
    pub fn take(self) -> (MpfaBytes, Status) {
        let status = self
            .req
            .status()
            .expect("RecvBytesRequest::take on incomplete receive");
        (self.slot.take_bytes(), status)
    }
}

/// Awaiting resolves to the payload view and status (or the error that
/// doomed the receive); same waker bridge as [`RecvRequest`].
impl Future for RecvBytesRequest {
    type Output = Result<(MpfaBytes, Status), RequestError>;

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
        let this = self.get_mut();
        match Pin::new(&mut this.req).poll(cx) {
            Poll::Ready(Ok(status)) => Poll::Ready(Ok((this.slot.take_bytes(), status))),
            Poll::Ready(Err(err)) => Poll::Ready(Err(err)),
            Poll::Pending => Poll::Pending,
        }
    }
}

impl std::fmt::Debug for RecvBytesRequest {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RecvBytesRequest")
            .field("complete", &self.is_complete())
            .finish()
    }
}

impl<T: MpiType> std::fmt::Debug for RecvRequest<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RecvRequest")
            .field("complete", &self.is_complete())
            .field("type", &T::NAME)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datatype::to_bytes;
    use mpfa_core::Stream;

    fn complete_recv(data: Vec<i32>) -> RecvRequest<i32> {
        let stream = Stream::create();
        let (req, completer) = Request::pair(&stream);
        let slot = RecvSlot::new();
        slot.set(to_bytes(&data));
        completer.complete(Status {
            source: 1,
            tag: 2,
            bytes: data.len() * 4,
            cancelled: false,
        });
        RecvRequest::new(req, slot)
    }

    #[test]
    fn take_returns_typed_data() {
        let r = complete_recv(vec![10, 20, 30]);
        assert!(r.is_complete());
        let (data, st) = r.take();
        assert_eq!(data, vec![10, 20, 30]);
        assert_eq!(st.source, 1);
        assert_eq!(st.bytes, 12);
    }

    #[test]
    fn wait_on_complete_returns_immediately() {
        let r = complete_recv(vec![7]);
        let (data, _) = r.wait();
        assert_eq!(data, vec![7]);
    }

    #[test]
    fn test_on_incomplete_returns_self() {
        let stream = Stream::create();
        let (req, _completer) = Request::pair(&stream);
        let r: RecvRequest<i32> = RecvRequest::new(req, RecvSlot::new());
        match r.test() {
            Ok(_) => panic!("should not be complete"),
            Err(r) => assert!(!r.is_complete()),
        }
    }

    #[test]
    #[should_panic(expected = "incomplete")]
    fn take_on_incomplete_panics() {
        let stream = Stream::create();
        let (req, _completer) = Request::pair(&stream);
        let r: RecvRequest<i32> = RecvRequest::new(req, RecvSlot::new());
        let _ = r.take();
    }
}

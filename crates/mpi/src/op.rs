//! Reduction operations over [`MpiType`] elements.
//!
//! The *native* collective path dispatches through [`Op::apply`] — a match
//! plus per-element closure indirection. This generality is deliberately
//! preserved: the paper's Figure 13 attributes part of the native
//! `MPI_Iallreduce` cost to exactly this ("restricting to `MPI_INT` and
//! `MPI_SUM` avoids a datatype switch and the function-call overhead of
//! calling an operation function"), and the user-level allreduce in
//! `mpfa-interop` wins by hardcoding `i32`/`+`.

use crate::datatype::MpiType;
use crate::error::{MpiError, MpiResult};

/// Built-in reduction operations (`MPI_Op`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Op {
    /// `MPI_SUM`
    Sum,
    /// `MPI_PROD`
    Prod,
    /// `MPI_MAX`
    Max,
    /// `MPI_MIN`
    Min,
    /// `MPI_BAND` (integers only)
    Band,
    /// `MPI_BOR` (integers only)
    Bor,
    /// `MPI_BXOR` (integers only)
    Bxor,
}

/// Element types reducible by the built-in operations.
pub trait Reducible: MpiType {
    /// `inout[i] = op(inout[i], input[i])` for all i.
    fn reduce(op: Op, inout: &mut [Self], input: &[Self]) -> MpiResult<()>;
}

macro_rules! impl_reducible_int {
    ($($t:ty),*) => {
        $(
            impl Reducible for $t {
                fn reduce(op: Op, inout: &mut [Self], input: &[Self]) -> MpiResult<()> {
                    assert_eq!(inout.len(), input.len(), "reduce length mismatch");
                    let f: fn(Self, Self) -> Self = match op {
                        Op::Sum => |a, b| a.wrapping_add(b),
                        Op::Prod => |a, b| a.wrapping_mul(b),
                        Op::Max => |a, b| if a >= b { a } else { b },
                        Op::Min => |a, b| if a <= b { a } else { b },
                        Op::Band => |a, b| a & b,
                        Op::Bor => |a, b| a | b,
                        Op::Bxor => |a, b| a ^ b,
                    };
                    for (x, y) in inout.iter_mut().zip(input) {
                        *x = f(*x, *y);
                    }
                    Ok(())
                }
            }
        )*
    };
}

impl_reducible_int!(u8, i8, u16, i16, u32, i32, u64, i64, usize, isize);

macro_rules! impl_reducible_float {
    ($($t:ty),*) => {
        $(
            impl Reducible for $t {
                fn reduce(op: Op, inout: &mut [Self], input: &[Self]) -> MpiResult<()> {
                    assert_eq!(inout.len(), input.len(), "reduce length mismatch");
                    let f: fn(Self, Self) -> Self = match op {
                        Op::Sum => |a, b| a + b,
                        Op::Prod => |a, b| a * b,
                        Op::Max => |a, b| a.max(b),
                        Op::Min => |a, b| a.min(b),
                        Op::Band | Op::Bor | Op::Bxor => {
                            return Err(MpiError::BadOpForType(
                                "bitwise reduction on floating-point type",
                            ))
                        }
                    };
                    for (x, y) in inout.iter_mut().zip(input) {
                        *x = f(*x, *y);
                    }
                    Ok(())
                }
            }
        )*
    };
}

impl_reducible_float!(f32, f64);

impl Op {
    /// Apply this operation element-wise: `inout[i] = op(inout[i], input[i])`.
    pub fn apply<T: Reducible>(self, inout: &mut [T], input: &[T]) -> MpiResult<()> {
        T::reduce(self, inout, input)
    }

    /// Whether the op is commutative (all built-ins are).
    pub fn is_commutative(self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sum_ints() {
        let mut a = vec![1i32, 2, 3];
        Op::Sum.apply(&mut a, &[10, 20, 30]).unwrap();
        assert_eq!(a, vec![11, 22, 33]);
    }

    #[test]
    fn prod_wraps() {
        let mut a = vec![i32::MAX];
        Op::Prod.apply(&mut a, &[2]).unwrap();
        assert_eq!(a, vec![i32::MAX.wrapping_mul(2)]);
    }

    #[test]
    fn max_min() {
        let mut a = vec![5i64, -5];
        Op::Max.apply(&mut a, &[3, 3]).unwrap();
        assert_eq!(a, vec![5, 3]);
        let mut b = vec![5i64, -5];
        Op::Min.apply(&mut b, &[3, 3]).unwrap();
        assert_eq!(b, vec![3, -5]);
    }

    #[test]
    fn bitwise_on_ints() {
        let mut a = vec![0b1100u8];
        Op::Band.apply(&mut a, &[0b1010]).unwrap();
        assert_eq!(a, vec![0b1000]);
        let mut b = vec![0b1100u8];
        Op::Bor.apply(&mut b, &[0b1010]).unwrap();
        assert_eq!(b, vec![0b1110]);
        let mut c = vec![0b1100u8];
        Op::Bxor.apply(&mut c, &[0b1010]).unwrap();
        assert_eq!(c, vec![0b0110]);
    }

    #[test]
    fn float_sum_and_max() {
        let mut a = vec![1.5f64, 2.5];
        Op::Sum.apply(&mut a, &[0.5, 0.5]).unwrap();
        assert_eq!(a, vec![2.0, 3.0]);
        let mut b = vec![1.0f32];
        Op::Max.apply(&mut b, &[2.0]).unwrap();
        assert_eq!(b, vec![2.0]);
    }

    #[test]
    fn bitwise_on_floats_rejected() {
        let mut a = vec![1.0f64];
        let err = Op::Band.apply(&mut a, &[2.0]).unwrap_err();
        assert!(matches!(err, MpiError::BadOpForType(_)));
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_lengths_panic() {
        let mut a = vec![1i32];
        let _ = Op::Sum.apply(&mut a, &[1, 2]);
    }

    #[test]
    fn all_ops_commutative() {
        for op in [
            Op::Sum,
            Op::Prod,
            Op::Max,
            Op::Min,
            Op::Band,
            Op::Bor,
            Op::Bxor,
        ] {
            assert!(op.is_commutative());
        }
    }
}

//! The asynchronous datatype engine: incremental pack/unpack of
//! non-contiguous layouts, progressed by the first hook of the collated
//! progress function (paper Listing 1.1, `Datatype_engine_progress`).
//!
//! Packing a large strided buffer in one go would stall the progress loop
//! (exactly the poll-overhead problem of the paper's Figure 8), so jobs are
//! advanced one *segment* per poll and the engine reports progress
//! per-segment.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use mpfa_core::sync::Mutex;

use crate::datatype::{Layout, MpiType};

/// One step of an incremental job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobStep {
    /// More segments remain.
    More,
    /// The job finished this step.
    Done,
}

/// A type-erased incremental job: each call processes one segment.
pub type Job = Box<dyn FnMut() -> JobStep + Send>;

/// The engine: a queue of incremental jobs with an O(1) idle check.
pub struct DtEngine {
    jobs: Mutex<Vec<Job>>,
    pending: AtomicUsize,
}

impl Default for DtEngine {
    fn default() -> Self {
        Self::new()
    }
}

impl DtEngine {
    /// An empty engine.
    pub fn new() -> DtEngine {
        DtEngine {
            jobs: Mutex::new(Vec::new()),
            pending: AtomicUsize::new(0),
        }
    }

    /// Shared handle.
    pub fn shared() -> Arc<DtEngine> {
        Arc::new(DtEngine::new())
    }

    /// Enqueue an incremental job.
    pub fn submit(&self, job: Job) {
        self.pending.fetch_add(1, Ordering::Release);
        self.jobs.lock().push(job);
    }

    /// Jobs not yet finished (one atomic read — the hook's `has_work`).
    pub fn pending(&self) -> usize {
        self.pending.load(Ordering::Acquire)
    }

    /// Advance every queued job by one segment. Returns true if any job
    /// ran (i.e. progress was made).
    pub fn poll(&self) -> bool {
        if self.pending() == 0 {
            return false;
        }
        let mut jobs = self.jobs.lock();
        if jobs.is_empty() {
            return false;
        }
        let mut finished = 0;
        let mut i = 0;
        while i < jobs.len() {
            match (jobs[i])() {
                JobStep::Done => {
                    let _finished_job = jobs.swap_remove(i);
                    finished += 1;
                }
                JobStep::More => i += 1,
            }
        }
        drop(jobs);
        if finished > 0 {
            self.pending.fetch_sub(finished, Ordering::Release);
        }
        true
    }
}

fn block_of(layout: &Layout, i: usize) -> (usize, usize) {
    match *layout {
        Layout::Contiguous { count } => (0, count),
        Layout::Vector {
            blocklen, stride, ..
        } => (i * stride, blocklen),
    }
}

fn blocks_in(layout: &Layout) -> usize {
    match *layout {
        Layout::Contiguous { count } => usize::from(count > 0),
        Layout::Vector { count, .. } => count,
    }
}

/// Build an incremental *pack* job: gather `layout`-selected elements of
/// `data` into a dense vector, `segment_blocks` blocks per step, then hand
/// the packed vector to `on_done`.
pub fn pack_job<T: MpiType>(
    data: Vec<T>,
    layout: Layout,
    segment_blocks: usize,
    on_done: impl FnOnce(Vec<T>) + Send + 'static,
) -> Job {
    layout.check(data.len());
    let segment_blocks = segment_blocks.max(1);
    let total_blocks = blocks_in(&layout);
    let mut packed: Vec<T> = Vec::with_capacity(layout.element_count());
    let mut next_block = 0usize;
    let mut on_done = Some(on_done);
    Box::new(move || {
        let end = (next_block + segment_blocks).min(total_blocks);
        while next_block < end {
            let (start, len) = block_of(&layout, next_block);
            packed.extend_from_slice(&data[start..start + len]);
            next_block += 1;
        }
        if next_block >= total_blocks {
            let done = on_done.take().expect("pack_job polled past Done");
            done(std::mem::take(&mut packed));
            JobStep::Done
        } else {
            JobStep::More
        }
    })
}

/// Build an incremental *unpack* job: scatter a dense `packed` vector into
/// a `layout`-shaped buffer of `extent` elements (zero-filled gaps), then
/// hand the result to `on_done`.
pub fn unpack_job<T: MpiType + Default>(
    packed: Vec<T>,
    layout: Layout,
    segment_blocks: usize,
    on_done: impl FnOnce(Vec<T>) + Send + 'static,
) -> Job {
    assert_eq!(
        packed.len(),
        layout.element_count(),
        "packed length mismatch"
    );
    let segment_blocks = segment_blocks.max(1);
    let total_blocks = blocks_in(&layout);
    let mut out: Vec<T> = vec![T::default(); layout.extent()];
    let mut next_block = 0usize;
    let mut packed_off = 0usize;
    let mut on_done = Some(on_done);
    Box::new(move || {
        let end = (next_block + segment_blocks).min(total_blocks);
        while next_block < end {
            let (start, len) = block_of(&layout, next_block);
            out[start..start + len].copy_from_slice(&packed[packed_off..packed_off + len]);
            packed_off += len;
            next_block += 1;
        }
        if next_block >= total_blocks {
            let done = on_done.take().expect("unpack_job polled past Done");
            done(std::mem::take(&mut out));
            JobStep::Done
        } else {
            JobStep::More
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicBool;

    #[test]
    fn empty_engine_is_idle() {
        let e = DtEngine::new();
        assert_eq!(e.pending(), 0);
        assert!(!e.poll());
    }

    #[test]
    fn pack_job_runs_in_segments() {
        let e = DtEngine::new();
        let layout = Layout::Vector {
            count: 10,
            blocklen: 2,
            stride: 3,
        };
        let data: Vec<i32> = (0..30).collect();
        let result = Arc::new(Mutex::new(None));
        let r = result.clone();
        e.submit(pack_job(data, layout, 3, move |packed| {
            *r.lock() = Some(packed);
        }));
        assert_eq!(e.pending(), 1);
        // 10 blocks at 3 per step = 4 polls.
        let mut polls = 0;
        while e.pending() > 0 {
            assert!(e.poll());
            polls += 1;
            assert!(polls <= 4, "took too many polls");
        }
        assert_eq!(polls, 4);
        let packed = result.lock().take().unwrap();
        let expect = layout.pack(&(0..30).collect::<Vec<i32>>());
        assert_eq!(packed, expect);
    }

    #[test]
    fn unpack_job_restores_layout() {
        let e = DtEngine::new();
        let layout = Layout::Vector {
            count: 3,
            blocklen: 2,
            stride: 4,
        };
        let original: Vec<i32> = (0..10).collect();
        let packed = layout.pack(&original);
        let result = Arc::new(Mutex::new(None));
        let r = result.clone();
        e.submit(unpack_job(packed, layout, 1, move |out| {
            *r.lock() = Some(out);
        }));
        while e.pending() > 0 {
            e.poll();
        }
        let out = result.lock().take().unwrap();
        assert_eq!(out, vec![0, 1, 0, 0, 4, 5, 0, 0, 8, 9]);
    }

    #[test]
    fn contiguous_pack_single_step() {
        let e = DtEngine::new();
        let done = Arc::new(AtomicBool::new(false));
        let d = done.clone();
        e.submit(pack_job(
            vec![1i32, 2, 3],
            Layout::Contiguous { count: 3 },
            1,
            move |p| {
                assert_eq!(p, vec![1, 2, 3]);
                d.store(true, Ordering::Release);
            },
        ));
        assert!(e.poll());
        assert!(done.load(Ordering::Acquire));
        assert_eq!(e.pending(), 0);
    }

    #[test]
    fn multiple_jobs_advance_together() {
        let e = DtEngine::new();
        let counter = Arc::new(AtomicUsize::new(0));
        for _ in 0..5 {
            let c = counter.clone();
            let layout = Layout::Vector {
                count: 4,
                blocklen: 1,
                stride: 2,
            };
            e.submit(pack_job(
                (0..8).collect::<Vec<i32>>(),
                layout,
                2,
                move |_| {
                    c.fetch_add(1, Ordering::Relaxed);
                },
            ));
        }
        assert_eq!(e.pending(), 5);
        e.poll(); // all advance 2 of 4 blocks
        assert_eq!(e.pending(), 5);
        e.poll(); // all finish
        assert_eq!(e.pending(), 0);
        assert_eq!(counter.load(Ordering::Relaxed), 5);
    }
}

//! ULFM-style fault tolerance: the failure detector wired into the MPI
//! layer, plus `Comm::revoke` / `Comm::shrink` / `Comm::agree`.
//!
//! The paper's argument is that explicit progress turns MPI-adjacent
//! machinery into ordinary user-space tasks. This module is the
//! demonstration for fault tolerance: the failure detector
//! ([`mpfa_resil::FailureDetector`]) and the resilience engine below are
//! both `MPIX_Async` tasks on the rank's default stream, collated with
//! the protocol hooks that move the messages whose peers they watch.
//!
//! # Anatomy
//!
//! * **detection** — the detector watches this rank's transport view;
//!   its epoch counter tells the resilience task when to *sweep*:
//!   fail every outstanding send/receive involving a newly dead rank
//!   (`RequestError::PeerFailed`), so `wait`/`wait_all` terminate with
//!   errors instead of spinning.
//! * **control plane** — a reserved wire context
//!   ([`ReservedCtx::ResilCtrl`], claimed from the [`crate::reserved`]
//!   registry, never allocated to a communicator) carries revoke
//!   notices, failure gossip, and the agreement protocol. Control
//!   messages go through a [`CtrlPort`]: peers addressed by *world*
//!   rank on VCI 0, sends buffered (born-complete, no TX tracking), so
//!   the control plane keeps working while data-plane requests are
//!   failing.
//! * **recovery ops** — [`Comm::revoke`] (flood-propagated, idempotent),
//!   [`Comm::agree`] (fault-tolerant boolean AND), [`Comm::shrink`]
//!   (agree on the failed set, rebuild the communicator without it).
//!   Agreement runs as a user-level collective over the control plane —
//!   the same "collectives from outside MPI" shape as the paper's
//!   Listing 1.8 allreduce.
//!
//! # Model and limitations
//!
//! Fail-stop only: a failed rank never comes back, the failure set only
//! grows, and detection has no false positives. The agreement protocol
//! elects the lowest-ranked alive member as coordinator; if a
//! coordinator dies *while broadcasting verdicts*, ranks that already
//! returned will not re-participate and stragglers time out (real ULFM
//! uses the ERA protocol to close this window). Receives posted with
//! `ANY_SOURCE` are deliberately not failed by peer death — any sender
//! may still satisfy them; `revoke` is the operation that drains
//! everything. See `docs/RESILIENCE.md`.

use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use mpfa_core::sync::Mutex;
use mpfa_core::{wtime, AsyncPoll, Request, RequestError};
use mpfa_resil::{DetectorConfig, FailureDetector};

use crate::comm::Comm;
use crate::error::{MpiError, MpiResult};
use crate::matching::{RecvSlot, ANY_SOURCE};
use crate::proc::Proc;
use crate::reserved::{CtrlPort, ReservedCtx};
use crate::vci::Vci;
use crate::world::World;

/// Control tag: communicator revoke notice. Payload: the revoked base
/// context id, little-endian u64.
const CTRL_TAG_REVOKE: i32 = 1;

/// Control tag: failure gossip. Payload: failed world ranks as
/// little-endian u32s. Keeps detectors convergent even when evidence is
/// asymmetric (e.g. a manual `report_failure` on one rank).
const CTRL_TAG_FAILURE: i32 = 2;

/// Sub-tag of a coordination verdict (attempt-independent, so a
/// participant that restarts can still match a verdict the coordinator
/// already sent). Attempt numbers occupy `0..=0xFD`.
const SUB_VERDICT: u32 = 0xFE;

/// Deadline for one `agree`/`shrink` call; coordination that cannot
/// converge (see the coordinator-death limitation) errors out instead
/// of hanging forever.
const COORDINATE_TIMEOUT_S: f64 = 30.0;

/// Tag for one coordination message. High bit `1 << 30` keeps these
/// disjoint from [`CTRL_TAG_REVOKE`]/[`CTRL_TAG_FAILURE`]; the fields
/// fold in the communicator context, the per-comm agreement sequence,
/// and the attempt number (or [`SUB_VERDICT`]).
fn coord_tag(ctx: u64, seq: u64, sub: u32) -> i32 {
    (1 << 30) | (((ctx & 0xfff) as i32) << 18) | (((seq & 0x3ff) as i32) << 8) | sub as i32
}

/// What the failure sweep needs to know about one registered comm.
#[derive(Clone)]
struct CommReg {
    ctx: u64,
    group: Arc<Vec<usize>>,
    vci: Arc<Vci>,
    vci_idx: usize,
}

/// Per-rank ULFM engine: owns the failure detector, the control plane,
/// and the sweep that fails outstanding requests. Created by
/// [`Proc::enable_resilience`]; communicator handles cache it.
pub struct Resilience {
    detector: FailureDetector,
    world: World,
    my_world: usize,
    /// The claimed control-plane port ([`ReservedCtx::ResilCtrl`] on
    /// VCI 0); all control traffic goes through it.
    port: CtrlPort,
    /// Registered communicators by base context id.
    comms: Mutex<HashMap<u64, CommReg>>,
    /// Revoked base context ids (the set only grows).
    revoked: Mutex<HashSet<u64>>,
    /// World ranks whose failure we already gossiped.
    gossiped: Mutex<HashSet<usize>>,
    /// Detector epoch up to which the sweep has run.
    swept_epoch: AtomicU64,
    /// The lazily (re)posted listener receives: `[0]` revoke notices,
    /// `[1]` failure gossip. Exact tags — a wildcard-tag listener would
    /// steal the agreement protocol's contribution/verdict messages,
    /// which share the control context.
    listeners: Mutex<[Option<(Request, RecvSlot)>; 2]>,
    shutdown: AtomicBool,
}

impl Resilience {
    /// Start the detector and the resilience progress task on `proc`'s
    /// default stream. Called (once) by [`Proc::enable_resilience`].
    pub(crate) fn install(proc: &Proc, cfg: DetectorConfig) -> Arc<Resilience> {
        let world = proc.world().clone();
        let rank = proc.rank();
        let detector = FailureDetector::new(rank, world.size(), cfg);
        detector.install(proc.default_stream(), world.rank_transport(rank));
        let port = CtrlPort::claim(proc, ReservedCtx::ResilCtrl);
        let r = Arc::new(Resilience {
            detector,
            world,
            my_world: rank,
            port,
            comms: Mutex::new(HashMap::new()),
            revoked: Mutex::new(HashSet::new()),
            gossiped: Mutex::new(HashSet::new()),
            swept_epoch: AtomicU64::new(0),
            listeners: Mutex::new([None, None]),
            shutdown: AtomicBool::new(false),
        });
        // The resilience task: revoke/gossip listener + epoch-triggered
        // failure sweep. Captures no Proc — the Arc cycle through the
        // stream's task list is broken when the task returns Done.
        let task = r.clone();
        proc.default_stream().async_start(move |_t| {
            if task.shutdown.load(Ordering::Acquire) {
                return AsyncPoll::Done;
            }
            if task.poll() {
                AsyncPoll::Progress
            } else {
                AsyncPoll::Pending
            }
        });
        r
    }

    /// The underlying failure detector (epoch, failure set, heartbeats).
    pub fn detector(&self) -> &FailureDetector {
        &self.detector
    }

    /// Has `ctx` been revoked (locally or by a propagated notice)?
    pub fn is_revoked(&self, ctx: u64) -> bool {
        self.revoked.lock().contains(&ctx)
    }

    /// Stop the detector and the resilience task so a stream drain (and
    /// thus `Proc::finalize`) can complete. Idempotent.
    pub fn shutdown(&self) {
        self.detector.stop();
        self.shutdown.store(true, Ordering::Release);
    }

    /// One resilience pass; true if anything happened.
    fn poll(&self) -> bool {
        let mut progressed = self.poll_listener();
        // Read the epoch BEFORE sweeping: a failure landing mid-sweep
        // bumps it past what we store, so the next poll re-sweeps.
        let epoch = self.detector.epoch();
        if epoch > self.swept_epoch.load(Ordering::Acquire) {
            self.sweep_failures();
            self.swept_epoch.store(epoch, Ordering::Release);
            progressed = true;
        }
        progressed
    }

    /// Drive the control-plane listeners: one any-source receive per
    /// control tag on the control context, each reposted after its
    /// message.
    fn poll_listener(&self) -> bool {
        let mut progressed = false;
        for (idx, tag) in [(0, CTRL_TAG_REVOKE), (1, CTRL_TAG_FAILURE)] {
            let completed = {
                let mut slots = self.listeners.lock();
                let slot = &mut slots[idx];
                if slot.is_none() {
                    // Payloads are tiny: one u64 ctx, or one u32 per
                    // gossiped world rank.
                    let cap = 8 * self.world.size().max(1);
                    *slot = Some(self.port.recv(ANY_SOURCE, tag, cap));
                }
                let (req, _) = slot.as_ref().expect("posted above");
                if req.is_complete() {
                    slot.take()
                } else {
                    None
                }
            };
            let Some((req, rs)) = completed else {
                continue;
            };
            progressed = true;
            let data = rs.take();
            let Some(status) = req.status() else {
                continue;
            };
            match tag {
                CTRL_TAG_REVOKE if data.len() >= 8 => {
                    let ctx = u64::from_le_bytes(data[..8].try_into().expect("8 bytes"));
                    self.handle_revoke(ctx, status.source);
                }
                CTRL_TAG_FAILURE => {
                    for chunk in data.chunks_exact(4) {
                        let w = u32::from_le_bytes(chunk.try_into().expect("4 bytes")) as usize;
                        self.detector.report_failure(w);
                    }
                }
                _ => {}
            }
        }
        progressed
    }

    /// Mark `ctx` revoked. True if this was news (first revocation).
    fn mark_revoked(&self, ctx: u64) -> bool {
        let fresh = self.revoked.lock().insert(ctx);
        if fresh {
            mpfa_obs::global_counters()
                .comms_revoked
                .fetch_add(1, Ordering::Relaxed);
        }
        fresh
    }

    /// A revoke notice arrived (or was raised locally): record, drain,
    /// forward once to everyone except where it came from.
    fn handle_revoke(&self, ctx: u64, from_world: i32) {
        if !self.mark_revoked(ctx) {
            return;
        }
        self.drain_revoked(ctx);
        self.broadcast_revoke(ctx, from_world);
    }

    /// Fail every posted receive of a revoked comm (both wire contexts,
    /// wildcards included) so blocked waits on it unblock.
    fn drain_revoked(&self, ctx: u64) {
        let reg = self.comms.lock().get(&ctx).cloned();
        if let Some(reg) = reg {
            reg.vci
                .fail_posted_recvs(ctx * 2, &|_, _| true, RequestError::Revoked);
            reg.vci
                .fail_posted_recvs(ctx * 2 + 1, &|_, _| true, RequestError::Revoked);
            // Persistent descriptors on the revoked comm: flip bindings
            // to revoked (next start takes the one-shot fallback) and
            // fail armed rounds. Persist keys live on the ptp context.
            reg.vci
                .fail_persist(&|_| false, Some(ctx * 2), RequestError::Revoked);
        }
    }

    /// Flood the revoke notice to every alive peer except `skip_world`
    /// (where it came from; -1 to send to all).
    fn broadcast_revoke(&self, ctx: u64, skip_world: i32) {
        let payload = ctx.to_le_bytes().to_vec();
        for w in 0..self.world.size() {
            if w == self.my_world || w as i32 == skip_world || self.detector.is_failed(w) {
                continue;
            }
            self.ctrl_send(w, CTRL_TAG_REVOKE, payload.clone());
        }
    }

    /// Fail outstanding operations involving dead ranks, across every
    /// registered communicator, and gossip newly seen failures.
    fn sweep_failures(&self) {
        let failed = self.detector.failure_set().failed;
        if failed.is_empty() {
            return;
        }
        let comms: Vec<CommReg> = self.comms.lock().values().cloned().collect();
        let cfg = self.world.config().clone();
        for reg in &comms {
            for &w in &failed {
                let Some(cr) = reg.group.iter().position(|&g| g == w) else {
                    continue;
                };
                let cr = cr as i32;
                let err = RequestError::PeerFailed { rank: w as i32 };
                let dead_eps: Vec<usize> = (0..cfg.max_vcis).map(|v| cfg.ep_index(w, v)).collect();
                reg.vci.fail_sends_to(&|ep| dead_eps.contains(&ep), err);
                reg.vci
                    .fail_posted_recvs(reg.ctx * 2, &|src, _| src == cr, err);
                reg.vci
                    .fail_posted_recvs(reg.ctx * 2 + 1, &|src, _| src == cr, err);
                // Persistent state bound to the dead peer: revoke the
                // sender-side bindings and fail slot-armed / partitioned
                // rounds so re-fires divert to the born-failed fallback.
                reg.vci
                    .fail_persist(&|ep| dead_eps.contains(&ep), None, err);
            }
        }
        // Control-plane receives address peers by world rank (the
        // coordination protocol's contribution/verdict receives).
        for &w in &failed {
            let err = RequestError::PeerFailed { rank: w as i32 };
            self.port.fail_matching(&|src, _| src == w as i32, err);
        }
        // Gossip failures we have not announced yet, so detectors
        // converge even on asymmetric evidence.
        let fresh: Vec<usize> = {
            let mut gossiped = self.gossiped.lock();
            failed
                .iter()
                .copied()
                .filter(|w| gossiped.insert(*w))
                .collect()
        };
        if !fresh.is_empty() {
            let payload: Vec<u8> = fresh
                .iter()
                .flat_map(|w| (*w as u32).to_le_bytes())
                .collect();
            for w in 0..self.world.size() {
                if w != self.my_world && !self.detector.is_failed(w) {
                    self.ctrl_send(w, CTRL_TAG_FAILURE, payload.clone());
                }
            }
        }
    }

    /// Run the failure sweep immediately (the post-insert recheck in
    /// `Comm::isend_on_ctx`/`irecv_on_ctx` calls this when an operation
    /// raced with failure detection).
    pub(crate) fn sweep_now(&self) {
        self.sweep_failures();
    }

    /// Register a communicator for the failure sweep. Idempotent per
    /// context id.
    pub(crate) fn register_comm(
        &self,
        ctx: u64,
        group: Arc<Vec<usize>>,
        vci: Arc<Vci>,
        vci_idx: usize,
    ) {
        self.comms.lock().insert(
            ctx,
            CommReg {
                ctx,
                group,
                vci,
                vci_idx,
            },
        );
        let _ = self.comms.lock().get(&ctx).map(|r| r.vci_idx); // silence unused-field lint paths
    }

    /// Fire-and-forget control-plane send (buffered: born complete, no
    /// TX tracking — refusal by a dead-peer transport is harmless).
    fn ctrl_send(&self, dst_world: usize, tag: i32, payload: Vec<u8>) {
        self.port.send(dst_world, tag, payload);
    }

    /// Post a control-plane receive from `src_world` with exact `tag`.
    fn ctrl_recv(&self, src_world: usize, tag: i32, capacity: usize) -> (Request, RecvSlot) {
        self.port.recv(src_world as i32, tag, capacity)
    }

    /// Drop this rank's posted coordination receives carrying `tag`
    /// (restart hygiene; completes them as cancelled-by-revoke).
    fn drain_ctrl_tag(&self, tag: i32) {
        self.port
            .fail_matching(&|_, t| t == tag, RequestError::Revoked);
    }
}

impl std::fmt::Debug for Resilience {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Resilience")
            .field("rank", &self.my_world)
            .field("epoch", &self.detector.epoch())
            .field("revoked", &self.revoked.lock().len())
            .field("comms", &self.comms.lock().len())
            .finish()
    }
}

impl Comm {
    fn resil_or_err(&self) -> MpiResult<Arc<Resilience>> {
        self.resil.clone().ok_or_else(|| {
            MpiError::Protocol(
                "resilience not enabled: call Proc::enable_resilience before creating comms".into(),
            )
        })
    }

    /// Has this communicator been revoked?
    pub fn is_revoked(&self) -> bool {
        self.resil.as_ref().is_some_and(|r| r.is_revoked(self.ctx))
    }

    /// `MPIX_Comm_revoke`: mark this communicator unusable everywhere.
    /// Non-collective — any member may call it after observing a
    /// failure; the notice floods to all alive peers, each of which
    /// drains its posted receives on the comm and forwards once.
    /// Idempotent. After revocation only [`Comm::agree`] and
    /// [`Comm::shrink`] remain meaningful.
    pub fn revoke(&self) -> MpiResult<()> {
        let r = self.resil_or_err()?;
        if r.mark_revoked(self.ctx) {
            r.drain_revoked(self.ctx);
            r.broadcast_revoke(self.ctx, -1);
        }
        Ok(())
    }

    /// `MPIX_Comm_agree`: fault-tolerant agreement on the logical AND of
    /// every alive member's `flag`. Works on revoked communicators —
    /// it is the tool for deciding, consistently, what to do next.
    /// Collective over alive members (same-order requirement as other
    /// collectives).
    pub fn agree(&self, flag: bool) -> MpiResult<bool> {
        let r = self.resil_or_err()?;
        let seq = self.agree_seq.fetch_add(1, Ordering::AcqRel);
        let out = self.coordinate(&r, seq, vec![flag as u8], &|acc, other| {
            acc[0] &= other[0];
        })?;
        Ok(out[0] != 0)
    }

    /// `MPIX_Comm_shrink`: agree on the union of everyone's failed set
    /// and build a new communicator containing only survivors (group
    /// order preserved). Collective over alive members. The new handle
    /// has a fresh context, inherits the VCI, and is not revoked.
    pub fn shrink(&self) -> MpiResult<Comm> {
        let r = self.resil_or_err()?;
        assert!(
            self.group.len() <= 64,
            "shrink supports up to 64 ranks (failure mask is a u64)"
        );
        let seq = self.agree_seq.fetch_add(1, Ordering::AcqRel);
        let mut mask: u64 = 0;
        for (cr, &w) in self.group.iter().enumerate() {
            if r.detector().is_failed(w) {
                mask |= 1 << cr;
            }
        }
        let agreed = self.coordinate(&r, seq, mask.to_le_bytes().to_vec(), &|acc, other| {
            let m = u64::from_le_bytes(acc[..8].try_into().expect("8 bytes"))
                | u64::from_le_bytes(other[..8].try_into().expect("8 bytes"));
            acc.copy_from_slice(&m.to_le_bytes());
        })?;
        let agreed_mask = u64::from_le_bytes(agreed[..8].try_into().expect("8 bytes"));

        let survivors: Vec<usize> = self
            .group
            .iter()
            .enumerate()
            .filter(|(cr, _)| agreed_mask & (1 << cr) == 0)
            .map(|(_, &w)| w)
            .collect();
        let my_world = self.group[self.rank as usize];
        let rank = survivors
            .iter()
            .position(|&w| w == my_world)
            .ok_or_else(|| MpiError::Protocol("shrink: calling rank agreed dead".into()))?
            as i32;

        // Survivors agree on `agreed_mask`, so every one derives the
        // same child key — the same lockstep determinism dup/split rely
        // on, without a round of exchange. The high marker byte keeps
        // shrink keys disjoint from dup/split epoch keys.
        let key = (0xF5u64 << 56) | agreed_mask;
        let world = self.proc.world().clone();
        let ctx = world.inner.registry.lock().child_ctx(self.ctx, key);
        let vci_idx = world.inner.registry.lock().vci_for_ctx(
            ctx,
            false,
            self.vci_idx,
            world.config().max_vcis,
        )?;
        let bundle = self
            .proc
            .bundle(vci_idx)
            .ok_or_else(|| MpiError::Protocol("shrink: VCI bundle missing".into()))?;
        let comm = Comm {
            proc: self.proc.clone(),
            bundle,
            vci_idx,
            ctx,
            group: Arc::new(survivors),
            rank,
            epoch: Arc::new(AtomicU64::new(0)),
            coll_seq: Arc::new(AtomicU64::new(0)),
            agree_seq: Arc::new(AtomicU64::new(0)),
            resil: self.resil.clone(),
        };
        comm.register_resilience();
        Ok(comm)
    }

    /// The agreement engine behind `agree` and `shrink`: a coordinator
    /// (lowest alive comm rank) collects fixed-size contributions from
    /// every alive member, folds them with `combine`, and broadcasts
    /// the verdict. Restarts when the local failure view changes; the
    /// attempt number `|failed ∩ group|` converges across ranks because
    /// failure evidence is shared (transport liveness + gossip), which
    /// re-synchronizes contribution tags without a leader election.
    fn coordinate(
        &self,
        r: &Arc<Resilience>,
        seq: u64,
        mine: Vec<u8>,
        combine: &dyn Fn(&mut Vec<u8>, &[u8]),
    ) -> MpiResult<Vec<u8>> {
        let n = mine.len();
        let det = r.detector().clone();
        let drive = self.proc.default_stream().clone();
        let deadline = wtime() + COORDINATE_TIMEOUT_S;
        let verdict_tag = coord_tag(self.ctx, seq, SUB_VERDICT);

        // The verdict receive outlives restarts (its tag is
        // attempt-independent) unless its coordinator died.
        let mut verdict: Option<(i32, Request, RecvSlot)> = None; // (coord comm rank, ...)

        // One snapshot of "who in the group is dead, per my detector".
        let view = |det: &FailureDetector| -> Vec<bool> {
            self.group.iter().map(|&w| det.is_failed(w)).collect()
        };

        'restart: loop {
            if wtime() > deadline {
                return Err(MpiError::Timeout("agree/shrink coordination"));
            }
            let failed = view(&det);
            let attempt = failed.iter().filter(|&&f| f).count() as u32;
            if attempt as usize >= SUB_VERDICT as usize {
                return Err(MpiError::Protocol("agree: too many failures".into()));
            }
            let Some(coord) = failed.iter().position(|&f| !f).map(|p| p as i32) else {
                return Err(MpiError::Protocol("agree: no alive member".into()));
            };
            mpfa_obs::global_counters()
                .agree_rounds
                .fetch_add(1, Ordering::Relaxed);
            let ctag = coord_tag(self.ctx, seq, attempt);

            if coord == self.rank {
                // Coordinator: collect one contribution per alive member.
                let mut acc = mine.clone();
                let recvs: Vec<(Request, RecvSlot)> = self
                    .group
                    .iter()
                    .enumerate()
                    .filter(|&(cr, _)| cr as i32 != self.rank && !failed[cr])
                    .map(|(_, &w)| r.ctrl_recv(w, ctag, n))
                    .collect();
                let mut folded = vec![false; recvs.len()];
                loop {
                    if wtime() > deadline {
                        r.drain_ctrl_tag(ctag);
                        return Err(MpiError::Timeout("agree/shrink coordination"));
                    }
                    drive.progress();
                    if view(&det) != failed {
                        // A member died mid-collection: drop this
                        // attempt's receives and renegotiate.
                        r.drain_ctrl_tag(ctag);
                        continue 'restart;
                    }
                    let mut all = true;
                    for (i, (req, slot)) in recvs.iter().enumerate() {
                        if folded[i] {
                            continue;
                        }
                        match req.result() {
                            None => all = false,
                            Some(Ok(_)) => {
                                combine(&mut acc, &slot.take());
                                folded[i] = true;
                            }
                            Some(Err(_)) => {
                                // Sweep failed this receive — the view
                                // comparison above will restart us on
                                // the next iteration.
                                all = false;
                            }
                        }
                    }
                    if all {
                        for (cr, &w) in self.group.iter().enumerate() {
                            if cr as i32 != self.rank && !failed[cr] {
                                r.ctrl_send(w, verdict_tag, acc.clone());
                            }
                        }
                        return Ok(acc);
                    }
                }
            } else {
                // Participant: contribute, await the verdict.
                let coord_world = self.group[coord as usize];
                r.ctrl_send(coord_world, ctag, mine.clone());
                match &verdict {
                    Some((c, _, _)) if *c == coord => {}
                    _ => {
                        // First attempt, or the coordinator changed
                        // (the old receive was failed by the sweep).
                        let (req, slot) = r.ctrl_recv(coord_world, verdict_tag, n);
                        verdict = Some((coord, req, slot));
                    }
                }
                loop {
                    if wtime() > deadline {
                        return Err(MpiError::Timeout("agree/shrink coordination"));
                    }
                    drive.progress();
                    let (_, req, slot) = verdict.as_ref().expect("posted above");
                    match req.result() {
                        Some(Ok(_)) => return Ok(slot.take()),
                        Some(Err(_)) => {
                            // Coordinator died; renegotiate with a new one.
                            verdict = None;
                            continue 'restart;
                        }
                        None => {}
                    }
                    if view(&det) != failed {
                        // New failure (maybe the coordinator, maybe
                        // another member whose attempt tag I must
                        // match). Keep the verdict receive if the
                        // coordinator is still the same.
                        continue 'restart;
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collectives::testutil::run_ranks;
    use crate::op::Op;
    use crate::world::{World, WorldConfig};
    use mpfa_resil::DetectorConfig;

    fn enable(proc: &Proc) -> Arc<Resilience> {
        proc.enable_resilience(DetectorConfig::default())
    }

    #[test]
    fn enable_resilience_is_idempotent_and_finalizable() {
        let procs = World::init(WorldConfig::instant(2));
        let p = &procs[0];
        let a = enable(p);
        let b = enable(p);
        assert!(Arc::ptr_eq(&a, &b));
        assert!(p.resilience().is_some());
        assert!(p.finalize(2.0), "resilience tasks must not block finalize");
    }

    #[test]
    fn coord_tag_fields_are_disjoint() {
        let a = coord_tag(3, 1, 0);
        let b = coord_tag(3, 1, 1);
        let c = coord_tag(3, 2, 0);
        let d = coord_tag(4, 1, 0);
        let v = coord_tag(3, 1, SUB_VERDICT);
        let all = [a, b, c, d, v];
        for (i, x) in all.iter().enumerate() {
            assert!(*x > 0, "tags must be valid (positive)");
            for (j, y) in all.iter().enumerate() {
                if i != j {
                    assert_ne!(x, y);
                }
            }
        }
        assert_ne!(a, CTRL_TAG_REVOKE);
        assert_ne!(a, CTRL_TAG_FAILURE);
    }

    #[test]
    fn agree_all_alive() {
        let results = run_ranks(4, |proc| {
            enable(&proc);
            let comm = proc.world_comm();
            let yes = comm.agree(true).unwrap();
            let no = comm.agree(proc.rank() != 2).unwrap();
            (yes, no)
        });
        for (yes, no) in results {
            assert!(yes);
            assert!(!no, "one dissent must flip the AND for everyone");
        }
    }

    #[test]
    fn chaos_kill_fails_requests_then_revoke_shrink_recovers() {
        const N: usize = 4;
        const VICTIM: usize = 2;
        let victim_done = std::sync::atomic::AtomicBool::new(false);
        let results = run_ranks(N, |proc| {
            enable(&proc);
            let comm = proc.world_comm();
            // Warmup proves the full comm works for the victim; for the
            // survivors it may race with the kill below (an in-flight
            // round partner dying is exactly the failure under test),
            // so they tolerate either outcome.
            let warm = comm.allreduce(&[1i64], Op::Sum);

            if proc.rank() == VICTIM {
                // The victim's pre-kill view is fully healthy.
                assert_eq!(warm.unwrap(), vec![N as i64]);
                // Die "mid-application": stop participating; rank 3
                // pulls the kill switch once we are out.
                victim_done.store(true, std::sync::atomic::Ordering::Release);
                return (-1i64, 0usize);
            }
            if proc.rank() == 3 {
                while !victim_done.load(std::sync::atomic::Ordering::Acquire) {
                    std::hint::spin_loop();
                }
                assert!(proc.world().chaos_kill(VICTIM));
            }

            // Survivors: the collective must ERROR, not hang.
            let mut saw_error = false;
            for _ in 0..200 {
                let fut = comm.iallreduce(&[1i64], Op::Sum).unwrap();
                match fut.wait_result() {
                    Ok(_) => continue, // pre-detection window
                    Err(_) => {
                        saw_error = true;
                        break;
                    }
                }
            }
            assert!(saw_error, "collective with a dead rank must fail");

            // ULFM recovery: revoke → agree → shrink → retry.
            comm.revoke().unwrap();
            assert!(comm.is_revoked());
            let ok = comm.agree(true).unwrap();
            assert!(ok);
            let shrunk = comm.shrink().unwrap();
            assert_eq!(shrunk.size(), N - 1);
            assert!(!shrunk.group().contains(&VICTIM));
            let sum = shrunk.allreduce(&[1i64], Op::Sum).unwrap();
            (sum[0], shrunk.size())
        });
        for (r, (sum, size)) in results.iter().enumerate() {
            if r == VICTIM {
                continue;
            }
            assert_eq!(*sum, (N - 1) as i64, "rank {r}");
            assert_eq!(*size, N - 1, "rank {r}");
        }
    }

    #[test]
    fn isend_to_failed_rank_is_born_failed() {
        let results = run_ranks(3, |proc| {
            let r = enable(&proc);
            let comm = proc.world_comm();
            comm.barrier().unwrap();
            if proc.rank() == 0 {
                // Local knowledge only — no kill switch needed.
                r.detector().report_failure(2);
                while !r.detector().is_failed(2) {
                    proc.default_stream().progress();
                }
                let req = comm.isend(&[1u8], 2, 5).unwrap();
                assert!(req.is_complete());
                req.error()
            } else {
                None
            }
        });
        assert_eq!(results[0], Some(RequestError::PeerFailed { rank: 2 }));
    }

    #[test]
    fn revoked_comm_refuses_new_operations() {
        let results = run_ranks(2, |proc| {
            enable(&proc);
            let comm = proc.world_comm();
            comm.barrier().unwrap();
            if proc.rank() == 0 {
                comm.revoke().unwrap();
                let s = comm.isend(&[0u8], 1, 1).unwrap();
                let r = comm.irecv::<u8>(1, 1, 1).unwrap();
                (s.error(), r.request().error())
            } else {
                // Wait for the propagated notice, then observe locally.
                let t0 = mpfa_core::wtime();
                while !comm.is_revoked() {
                    proc.default_stream().progress();
                    assert!(mpfa_core::wtime() - t0 < 5.0, "revoke did not propagate");
                }
                let s = comm.isend(&[0u8], 0, 1).unwrap();
                (s.error(), s.error())
            }
        });
        assert_eq!(results[0].0, Some(RequestError::Revoked));
        assert_eq!(results[0].1, Some(RequestError::Revoked));
        assert_eq!(results[1].0, Some(RequestError::Revoked));
    }

    #[test]
    fn revoke_unblocks_posted_recv() {
        let results = run_ranks(2, |proc| {
            enable(&proc);
            let comm = proc.world_comm();
            comm.barrier().unwrap();
            if proc.rank() == 0 {
                // A receive nobody will ever satisfy.
                let r = comm.irecv::<u8>(1, 1, 99).unwrap();
                comm.revoke().unwrap();
                r.request().wait_result().err()
            } else {
                comm.barrier().ok(); // may fail after revoke; ignore
                None
            }
        });
        assert_eq!(results[0], Some(RequestError::Revoked));
    }
}

//! `async`/`await` entry points for communicator operations.
//!
//! Every nonblocking handle this runtime hands out is already a
//! `Future` ([`mpfa_core::Request`], [`crate::RecvRequest`],
//! [`crate::CollFuture`]); the methods here are the ergonomic layer on
//! top: initiate the operation, get back a future resolving to typed
//! data with MPI-level errors (`MpiError`), ready to be spawned on an
//! `mpfa-async` executor or driven by `block_on`.
//!
//! Initiation errors (bad rank, bad tag) surface immediately from the
//! method; completion-time faults (peer failure, revocation — the ULFM
//! path) surface through the future's output.

use std::future::Future;

use mpfa_core::Status;

use crate::comm::Comm;
use crate::datatype::MpiType;
use crate::error::{MpiError, MpiResult};
use crate::op::{Op, Reducible};

impl Comm {
    /// Initiate a send and return a future resolving when the payload is
    /// delivered (or the operation is doomed by a fault).
    pub fn send_async<T: MpiType>(
        &self,
        data: &[T],
        dst: i32,
        tag: i32,
    ) -> MpiResult<impl Future<Output = MpiResult<Status>>> {
        let req = self.isend(data, dst, tag)?;
        Ok(async move { req.await.map_err(MpiError::from) })
    }

    /// Initiate a receive of up to `count` elements and return a future
    /// resolving to the typed payload and status.
    pub fn recv_async<T: MpiType>(
        &self,
        count: usize,
        src: i32,
        tag: i32,
    ) -> MpiResult<impl Future<Output = MpiResult<(Vec<T>, Status)>>> {
        let recv = self.irecv::<T>(count, src, tag)?;
        Ok(async move { recv.await.map_err(MpiError::from) })
    }

    /// Initiate an allreduce and return a future resolving to the
    /// reduced vector.
    pub fn allreduce_async<T: Reducible>(
        &self,
        data: &[T],
        op: Op,
    ) -> MpiResult<impl Future<Output = MpiResult<Vec<T>>>> {
        let fut = self.iallreduce(data, op)?;
        Ok(async move {
            let (out, _status) = fut.await.map_err(MpiError::from)?;
            Ok(out)
        })
    }

    /// Initiate a barrier and return a future resolving when every rank
    /// has entered it.
    pub fn barrier_async(&self) -> MpiResult<impl Future<Output = MpiResult<()>>> {
        let fut = self.ibarrier()?;
        Ok(async move {
            fut.await.map_err(MpiError::from)?;
            Ok(())
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collectives::testutil::run_ranks;
    use std::future::Future;
    use std::pin::pin;
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Arc;
    use std::task::{Context, Poll, Wake, Waker};

    use mpfa_core::Stream;

    struct FlagWake(AtomicBool);
    impl Wake for FlagWake {
        fn wake(self: Arc<Self>) {
            self.0.store(true, Ordering::Release);
        }
    }

    /// Local test-only block_on (the real one lives in `mpfa-async`,
    /// which sits above this crate).
    fn drive<F: Future>(stream: &Stream, fut: F) -> F::Output {
        let flag = Arc::new(FlagWake(AtomicBool::new(false)));
        let waker = Waker::from(flag.clone());
        let mut cx = Context::from_waker(&waker);
        let mut fut = pin!(fut);
        loop {
            if let Poll::Ready(v) = fut.as_mut().poll(&mut cx) {
                return v;
            }
            while !flag.0.swap(false, Ordering::Acquire) {
                stream.progress();
            }
        }
    }

    #[test]
    fn send_recv_async_roundtrip() {
        let results = run_ranks(2, |proc| {
            let comm = proc.world_comm();
            let stream = proc.default_stream().clone();
            if comm.rank() == 0 {
                let fut = comm.send_async(&[1i32, 2, 3], 1, 9).unwrap();
                let st = drive(&stream, fut).unwrap();
                assert!(!st.cancelled);
                Vec::new()
            } else {
                let fut = comm.recv_async::<i32>(3, 0, 9).unwrap();
                let (data, st) = drive(&stream, fut).unwrap();
                assert_eq!(st.source, 0);
                data
            }
        });
        assert_eq!(results[1], vec![1, 2, 3]);
    }

    #[test]
    fn allreduce_async_reduces() {
        let results = run_ranks(4, |proc| {
            let comm = proc.world_comm();
            let stream = proc.default_stream().clone();
            let fut = comm
                .allreduce_async(&[proc.rank() as i64 + 1], Op::Sum)
                .unwrap();
            drive(&stream, fut).unwrap()
        });
        for r in results {
            assert_eq!(r, vec![10]);
        }
    }

    #[test]
    fn barrier_async_completes() {
        run_ranks(3, |proc| {
            let comm = proc.world_comm();
            let stream = proc.default_stream().clone();
            let fut = comm.barrier_async().unwrap();
            drive(&stream, fut).unwrap();
        });
    }

    #[test]
    fn send_async_invalid_rank_fails_at_initiation() {
        run_ranks(2, |proc| {
            let comm = proc.world_comm();
            assert!(matches!(
                comm.send_async(&[0u8], 7, 0).map(|_| ()),
                Err(MpiError::InvalidRank { rank: 7, .. })
            ));
        });
    }

    #[test]
    fn awaited_recv_from_failed_peer_errors() {
        use crate::DetectorConfig;
        let victim_out = AtomicBool::new(false);
        let results = run_ranks(2, |proc| {
            proc.enable_resilience(DetectorConfig::default());
            let comm = proc.world_comm();
            let stream = proc.default_stream().clone();
            if proc.rank() == 1 {
                // Rank 1 posts a receive rank 0 will never satisfy, then
                // kills rank 0 once it has stopped participating; the
                // await must resolve to an error, not hang.
                let fut = comm.recv_async::<u8>(8, 0, 5).unwrap();
                while !victim_out.load(Ordering::Acquire) {
                    std::hint::spin_loop();
                }
                assert!(proc.world().chaos_kill(0));
                let res = drive(&stream, fut);
                assert!(
                    matches!(
                        res,
                        Err(MpiError::ProcFailed { .. }) | Err(MpiError::Revoked)
                    ),
                    "expected fault, got {res:?}"
                );
                true
            } else {
                // Rank 0: vanish without sending.
                victim_out.store(true, Ordering::Release);
                false
            }
        });
        assert!(results[1]);
    }
}

//! Non-contiguous (vector-datatype) point-to-point operations, served by
//! the asynchronous datatype engine.
//!
//! `isend_vector` packs the strided selection *asynchronously* — the pack
//! job runs in segments under `Datatype_engine_progress` (paper
//! Listing 1.1, entry 1) — and only then injects the message.
//! `irecv_vector` receives the dense payload and unpacks it asynchronously
//! into the layout's extent. Both directions chain their stages with
//! `MPIX_Async`-style tasks on the communicator's stream, i.e. the runtime
//! dogfoods the paper's extension internally.

use std::sync::Arc;

use mpfa_core::sync::Mutex;
use mpfa_core::{AsyncPoll, Request, Status};

use crate::comm::Comm;
use crate::datatype::{to_bytes, Layout, MpiType};
use crate::dtengine::{pack_job, unpack_job};
use crate::error::MpiResult;

/// Elements (blocks) a pack/unpack job processes per progress poll.
const SEGMENT_BLOCKS: usize = 64;

/// Handle of a pending vector receive; yields the unpacked buffer
/// (`layout.extent()` elements, gaps zero-filled).
pub struct VectorRecv<T: MpiType> {
    req: Request,
    out: Arc<Mutex<Option<Vec<T>>>>,
}

impl<T: MpiType> VectorRecv<T> {
    /// `MPIX_Request_is_complete` semantics.
    pub fn is_complete(&self) -> bool {
        self.req.is_complete()
    }

    /// A clone of the underlying request.
    pub fn request(&self) -> Request {
        self.req.clone()
    }

    /// Wait for receive + unpack and take the reconstructed buffer.
    pub fn wait(self) -> (Vec<T>, Status) {
        let status = self.req.wait();
        let data = self
            .out
            .lock()
            .take()
            .expect("unpack deposited before completion");
        (data, status)
    }
}

impl Comm {
    /// Nonblocking strided send: transmit the `layout`-selected elements
    /// of `data`. The pack runs asynchronously in the datatype engine; the
    /// returned request completes when the packed message's send completes.
    pub fn isend_vector<T: MpiType>(
        &self,
        data: &[T],
        layout: Layout,
        dst: i32,
        tag: i32,
    ) -> MpiResult<Request> {
        layout.check(data.len());
        self.world_rank(dst)?; // validates dst
        let (req, completer) = Request::pair(self.stream());

        let comm = self.clone();
        let stream = self.stream().clone();
        let data = data.to_vec();
        let mut completer = Some(completer);
        self.bundle()
            .dt
            .submit(pack_job(data, layout, SEGMENT_BLOCKS, move |packed| {
                // Pack finished: inject the dense payload, then forward the
                // inner send's completion to the caller's request.
                let inner = comm
                    .isend_bytes(to_bytes(&packed), dst, tag)
                    .expect("dst validated at initiation");
                let completer = completer.take().expect("pack_job completes once");
                if inner.is_complete() {
                    completer.complete(inner.status().expect("complete"));
                    return;
                }
                let mut completer = Some(completer);
                stream.async_start(move |_t| {
                    if inner.is_complete() {
                        let c = completer.take().expect("forwarder completes once");
                        c.complete(inner.status().expect("complete"));
                        AsyncPoll::Done
                    } else {
                        AsyncPoll::Pending
                    }
                });
            }));
        Ok(req)
    }

    /// Nonblocking strided receive: receive a dense payload of
    /// `layout.element_count()` elements and unpack it into a
    /// `layout.extent()`-element buffer (gaps zero-filled).
    pub fn irecv_vector<T: MpiType + Default>(
        &self,
        layout: Layout,
        src: i32,
        tag: i32,
    ) -> MpiResult<VectorRecv<T>> {
        let inner = self.irecv::<T>(layout.element_count(), src, tag)?;
        let (req, completer) = Request::pair(self.stream());
        let out: Arc<Mutex<Option<Vec<T>>>> = Arc::new(Mutex::new(None));

        let dt = self.bundle().dt.clone();
        let out_writer = out.clone();
        let mut inner = Some(inner);
        let mut completer = Some(completer);
        self.stream().async_start(move |_t| {
            let r = inner.as_ref().expect("recv forwarder polled past Done");
            if !r.is_complete() {
                return AsyncPoll::Pending;
            }
            let (packed, status) = inner.take().expect("present").take();
            let out_writer = out_writer.clone();
            let completer = completer.take().expect("completes once");
            let mut completer = Some(completer);
            dt.submit(unpack_job(
                packed,
                layout,
                SEGMENT_BLOCKS,
                move |unpacked| {
                    *out_writer.lock() = Some(unpacked);
                    completer.take().expect("completes once").complete(status);
                },
            ));
            AsyncPoll::Done
        });
        Ok(VectorRecv { req, out })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collectives::testutil::run_ranks;

    #[test]
    fn vector_send_recv_roundtrip() {
        let layout = Layout::Vector {
            count: 8,
            blocklen: 2,
            stride: 4,
        };
        let results = run_ranks(2, move |proc| {
            let comm = proc.world_comm();
            if proc.rank() == 0 {
                let data: Vec<i32> = (0..32).collect();
                let req = comm.isend_vector(&data, layout, 1, 5).unwrap();
                req.wait();
                Vec::new()
            } else {
                let recv = comm.irecv_vector::<i32>(layout, 0, 5).unwrap();
                let (data, status) = recv.wait();
                assert_eq!(status.bytes, layout.element_count() * 4);
                data
            }
        });
        // Receiver reconstructs the strided selection with zero gaps.
        let original: Vec<i32> = (0..32).collect();
        let mut expect = vec![0i32; layout.extent()];
        layout.unpack(&layout.pack(&original), &mut expect);
        assert_eq!(results[1], expect);
    }

    #[test]
    fn vector_send_to_contiguous_recv() {
        // A strided send arrives as a dense message; a plain typed recv of
        // element_count() elements sees the packed data.
        let layout = Layout::Vector {
            count: 3,
            blocklen: 1,
            stride: 2,
        };
        let results = run_ranks(2, move |proc| {
            let comm = proc.world_comm();
            if proc.rank() == 0 {
                let data = vec![10i32, 11, 12, 13, 14, 15];
                comm.isend_vector(&data, layout, 1, 1).unwrap().wait();
                Vec::new()
            } else {
                comm.recv::<i32>(3, 0, 1).unwrap().0
            }
        });
        assert_eq!(results[1], vec![10, 12, 14]);
    }

    #[test]
    fn dt_engine_reports_work_during_vector_ops() {
        let layout = Layout::Vector {
            count: 1000,
            blocklen: 1,
            stride: 2,
        };
        let results = run_ranks(2, move |proc| {
            let comm = proc.world_comm();
            if proc.rank() == 0 {
                let data = vec![7i32; 2000];
                let req = comm.isend_vector(&data, layout, 1, 1).unwrap();
                // The pack job sits in the engine until progress runs it.
                let busy = comm.bundle().dt.pending() > 0;
                req.wait();
                busy
            } else {
                let recv = comm.irecv_vector::<i32>(layout, 0, 1).unwrap();
                recv.wait();
                true
            }
        });
        assert!(results[0], "datatype engine saw no pending work");
    }
}

//! Error type for runtime operations.

use std::fmt;

/// Errors surfaced by the message-passing runtime.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MpiError {
    /// A rank argument was outside the communicator.
    InvalidRank {
        /// The offending rank.
        rank: i32,
        /// The communicator size.
        size: usize,
    },
    /// A tag argument was invalid (negative tags are reserved for
    /// wildcards and internal protocols).
    InvalidTag(i32),
    /// A receive buffer was smaller than the matched message.
    Truncation {
        /// Bytes in the incoming message.
        incoming: usize,
        /// Bytes the receive can hold.
        capacity: usize,
    },
    /// A count mismatch in a collective (all ranks must agree).
    CountMismatch {
        /// What this rank supplied.
        got: usize,
        /// What the operation required.
        expected: usize,
    },
    /// The operation is not supported for the datatype (e.g. bitwise ops
    /// on floats).
    BadOpForType(&'static str),
    /// The operation timed out (used by test harnesses; the runtime itself
    /// never gives up).
    Timeout(&'static str),
    /// The communicator was revoked (`MPIX_ERR_REVOKED`): a rank called
    /// `Comm::revoke` after observing a failure. Only `shrink` and
    /// `agree` remain usable on the handle.
    Revoked,
    /// A participating process failed (`MPIX_ERR_PROC_FAILED`).
    ProcFailed {
        /// The failed process's world rank, or -1 when unattributable.
        world_rank: i32,
    },
    /// Internal protocol violation — indicates a bug, preserved in the
    /// error path rather than a panic so tests can assert on it.
    Protocol(String),
}

impl fmt::Display for MpiError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MpiError::InvalidRank { rank, size } => {
                write!(f, "invalid rank {rank} for communicator of size {size}")
            }
            MpiError::InvalidTag(tag) => write!(f, "invalid tag {tag}"),
            MpiError::Truncation { incoming, capacity } => write!(
                f,
                "message truncated: {incoming} bytes arriving into {capacity}-byte buffer"
            ),
            MpiError::CountMismatch { got, expected } => {
                write!(f, "count mismatch: got {got}, expected {expected}")
            }
            MpiError::BadOpForType(what) => write!(f, "operation not defined: {what}"),
            MpiError::Timeout(what) => write!(f, "timed out: {what}"),
            MpiError::Revoked => write!(f, "communicator revoked"),
            MpiError::ProcFailed { world_rank } => {
                write!(f, "process failed (world rank {world_rank})")
            }
            MpiError::Protocol(what) => write!(f, "protocol violation: {what}"),
        }
    }
}

impl std::error::Error for MpiError {}

impl From<mpfa_core::RequestError> for MpiError {
    fn from(err: mpfa_core::RequestError) -> MpiError {
        match err {
            mpfa_core::RequestError::PeerFailed { rank } => {
                MpiError::ProcFailed { world_rank: rank }
            }
            mpfa_core::RequestError::Revoked => MpiError::Revoked,
        }
    }
}

/// Result alias for runtime operations.
pub type MpiResult<T> = Result<T, MpiError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert!(MpiError::InvalidRank { rank: 9, size: 4 }
            .to_string()
            .contains("9"));
        assert!(MpiError::Truncation {
            incoming: 10,
            capacity: 4
        }
        .to_string()
        .contains("truncated"));
        assert!(MpiError::InvalidTag(-3).to_string().contains("-3"));
        assert!(MpiError::Timeout("barrier").to_string().contains("barrier"));
        assert!(MpiError::Revoked.to_string().contains("revoked"));
        assert!(MpiError::ProcFailed { world_rank: 2 }
            .to_string()
            .contains("2"));
    }

    #[test]
    fn is_std_error() {
        fn takes_err(_e: &dyn std::error::Error) {}
        takes_err(&MpiError::InvalidTag(1));
    }
}

//! Collective-schedule progression — the `Collective_sched_progress` entry
//! of the collated progress function (paper Listing 1.1).
//!
//! A nonblocking collective is a multi-stage task graph (Figure 2(c): a
//! task with multiple wait blocks). Each algorithm implements [`CollTask`]:
//! `advance` checks its outstanding requests with the side-effect-free
//! `Request::is_complete` and, when a stage finishes, issues the next
//! stage's operations — exactly the structure the paper's user-level
//! allreduce (Listing 1.8) uses from the outside.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use mpfa_core::sync::Mutex;
use mpfa_core::{AsyncPoll, Request, RequestError};

/// The verdict on a schedule stage's outstanding requests.
///
/// With fault tolerance enabled, a stage request can complete *in error*
/// (peer failure or revocation); a schedule gate must distinguish that
/// from success so it can abort — failing its collective's request —
/// instead of reading a receive slot that never filled.
pub(crate) enum StageCheck {
    /// Every request completed successfully.
    Ready,
    /// At least one request is still in flight (and none failed).
    Wait,
    /// A request completed in error: abort the schedule with this error.
    Failed(RequestError),
}

/// Check a stage's requests. An error wins over incompleteness: the
/// schedule can never make progress once any dependency has failed, so
/// abort eagerly rather than waiting out the stragglers.
pub(crate) fn check_stage(reqs: &[&Request]) -> StageCheck {
    let mut ready = true;
    for r in reqs {
        match r.result() {
            None => ready = false,
            Some(Err(err)) => return StageCheck::Failed(err),
            Some(Ok(_)) => {}
        }
    }
    if ready {
        StageCheck::Ready
    } else {
        StageCheck::Wait
    }
}

/// A multi-stage collective state machine.
pub trait CollTask: Send {
    /// Advance if possible. Must be lightweight and must not block or
    /// recursively invoke progress; use `Request::is_complete` to check
    /// dependencies.
    fn advance(&mut self) -> AsyncPoll;
}

impl<F> CollTask for F
where
    F: FnMut() -> AsyncPoll + Send,
{
    fn advance(&mut self) -> AsyncPoll {
        self()
    }
}

/// The queue of active collective schedules for one VCI.
pub struct SchedQueue {
    tasks: Mutex<Vec<Box<dyn CollTask>>>,
    pending: AtomicUsize,
}

impl Default for SchedQueue {
    fn default() -> Self {
        Self::new()
    }
}

impl SchedQueue {
    /// An empty queue.
    pub fn new() -> SchedQueue {
        SchedQueue {
            tasks: Mutex::new(Vec::new()),
            pending: AtomicUsize::new(0),
        }
    }

    /// Shared handle.
    pub fn shared() -> Arc<SchedQueue> {
        Arc::new(SchedQueue::new())
    }

    /// Enqueue an active schedule.
    pub fn submit(&self, task: Box<dyn CollTask>) {
        self.pending.fetch_add(1, Ordering::Release);
        self.tasks.lock().push(task);
    }

    /// Active schedules (one atomic read — the hook's `has_work`).
    pub fn pending(&self) -> usize {
        self.pending.load(Ordering::Acquire)
    }

    /// Advance every active schedule once. Returns true if any schedule
    /// made progress or completed.
    pub fn poll(&self) -> bool {
        if self.pending() == 0 {
            return false;
        }
        let mut tasks = self.tasks.lock();
        let mut any = false;
        let mut finished = 0;
        let mut i = 0;
        while i < tasks.len() {
            match tasks[i].advance() {
                AsyncPoll::Done => {
                    tasks.swap_remove(i);
                    finished += 1;
                    any = true;
                }
                AsyncPoll::Progress => {
                    any = true;
                    i += 1;
                }
                AsyncPoll::Pending => i += 1,
            }
        }
        drop(tasks);
        if finished > 0 {
            self.pending.fetch_sub(finished, Ordering::Release);
        }
        any
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_queue_idle() {
        let q = SchedQueue::new();
        assert!(!q.poll());
        assert_eq!(q.pending(), 0);
    }

    #[test]
    fn stages_advance_then_complete() {
        let q = SchedQueue::new();
        let mut stage = 0;
        q.submit(Box::new(move || {
            stage += 1;
            match stage {
                1 => AsyncPoll::Progress,
                2 => AsyncPoll::Pending,
                _ => AsyncPoll::Done,
            }
        }));
        assert!(q.poll()); // Progress
        assert!(!q.poll()); // Pending: no progress
        assert!(q.poll()); // Done
        assert_eq!(q.pending(), 0);
        assert!(!q.poll());
    }

    #[test]
    fn multiple_schedules_interleave() {
        let q = SchedQueue::new();
        let done = Arc::new(AtomicUsize::new(0));
        for rounds in 1..=3 {
            let d = done.clone();
            let mut left = rounds;
            q.submit(Box::new(move || {
                left -= 1;
                if left == 0 {
                    d.fetch_add(1, Ordering::Relaxed);
                    AsyncPoll::Done
                } else {
                    AsyncPoll::Progress
                }
            }));
        }
        let mut sweeps = 0;
        while q.pending() > 0 {
            q.poll();
            sweeps += 1;
            assert!(sweeps <= 3);
        }
        assert_eq!(done.load(Ordering::Relaxed), 3);
    }
}

//! Communicators: the user-facing handle for point-to-point messaging and
//! communicator management.
//!
//! A [`Comm`] is a *per-rank* handle (as in MPI: each process holds its own
//! handle to the same logical communicator). It knows its context id, its
//! group (communicator rank → world rank), the VCI carrying its traffic,
//! and the stream serving that VCI.
//!
//! * [`Comm::dup`] / [`Comm::split`] — communicator management.
//! * [`Comm::with_stream`] — `MPIX_Stream_comm_create`: bind a duplicate to
//!   a user stream with a dedicated VCI (paper §3.1).
//! * [`Comm::isend`] / [`Comm::irecv`] and friends — typed point-to-point.
//! * Collectives live in [`crate::collectives`] as further `impl Comm`
//!   blocks.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use mpfa_core::{Request, RequestError, Status, Stream};
use mpfa_transport::MpfaBytes;

use crate::datatype::{to_bytes, MpiType};
use crate::error::{MpiError, MpiResult};
use crate::matching;
use crate::proc::{Proc, VciBundle};
use crate::recv::{RecvBytesRequest, RecvRequest};
use crate::resilience::Resilience;
use crate::wire::MsgHeader;

/// `MPI_ANY_SOURCE`.
pub const ANY_SOURCE: i32 = matching::ANY_SOURCE;
/// `MPI_ANY_TAG`.
pub const ANY_TAG: i32 = matching::ANY_TAG;

/// Exchange kinds for the world agreement table.
const EX_SPLIT: u8 = 1;

/// A communicator handle for one rank.
#[derive(Clone)]
pub struct Comm {
    pub(crate) proc: Proc,
    pub(crate) bundle: Arc<VciBundle>,
    pub(crate) vci_idx: usize,
    /// Base context id; the wire uses `2*ctx` for point-to-point and
    /// `2*ctx + 1` for collectives (MPICH's dual-context scheme).
    pub(crate) ctx: u64,
    /// Communicator rank → world rank.
    pub(crate) group: Arc<Vec<usize>>,
    pub(crate) rank: i32,
    /// Creation counter for deriving child context keys (dup/split/
    /// with_stream must be called collectively and in the same order on
    /// every rank, per MPI semantics — this counter then agrees).
    pub(crate) epoch: Arc<AtomicU64>,
    /// Collective sequence number (same same-order requirement).
    pub(crate) coll_seq: Arc<AtomicU64>,
    /// Agreement sequence number (`agree`/`shrink` calls must likewise be
    /// collective and same-order).
    pub(crate) agree_seq: Arc<AtomicU64>,
    /// ULFM machinery, cached at construction (`None` when the proc
    /// never called `enable_resilience`, keeping the fast path lock-free;
    /// enable resilience *before* creating communicator handles).
    pub(crate) resil: Option<Arc<Resilience>>,
}

impl Comm {
    /// The world communicator of `proc`.
    pub(crate) fn world(proc: Proc) -> Comm {
        let bundle = proc.bundle(0).expect("VCI 0 exists");
        let group: Arc<Vec<usize>> = Arc::new((0..proc.size()).collect());
        let rank = proc.rank() as i32;
        let resil = proc.resilience();
        let comm = Comm {
            proc,
            bundle,
            vci_idx: 0,
            ctx: 0,
            group,
            rank,
            epoch: Arc::new(AtomicU64::new(0)),
            coll_seq: Arc::new(AtomicU64::new(0)),
            agree_seq: Arc::new(AtomicU64::new(0)),
            resil,
        };
        comm.register_resilience();
        comm
    }

    /// This rank within the communicator (`MPI_Comm_rank`).
    pub fn rank(&self) -> i32 {
        self.rank
    }

    /// Number of ranks (`MPI_Comm_size`).
    pub fn size(&self) -> usize {
        self.group.len()
    }

    /// The stream serving this communicator's traffic.
    pub fn stream(&self) -> &Stream {
        self.bundle.vci.stream()
    }

    /// The owning per-rank runtime context.
    pub fn proc(&self) -> &Proc {
        &self.proc
    }

    /// Base context id (diagnostics).
    pub fn context_id(&self) -> u64 {
        self.ctx
    }

    /// World rank of communicator rank `r`.
    pub fn world_rank(&self, r: i32) -> MpiResult<usize> {
        self.check_rank(r)?;
        Ok(self.group[r as usize])
    }

    /// The communicator's group: communicator rank → world rank.
    pub fn group(&self) -> &[usize] {
        &self.group
    }

    /// Translate a world rank into this communicator's rank, if the world
    /// rank is a member.
    pub fn rank_of_world(&self, world_rank: usize) -> Option<i32> {
        self.group
            .iter()
            .position(|&w| w == world_rank)
            .map(|p| p as i32)
    }

    fn check_rank(&self, r: i32) -> MpiResult<()> {
        if r < 0 || r as usize >= self.group.len() {
            return Err(MpiError::InvalidRank {
                rank: r,
                size: self.group.len(),
            });
        }
        Ok(())
    }

    fn check_tag(&self, tag: i32) -> MpiResult<()> {
        if tag < 0 {
            return Err(MpiError::InvalidTag(tag));
        }
        Ok(())
    }

    /// Wire endpoint of communicator rank `r`.
    pub(crate) fn ep_of(&self, r: i32) -> usize {
        self.proc
            .world()
            .config()
            .ep_index(self.group[r as usize], self.vci_idx)
    }

    pub(crate) fn ptp_ctx(&self) -> u64 {
        self.ctx * 2
    }

    pub(crate) fn coll_ctx(&self) -> u64 {
        self.ctx * 2 + 1
    }

    pub(crate) fn bundle(&self) -> &Arc<VciBundle> {
        &self.bundle
    }

    // ---------------------------------------------------------------
    // Point-to-point
    // ---------------------------------------------------------------

    /// Nonblocking typed send (`MPI_Isend`). The data is captured at call
    /// time; the request completes per the message mode of Figure 1.
    pub fn isend<T: MpiType>(&self, data: &[T], dst: i32, tag: i32) -> MpiResult<Request> {
        self.check_rank(dst)?;
        self.check_tag(tag)?;
        Ok(self.isend_on_ctx(self.ptp_ctx(), to_bytes(data), dst, tag))
    }

    /// Nonblocking raw-bytes send. Accepts an owned buffer or an
    /// [`MpfaBytes`] view; either way the payload is captured by
    /// refcount, not copied.
    pub fn isend_bytes(
        &self,
        data: impl Into<MpfaBytes>,
        dst: i32,
        tag: i32,
    ) -> MpiResult<Request> {
        self.check_rank(dst)?;
        self.check_tag(tag)?;
        Ok(self.isend_on_ctx(self.ptp_ctx(), data, dst, tag))
    }

    /// Nonblocking raw-bytes receive whose payload comes out as a
    /// refcounted view — the zero-copy receive path. On a shared-memory
    /// transport a large payload completes as a window into the peer's
    /// ring (released when the view drops); no typed conversion, no
    /// flatten copy.
    pub fn irecv_bytes(&self, capacity: usize, src: i32, tag: i32) -> MpiResult<RecvBytesRequest> {
        if src != ANY_SOURCE {
            self.check_rank(src)?;
        }
        if tag != ANY_TAG {
            self.check_tag(tag)?;
        }
        let (req, slot) = self.irecv_on_ctx(self.ptp_ctx(), capacity, src, tag);
        Ok(RecvBytesRequest::new(req, slot))
    }

    /// Blocking typed send (`MPI_Send`): initiation + wait driving this
    /// communicator's stream.
    pub fn send<T: MpiType>(&self, data: &[T], dst: i32, tag: i32) -> MpiResult<Status> {
        Ok(self.isend(data, dst, tag)?.wait())
    }

    /// Nonblocking typed receive of up to `count` elements (`MPI_Irecv`).
    pub fn irecv<T: MpiType>(&self, count: usize, src: i32, tag: i32) -> MpiResult<RecvRequest<T>> {
        if src != ANY_SOURCE {
            self.check_rank(src)?;
        }
        if tag != ANY_TAG {
            self.check_tag(tag)?;
        }
        let (req, slot) = self.irecv_on_ctx(self.ptp_ctx(), count * T::SIZE, src, tag);
        Ok(RecvRequest::new(req, slot))
    }

    /// Blocking typed receive (`MPI_Recv`).
    pub fn recv<T: MpiType>(
        &self,
        count: usize,
        src: i32,
        tag: i32,
    ) -> MpiResult<(Vec<T>, Status)> {
        Ok(self.irecv::<T>(count, src, tag)?.wait())
    }

    /// `MPI_Iprobe`: check for a matching unexpected message, returning
    /// `(source, tag, bytes)` without receiving it. Drives one progress
    /// call so arrived packets become visible.
    pub fn iprobe(&self, src: i32, tag: i32) -> MpiResult<Option<(i32, i32, usize)>> {
        if src != ANY_SOURCE {
            self.check_rank(src)?;
        }
        if tag != ANY_TAG {
            self.check_tag(tag)?;
        }
        self.stream().progress();
        Ok(self.bundle.vci.iprobe(self.ptp_ctx(), src, tag))
    }

    /// `MPI_Probe`: block (driving this communicator's stream) until a
    /// matching message is pending, returning `(source, tag, bytes)`
    /// without receiving it.
    pub fn probe(&self, src: i32, tag: i32) -> MpiResult<(i32, i32, usize)> {
        loop {
            if let Some(hit) = self.iprobe(src, tag)? {
                return Ok(hit);
            }
        }
    }

    /// Combined send+receive (`MPI_Sendrecv`): both initiated before
    /// either is waited on — the idiom that avoids the head-to-head
    /// deadlock of paired blocking calls.
    pub fn sendrecv<T: MpiType>(
        &self,
        send_data: &[T],
        dst: i32,
        send_tag: i32,
        recv_count: usize,
        src: i32,
        recv_tag: i32,
    ) -> MpiResult<(Vec<T>, Status)> {
        let sreq = self.isend(send_data, dst, send_tag)?;
        let rreq = self.irecv::<T>(recv_count, src, recv_tag)?;
        let out = rreq.wait();
        sreq.wait();
        Ok(out)
    }

    /// Internal: send bytes on an explicit wire context (used by both the
    /// point-to-point and collective paths).
    ///
    /// This is the choke point for the ULFM error path: every comm-level
    /// send — including collective-internal rounds — is refused here once
    /// the communicator is revoked or the destination failed, so waits on
    /// the returned request terminate with an error instead of spinning.
    pub(crate) fn isend_on_ctx(
        &self,
        ctx: u64,
        data: impl Into<MpfaBytes>,
        dst: i32,
        tag: i32,
    ) -> Request {
        if let Some(err) = self.fault_for(Some(dst)) {
            return Request::failed(self.stream(), err);
        }
        let hdr = MsgHeader {
            context_id: ctx,
            src_rank: self.rank,
            tag,
        };
        let req = self.bundle.vci.isend_bytes(self.ep_of(dst), hdr, data);
        self.recheck_fault(Some(dst));
        req
    }

    /// Internal: receive bytes on an explicit wire context (same ULFM
    /// choke point as [`Comm::isend_on_ctx`]).
    pub(crate) fn irecv_on_ctx(
        &self,
        ctx: u64,
        capacity: usize,
        src: i32,
        tag: i32,
    ) -> (Request, matching::RecvSlot) {
        let known_src = (src != ANY_SOURCE).then_some(src);
        if let Some(err) = self.fault_for(known_src) {
            return (
                Request::failed(self.stream(), err),
                matching::RecvSlot::new(),
            );
        }
        let out = self.bundle.vci.irecv_bytes(ctx, src, tag, capacity);
        self.recheck_fault(known_src);
        out
    }

    /// The error a fresh operation involving `peer` (communicator rank)
    /// must be born with, if any.
    pub(crate) fn fault_for(&self, peer: Option<i32>) -> Option<RequestError> {
        let r = self.resil.as_ref()?;
        if r.is_revoked(self.ctx) {
            return Some(RequestError::Revoked);
        }
        let p = peer?;
        let w = self.group[p as usize];
        r.detector()
            .is_failed(w)
            .then_some(RequestError::PeerFailed { rank: w as i32 })
    }

    /// The error a fresh *collective* on this comm must be born with, if
    /// any (initiation guard used by the schedule constructors; peer
    /// failures surface later through the schedule's stage checks).
    pub(crate) fn coll_fault(&self) -> Option<RequestError> {
        self.fault_for(None)
    }

    /// Post-insert recheck closing the detect/post race: an operation
    /// checked clean in [`Comm::fault_for`], was inserted into the
    /// protocol tables, and the failure sweep may have run *between* the
    /// two — in which case the sweep missed it and nothing would ever
    /// fail it. If the fault is visible now, re-run the sweep (which
    /// sees the inserted entry); if it becomes visible later, the
    /// epoch-triggered sweep catches the entry instead.
    fn recheck_fault(&self, peer: Option<i32>) {
        if let Some(r) = &self.resil {
            if self.fault_for(peer).is_some() {
                r.sweep_now();
            }
        }
    }

    /// Register this handle's context/group/VCI with the resilience
    /// layer so the failure sweep can fail its outstanding operations.
    pub(crate) fn register_resilience(&self) {
        if let Some(r) = &self.resil {
            r.register_comm(
                self.ctx,
                self.group.clone(),
                self.bundle.vci.clone(),
                self.vci_idx,
            );
        }
    }

    // ---------------------------------------------------------------
    // Communicator management
    // ---------------------------------------------------------------

    /// `MPI_Comm_dup`: a new communicator with the same group and a fresh
    /// context. Collective: every rank of the communicator must call, in
    /// the same order relative to other creations on this communicator.
    pub fn dup(&self) -> MpiResult<Comm> {
        let epoch = self.epoch.fetch_add(1, Ordering::AcqRel);
        let key = epoch << 32; // color field zero
        let ctx = self
            .proc
            .world()
            .inner
            .registry
            .lock()
            .child_ctx(self.ctx, key);
        let vci_idx = self.proc.world().inner.registry.lock().vci_for_ctx(
            ctx,
            false,
            self.vci_idx,
            self.proc.world().config().max_vcis,
        )?;
        let bundle = self
            .proc
            .bundle(vci_idx)
            .ok_or_else(|| MpiError::Protocol("dup: VCI bundle missing".into()))?;
        let comm = Comm {
            proc: self.proc.clone(),
            bundle,
            vci_idx,
            ctx,
            group: self.group.clone(),
            rank: self.rank,
            epoch: Arc::new(AtomicU64::new(0)),
            coll_seq: Arc::new(AtomicU64::new(0)),
            agree_seq: Arc::new(AtomicU64::new(0)),
            resil: self.resil.clone(),
        };
        comm.register_resilience();
        Ok(comm)
    }

    /// `MPIX_Stream_comm_create`: duplicate this communicator onto a user
    /// stream with a dedicated VCI. Collective; every rank passes its own
    /// local stream.
    pub fn with_stream(&self, stream: &Stream) -> MpiResult<Comm> {
        let epoch = self.epoch.fetch_add(1, Ordering::AcqRel);
        let key = epoch << 32;
        let world = self.proc.world().clone();
        let ctx = world.inner.registry.lock().child_ctx(self.ctx, key);
        let vci_idx = world.inner.registry.lock().vci_for_ctx(
            ctx,
            true,
            self.vci_idx,
            world.config().max_vcis,
        )?;
        let bundle = self.proc.attach_vci(vci_idx, stream)?;
        let comm = Comm {
            proc: self.proc.clone(),
            bundle,
            vci_idx,
            ctx,
            group: self.group.clone(),
            rank: self.rank,
            epoch: Arc::new(AtomicU64::new(0)),
            coll_seq: Arc::new(AtomicU64::new(0)),
            agree_seq: Arc::new(AtomicU64::new(0)),
            resil: self.resil.clone(),
        };
        comm.register_resilience();
        Ok(comm)
    }

    /// `MPI_Comm_split`: partition by `color`, order by `(key, old rank)`.
    /// Collective over the communicator. `color < 0` (≙ `MPI_UNDEFINED`)
    /// yields `None`.
    pub fn split(&self, color: i32, key: i32) -> MpiResult<Option<Comm>> {
        let epoch = self.epoch.fetch_add(1, Ordering::AcqRel);
        let world = self.proc.world().clone();
        // Exchange (color, key, world_rank) among the parent group.
        let contributions = world.exchange(
            (self.ctx, epoch, EX_SPLIT),
            self.size(),
            self.rank as usize,
            vec![
                color as i64,
                key as i64,
                self.group[self.rank as usize] as i64,
            ],
        );
        if color < 0 {
            return Ok(None);
        }
        // Members of my color, ordered by (key, parent rank).
        let mut members: Vec<(i64, usize, usize)> = contributions
            .iter()
            .enumerate()
            .filter(|(_, c)| c[0] == color as i64)
            .map(|(parent_rank, c)| (c[1], parent_rank, c[2] as usize))
            .collect();
        members.sort();
        let group: Vec<usize> = members.iter().map(|(_, _, wr)| *wr).collect();
        let my_world = self.group[self.rank as usize];
        let rank = group
            .iter()
            .position(|&wr| wr == my_world)
            .expect("self in split group") as i32;

        let ctx_key = (epoch << 32) | (color as u32 as u64);
        let ctx = world.inner.registry.lock().child_ctx(self.ctx, ctx_key);
        let vci_idx = world.inner.registry.lock().vci_for_ctx(
            ctx,
            false,
            self.vci_idx,
            world.config().max_vcis,
        )?;
        let bundle = self
            .proc
            .bundle(vci_idx)
            .ok_or_else(|| MpiError::Protocol("split: VCI bundle missing".into()))?;
        let comm = Comm {
            proc: self.proc.clone(),
            bundle,
            vci_idx,
            ctx,
            group: Arc::new(group),
            rank,
            epoch: Arc::new(AtomicU64::new(0)),
            coll_seq: Arc::new(AtomicU64::new(0)),
            agree_seq: Arc::new(AtomicU64::new(0)),
            resil: self.resil.clone(),
        };
        comm.register_resilience();
        Ok(Some(comm))
    }
}

impl std::fmt::Debug for Comm {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Comm")
            .field("ctx", &self.ctx)
            .field("rank", &self.rank)
            .field("size", &self.size())
            .field("vci", &self.vci_idx)
            .finish()
    }
}

#[cfg(test)]
mod tests {

    use crate::collectives::testutil::run_ranks;

    #[test]
    fn world_comm_identity_group() {
        let results = run_ranks(4, |proc| {
            let comm = proc.world_comm();
            assert_eq!(comm.group(), &[0, 1, 2, 3]);
            assert_eq!(comm.rank_of_world(2), Some(2));
            assert_eq!(comm.rank_of_world(9), None);
            assert_eq!(comm.world_rank(comm.rank()).unwrap(), proc.rank());
            (comm.rank(), comm.size())
        });
        for (r, (rank, size)) in results.iter().enumerate() {
            assert_eq!(*rank, r as i32);
            assert_eq!(*size, 4);
        }
    }

    #[test]
    fn split_group_translation() {
        let results = run_ranks(4, |proc| {
            let comm = proc.world_comm();
            // Odd ranks only, reverse-ordered by key.
            let color = if proc.rank() % 2 == 1 { 0 } else { -1 };
            let sub = comm.split(color, -(proc.rank() as i32)).unwrap();
            sub.map(|s| (s.rank(), s.group().to_vec()))
        });
        assert!(results[0].is_none());
        assert!(results[2].is_none());
        // key = -world_rank: rank 3 sorts first.
        let (r1, g1) = results[1].clone().unwrap();
        let (r3, g3) = results[3].clone().unwrap();
        assert_eq!(g1, vec![3, 1]);
        assert_eq!(g3, vec![3, 1]);
        assert_eq!(r1, 1);
        assert_eq!(r3, 0);
    }

    #[test]
    fn probe_blocks_until_message() {
        let results = run_ranks(2, |proc| {
            let comm = proc.world_comm();
            if comm.rank() == 0 {
                // Delay, then send.
                mpfa_core::spin::busy_wait(0.002);
                comm.send(&[1u8; 10], 1, 4).unwrap();
                0
            } else {
                let (src, tag, bytes) = comm.probe(0, 4).unwrap();
                assert_eq!((src, tag, bytes), (0, 4, 10));
                let (data, _) = comm.recv::<u8>(10, 0, 4).unwrap();
                data.len()
            }
        });
        assert_eq!(results[1], 10);
    }

    #[test]
    fn dup_preserves_group_and_rank() {
        let results = run_ranks(3, |proc| {
            let comm = proc.world_comm();
            let dup = comm.dup().unwrap();
            assert_eq!(dup.rank(), comm.rank());
            assert_eq!(dup.group(), comm.group());
            assert_ne!(dup.context_id(), comm.context_id());
            // Messages on dup do not match comm.
            true
        });
        assert!(results.iter().all(|&ok| ok));
    }
}

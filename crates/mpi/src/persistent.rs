//! Persistent point-to-point requests (`MPI_Send_init` / `MPI_Recv_init`
//! / `MPI_Start`), the classic amortize-the-setup API.
//!
//! The related-work discussion (paper §5.3) centers on persistent
//! *collectives* (MPIX_Schedule rounds are "for the repeated invocation of
//! the algorithm"); persistent point-to-point is the foundation both
//! build on. A persistent handle validates arguments once; each
//! [`PersistentSend::start`] / [`PersistentRecv::start`] re-issues the
//! operation.

use mpfa_core::{Request, Status};

use crate::comm::Comm;
use crate::datatype::{to_bytes, MpiType};
use crate::error::{MpiError, MpiResult};
use crate::recv::RecvRequest;

/// A persistent send: captured buffer + destination, re-startable.
pub struct PersistentSend<T: MpiType> {
    comm: Comm,
    data: Vec<T>,
    dst: i32,
    tag: i32,
    active: Option<Request>,
}

impl<T: MpiType> PersistentSend<T> {
    /// The send buffer; mutate it between rounds (erroneous while a round
    /// is active, like touching an MPI send buffer mid-flight — here it
    /// is merely stale data, since starts snapshot the buffer).
    pub fn buffer_mut(&mut self) -> &mut Vec<T> {
        &mut self.data
    }

    /// The send buffer (read access).
    pub fn buffer(&self) -> &[T] {
        &self.data
    }

    /// `MPI_Start`: issue one round. Errors if the previous round has not
    /// completed (MPI calls this erroneous).
    pub fn start(&mut self) -> MpiResult<Request> {
        if let Some(prev) = &self.active {
            if !prev.is_complete() {
                return Err(MpiError::Protocol(
                    "MPI_Start on a persistent send with an active round".into(),
                ));
            }
        }
        let req = self.comm.isend_on_ctx(
            self.comm.ptp_ctx(),
            to_bytes(&self.data),
            self.dst,
            self.tag,
        );
        self.active = Some(req.clone());
        Ok(req)
    }

    /// The in-flight round's request, if any.
    pub fn active(&self) -> Option<&Request> {
        self.active.as_ref()
    }
}

/// A persistent receive: capacity + match pattern, re-startable.
pub struct PersistentRecv<T: MpiType> {
    comm: Comm,
    count: usize,
    src: i32,
    tag: i32,
    active: Option<RecvRequest<T>>,
}

impl<T: MpiType> PersistentRecv<T> {
    /// `MPI_Start`: post one receive round. Errors if the previous round
    /// is still active.
    pub fn start(&mut self) -> MpiResult<()> {
        if let Some(prev) = &self.active {
            if !prev.is_complete() {
                return Err(MpiError::Protocol(
                    "MPI_Start on a persistent recv with an active round".into(),
                ));
            }
        }
        self.active = Some(self.comm.irecv::<T>(self.count, self.src, self.tag)?);
        Ok(())
    }

    /// True if the current round (if any) has completed.
    pub fn is_complete(&self) -> bool {
        self.active
            .as_ref()
            .map(RecvRequest::is_complete)
            .unwrap_or(false)
    }

    /// Wait for the current round and take its payload. Errors if no
    /// round was started.
    pub fn wait(&mut self) -> MpiResult<(Vec<T>, Status)> {
        match self.active.take() {
            Some(recv) => Ok(recv.wait()),
            None => Err(MpiError::Protocol(
                "wait on an unstarted persistent recv".into(),
            )),
        }
    }
}

impl Comm {
    /// `MPI_Send_init`: build a persistent send.
    pub fn send_init<T: MpiType>(
        &self,
        data: &[T],
        dst: i32,
        tag: i32,
    ) -> MpiResult<PersistentSend<T>> {
        // Validate once, at init time.
        self.world_rank(dst)?;
        if tag < 0 {
            return Err(MpiError::InvalidTag(tag));
        }
        Ok(PersistentSend {
            comm: self.clone(),
            data: data.to_vec(),
            dst,
            tag,
            active: None,
        })
    }

    /// `MPI_Recv_init`: build a persistent receive.
    pub fn recv_init<T: MpiType>(
        &self,
        count: usize,
        src: i32,
        tag: i32,
    ) -> MpiResult<PersistentRecv<T>> {
        if src != crate::matching::ANY_SOURCE {
            self.world_rank(src)?;
        }
        if tag < 0 && tag != crate::matching::ANY_TAG {
            return Err(MpiError::InvalidTag(tag));
        }
        Ok(PersistentRecv {
            comm: self.clone(),
            count,
            src,
            tag,
            active: None,
        })
    }
}

#[cfg(test)]
mod tests {

    use crate::collectives::testutil::run_ranks;

    #[test]
    fn persistent_pair_runs_many_rounds() {
        let results = run_ranks(2, |proc| {
            let comm = proc.world_comm();
            if comm.rank() == 0 {
                let mut ps = comm.send_init(&[0i32; 4], 1, 7).unwrap();
                for round in 0..20 {
                    ps.buffer_mut().iter_mut().for_each(|v| *v = round);
                    let req = ps.start().unwrap();
                    req.wait();
                }
                Vec::new()
            } else {
                let mut pr = comm.recv_init::<i32>(4, 0, 7).unwrap();
                let mut got = Vec::new();
                for _ in 0..20 {
                    pr.start().unwrap();
                    let (data, _) = pr.wait().unwrap();
                    got.push(data[0]);
                }
                got
            }
        });
        assert_eq!(results[1], (0..20).collect::<Vec<i32>>());
    }

    #[test]
    fn double_start_is_erroneous() {
        let results = run_ranks(2, |proc| {
            let comm = proc.world_comm();
            if comm.rank() == 0 {
                // Rendezvous-sized: the round cannot complete before the
                // peer posts, so the immediate second start must fail.
                let mut ps = comm.send_init(&vec![0u8; 100_000], 1, 1).unwrap();
                let first = ps.start().unwrap();
                let err = ps.start().is_err();
                // Complete the round before exiting (MPI semantics: never
                // abandon an active send).
                first.wait();
                // After completion, a restart is legal again.
                let second = ps.start().unwrap();
                second.wait();
                err
            } else {
                for _ in 0..2 {
                    let (data, _) = comm.recv::<u8>(100_000, 0, 1).unwrap();
                    assert_eq!(data.len(), 100_000);
                }
                true
            }
        });
        assert!(results.iter().all(|&ok| ok));
    }

    #[test]
    fn recv_wait_without_start_errors() {
        let results = run_ranks(1, |proc| {
            let comm = proc.world_comm();
            let mut pr = comm.recv_init::<i32>(1, 0, 0).unwrap();
            pr.wait().is_err()
        });
        assert!(results[0]);
    }

    #[test]
    fn init_validates_arguments_once() {
        let results = run_ranks(1, |proc| {
            let comm = proc.world_comm();
            assert!(comm.send_init(&[1i32], 5, 0).is_err());
            assert!(comm.send_init(&[1i32], 0, -3).is_err());
            assert!(comm.recv_init::<i32>(1, 9, 0).is_err());
            true
        });
        assert!(results[0]);
    }
}

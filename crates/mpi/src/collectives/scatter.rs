//! Linear scatter.
//!
//! The root sends block `i` of its buffer to rank `i` (its own block is a
//! local copy); every rank's future yields its block.

use mpfa_core::{AsyncPoll, Completer, Request, Status};

use crate::comm::Comm;
use crate::datatype::{from_bytes, to_bytes, MpiType};
use crate::error::{MpiError, MpiResult};
use crate::matching::RecvSlot;
use crate::sched::CollTask;

use super::future::{CollFuture, CollOutput};

enum ScatterState {
    RootWait { sends: Vec<Request>, own: Vec<u8> },
    LeafWait(Request, RecvSlot),
}

struct ScatterTask<T: MpiType> {
    state: ScatterState,
    out: CollOutput<T>,
    completer: Option<Completer>,
}

impl<T: MpiType> ScatterTask<T> {
    fn finish(&mut self, result: Vec<T>) -> AsyncPoll {
        self.out.deposit(result);
        if let Some(c) = self.completer.take() {
            c.complete(Status::empty());
        }
        AsyncPoll::Done
    }
}

impl<T: MpiType> CollTask for ScatterTask<T> {
    fn advance(&mut self) -> AsyncPoll {
        match &mut self.state {
            ScatterState::RootWait { sends, own } => {
                if !Request::all_complete(sends) {
                    return AsyncPoll::Pending;
                }
                let own = std::mem::take(own);
                self.finish(from_bytes(&own))
            }
            ScatterState::LeafWait(req, slot) => {
                if !req.is_complete() {
                    return AsyncPoll::Pending;
                }
                let bytes = slot.take();
                self.finish(from_bytes(&bytes))
            }
        }
    }
}

impl Comm {
    /// Nonblocking scatter (`MPI_Iscatter`): the root supplies
    /// `count * size` elements; every rank's future yields its
    /// `count`-element block.
    pub fn iscatter<T: MpiType>(
        &self,
        data: Option<&[T]>,
        count: usize,
        root: i32,
    ) -> MpiResult<CollFuture<T>> {
        if root < 0 || root as usize >= self.size() {
            return Err(MpiError::InvalidRank {
                rank: root,
                size: self.size(),
            });
        }
        let seq = self.next_coll_seq();
        let tag = Comm::coll_tag(seq, 0);
        let (req, completer) = Request::pair(self.stream());
        let (fut, out) = CollFuture::<T>::pair(req);

        let state = if self.rank() == root {
            let data = data.ok_or(MpiError::CountMismatch {
                got: 0,
                expected: count * self.size(),
            })?;
            if data.len() != count * self.size() {
                return Err(MpiError::CountMismatch {
                    got: data.len(),
                    expected: count * self.size(),
                });
            }
            let mut own = Vec::new();
            let mut sends = Vec::new();
            for dst in 0..self.size() as i32 {
                let block = &data[dst as usize * count..(dst as usize + 1) * count];
                if dst == root {
                    own = to_bytes(block);
                } else {
                    sends.push(self.isend_on_ctx(self.coll_ctx(), to_bytes(block), dst, tag));
                }
            }
            ScatterState::RootWait { sends, own }
        } else {
            let (rreq, slot) = self.irecv_on_ctx(self.coll_ctx(), count * T::SIZE, root, tag);
            ScatterState::LeafWait(rreq, slot)
        };

        let task = ScatterTask {
            state,
            out,
            completer: Some(completer),
        };
        self.bundle().sched.submit(Box::new(task));
        Ok(fut)
    }

    /// Blocking scatter (`MPI_Scatter`).
    pub fn scatter<T: MpiType>(
        &self,
        data: Option<&[T]>,
        count: usize,
        root: i32,
    ) -> MpiResult<Vec<T>> {
        Ok(self.iscatter(data, count, root)?.wait().0)
    }
}

#[cfg(test)]
mod tests {
    use super::super::testutil::run_ranks;

    #[test]
    fn scatter_from_root0() {
        for n in [1, 2, 4, 6] {
            let results = run_ranks(n, |proc| {
                let comm = proc.world_comm();
                let data: Option<Vec<i32>> = if proc.rank() == 0 {
                    Some((0..(2 * n) as i32).collect())
                } else {
                    None
                };
                comm.scatter(data.as_deref(), 2, 0).unwrap()
            });
            for (r, out) in results.iter().enumerate() {
                assert_eq!(
                    out,
                    &vec![2 * r as i32, 2 * r as i32 + 1],
                    "rank {r} of {n}"
                );
            }
        }
    }

    #[test]
    fn scatter_from_middle_root() {
        let results = run_ranks(3, |proc| {
            let comm = proc.world_comm();
            let data = if proc.rank() == 1 {
                Some(vec![10.0f64, 20.0, 30.0])
            } else {
                None
            };
            comm.scatter(data.as_deref(), 1, 1).unwrap()
        });
        assert_eq!(results[0], vec![10.0]);
        assert_eq!(results[1], vec![20.0]);
        assert_eq!(results[2], vec![30.0]);
    }

    #[test]
    fn scatter_count_mismatch() {
        let results = run_ranks(1, |proc| {
            let comm = proc.world_comm();
            comm.iscatter(Some(&[1i32, 2, 3]), 2, 0).is_err()
        });
        assert!(results[0]);
    }
}

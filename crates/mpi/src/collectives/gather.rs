//! Linear gather.
//!
//! Non-roots send their block to the root; the root receives P−1 blocks
//! (its own is a local copy) and delivers the rank-ordered concatenation.

use mpfa_core::{AsyncPoll, Completer, Request, Status};

use crate::comm::Comm;
use crate::datatype::{from_bytes, to_bytes, MpiType};
use crate::error::{MpiError, MpiResult};
use crate::matching::RecvSlot;
use crate::sched::CollTask;

use super::future::{CollFuture, CollOutput};

enum GatherState {
    /// Root: waiting on all receives (index = source rank; None at root's
    /// own slot).
    RootWait(Vec<Option<(Request, RecvSlot)>>),
    /// Non-root: waiting on the send.
    LeafWait(Request),
}

struct GatherTask<T: MpiType> {
    root: i32,
    own: Vec<T>,
    state: GatherState,
    out: CollOutput<T>,
    completer: Option<Completer>,
}

impl<T: MpiType> GatherTask<T> {
    fn finish(&mut self, result: Vec<T>) -> AsyncPoll {
        self.out.deposit(result);
        if let Some(c) = self.completer.take() {
            c.complete(Status::empty());
        }
        AsyncPoll::Done
    }
}

impl<T: MpiType> CollTask for GatherTask<T> {
    fn advance(&mut self) -> AsyncPoll {
        match &mut self.state {
            GatherState::RootWait(recvs) => {
                let all_done = recvs
                    .iter()
                    .all(|r| r.as_ref().map(|(req, _)| req.is_complete()).unwrap_or(true));
                if !all_done {
                    return AsyncPoll::Pending;
                }
                let root = self.root as usize;
                let mut result = Vec::with_capacity(self.own.len() * recvs.len());
                let recvs = std::mem::take(recvs);
                for (src, entry) in recvs.into_iter().enumerate() {
                    match entry {
                        Some((_, slot)) => result.extend(from_bytes::<T>(&slot.take())),
                        None => {
                            debug_assert_eq!(src, root);
                            result.extend(std::mem::take(&mut self.own));
                        }
                    }
                }
                self.finish(result)
            }
            GatherState::LeafWait(req) => {
                if !req.is_complete() {
                    return AsyncPoll::Pending;
                }
                self.finish(Vec::new())
            }
        }
    }
}

impl Comm {
    /// Nonblocking gather (`MPI_Igather`) of equal-length blocks to
    /// `root`. The root's future yields the rank-ordered concatenation.
    pub fn igather<T: MpiType>(&self, data: &[T], root: i32) -> MpiResult<CollFuture<T>> {
        if root < 0 || root as usize >= self.size() {
            return Err(MpiError::InvalidRank {
                rank: root,
                size: self.size(),
            });
        }
        let seq = self.next_coll_seq();
        let tag = Comm::coll_tag(seq, 0);
        let (req, completer) = Request::pair(self.stream());
        let (fut, out) = CollFuture::<T>::pair(req);

        let state = if self.rank() == root {
            let recvs = (0..self.size() as i32)
                .map(|src| {
                    if src == root {
                        None
                    } else {
                        Some(self.irecv_on_ctx(self.coll_ctx(), data.len() * T::SIZE, src, tag))
                    }
                })
                .collect();
            GatherState::RootWait(recvs)
        } else {
            let sreq = self.isend_on_ctx(self.coll_ctx(), to_bytes(data), root, tag);
            GatherState::LeafWait(sreq)
        };

        let task = GatherTask {
            root,
            own: data.to_vec(),
            state,
            out,
            completer: Some(completer),
        };
        self.bundle().sched.submit(Box::new(task));
        Ok(fut)
    }

    /// Blocking gather (`MPI_Gather`). Returns `Some(concatenation)` at
    /// the root, `None` elsewhere.
    pub fn gather<T: MpiType>(&self, data: &[T], root: i32) -> MpiResult<Option<Vec<T>>> {
        let (result, _) = self.igather(data, root)?.wait();
        Ok(if self.rank() == root {
            Some(result)
        } else {
            None
        })
    }
}

#[cfg(test)]
mod tests {
    use super::super::testutil::run_ranks;

    #[test]
    fn gather_to_root0() {
        for n in [1, 2, 5, 8] {
            let results = run_ranks(n, |proc| {
                let comm = proc.world_comm();
                comm.gather(&[proc.rank() as i32, -(proc.rank() as i32)], 0)
                    .unwrap()
            });
            let mut expect = Vec::new();
            for r in 0..n as i32 {
                expect.extend([r, -r]);
            }
            assert_eq!(results[0], Some(expect), "n={n}");
            for r in results.iter().skip(1) {
                assert!(r.is_none());
            }
        }
    }

    #[test]
    fn gather_to_last_rank() {
        let results = run_ranks(4, |proc| {
            let comm = proc.world_comm();
            comm.gather(&[proc.rank() as u8], 3).unwrap()
        });
        assert_eq!(results[3], Some(vec![0u8, 1, 2, 3]));
    }

    #[test]
    fn gather_bad_root() {
        let results = run_ranks(2, |proc| {
            let comm = proc.world_comm();
            comm.igather(&[1i32], 7).is_err()
        });
        assert!(results.iter().all(|&e| e));
    }
}

//! Binomial-tree broadcast.
//!
//! Each non-root rank receives the payload from its tree parent, then
//! forwards it down its subtree. Rank `r`'s peers are computed in
//! root-relative space exactly as in MPICH's binomial bcast.

use mpfa_core::{AsyncPoll, Completer, Request, Status};

use crate::comm::Comm;
use crate::datatype::{from_bytes, to_bytes, MpiType};
use crate::error::{MpiError, MpiResult};
use crate::matching::RecvSlot;
use crate::sched::CollTask;

use super::future::{CollFuture, CollOutput};

/// Tree peers in root-relative rank space: who we receive from (None for
/// the root) and who we forward to (descending subtree spans).
pub(crate) fn binomial_peers(relative: usize, size: usize) -> (Option<usize>, Vec<usize>) {
    let mut mask = 1usize;
    let mut recv_from = None;
    while mask < size {
        if relative & mask != 0 {
            recv_from = Some(relative - mask);
            break;
        }
        mask <<= 1;
    }
    let mut dsts = Vec::new();
    let mut m = mask >> 1;
    while m > 0 {
        if relative + m < size {
            dsts.push(relative + m);
        }
        m >>= 1;
    }
    (recv_from, dsts)
}

enum BcastState {
    Init,
    Receiving(Request, RecvSlot),
    Sending(Vec<Request>),
}

struct BcastTask<T: MpiType> {
    comm: Comm,
    seq: u64,
    root: i32,
    capacity: usize,
    data: Vec<u8>,
    state: BcastState,
    out: CollOutput<T>,
    completer: Option<Completer>,
}

impl<T: MpiType> BcastTask<T> {
    fn absolute(&self, relative: usize) -> i32 {
        (relative as i32 + self.root) % self.comm.size() as i32
    }

    fn issue_sends(&mut self) -> Vec<Request> {
        let size = self.comm.size();
        let relative = (self.comm.rank() - self.root).rem_euclid(size as i32) as usize;
        let (_, dsts) = binomial_peers(relative, size);
        let tag = Comm::coll_tag(self.seq, 0);
        dsts.into_iter()
            .map(|rel| {
                let dst = self.absolute(rel);
                self.comm
                    .isend_on_ctx(self.comm.coll_ctx(), self.data.clone(), dst, tag)
            })
            .collect()
    }

    fn finish(&mut self) -> AsyncPoll {
        self.out
            .deposit(from_bytes(&std::mem::take(&mut self.data)));
        if let Some(c) = self.completer.take() {
            c.complete(Status::empty());
        }
        AsyncPoll::Done
    }
}

impl<T: MpiType> CollTask for BcastTask<T> {
    fn advance(&mut self) -> AsyncPoll {
        match &mut self.state {
            BcastState::Init => {
                let size = self.comm.size();
                let relative = (self.comm.rank() - self.root).rem_euclid(size as i32) as usize;
                let (recv_from, _) = binomial_peers(relative, size);
                match recv_from {
                    None => {
                        // Root: forward immediately.
                        let sends = self.issue_sends();
                        if sends.is_empty() {
                            return self.finish();
                        }
                        self.state = BcastState::Sending(sends);
                    }
                    Some(src_rel) => {
                        let src = self.absolute(src_rel);
                        let tag = Comm::coll_tag(self.seq, 0);
                        let (req, slot) =
                            self.comm
                                .irecv_on_ctx(self.comm.coll_ctx(), self.capacity, src, tag);
                        self.state = BcastState::Receiving(req, slot);
                    }
                }
                AsyncPoll::Progress
            }
            BcastState::Receiving(req, slot) => {
                if !req.is_complete() {
                    return AsyncPoll::Pending;
                }
                self.data = slot.take();
                let sends = self.issue_sends();
                if sends.is_empty() {
                    return self.finish();
                }
                self.state = BcastState::Sending(sends);
                AsyncPoll::Progress
            }
            BcastState::Sending(reqs) => {
                if !Request::all_complete(reqs) {
                    return AsyncPoll::Pending;
                }
                self.finish()
            }
        }
    }
}

impl Comm {
    /// Nonblocking broadcast (`MPI_Ibcast`) of `count` elements from
    /// `root`. The root passes `Some(data)`; other ranks pass `None`.
    /// The future's payload is the broadcast data on every rank.
    pub fn ibcast<T: MpiType>(
        &self,
        data: Option<&[T]>,
        count: usize,
        root: i32,
    ) -> MpiResult<CollFuture<T>> {
        if root < 0 || root as usize >= self.size() {
            return Err(MpiError::InvalidRank {
                rank: root,
                size: self.size(),
            });
        }
        let is_root = self.rank() == root;
        let bytes = match (is_root, data) {
            (true, Some(d)) => {
                if d.len() != count {
                    return Err(MpiError::CountMismatch {
                        got: d.len(),
                        expected: count,
                    });
                }
                to_bytes(d)
            }
            (true, None) => {
                return Err(MpiError::CountMismatch {
                    got: 0,
                    expected: count,
                });
            }
            (false, _) => Vec::new(),
        };

        let seq = self.next_coll_seq();
        let (req, completer) = Request::pair(self.stream());
        let (fut, out) = CollFuture::<T>::pair(req);
        let task = BcastTask {
            comm: self.clone(),
            seq,
            root,
            capacity: count * T::SIZE,
            data: bytes,
            state: BcastState::Init,
            out,
            completer: Some(completer),
        };
        self.bundle().sched.submit(Box::new(task));
        Ok(fut)
    }

    /// Blocking broadcast (`MPI_Bcast`): `buf` is input at the root and
    /// output everywhere.
    pub fn bcast<T: MpiType>(&self, buf: &mut Vec<T>, count: usize, root: i32) -> MpiResult<()> {
        let fut = if self.rank() == root {
            self.ibcast::<T>(Some(buf), count, root)?
        } else {
            self.ibcast::<T>(None, count, root)?
        };
        let (data, _) = fut.wait();
        *buf = data;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::super::testutil::run_ranks;
    use super::*;

    #[test]
    fn binomial_peers_shape() {
        // size 8, root-relative:
        // 0 receives from nobody, sends to 4,2,1
        assert_eq!(binomial_peers(0, 8), (None, vec![4, 2, 1]));
        // 1 receives from 0, sends to nobody
        assert_eq!(binomial_peers(1, 8), (Some(0), vec![]));
        // 2 receives from 0, sends to 3
        assert_eq!(binomial_peers(2, 8), (Some(0), vec![3]));
        // 4 receives from 0, sends to 6, 5
        assert_eq!(binomial_peers(4, 8), (Some(0), vec![6, 5]));
        // 6 receives from 4, sends to 7
        assert_eq!(binomial_peers(6, 8), (Some(4), vec![7]));
    }

    #[test]
    fn binomial_peers_non_pof2() {
        // size 5: 0 sends to 4, 2, 1; 4 receives from 0.
        assert_eq!(binomial_peers(0, 5), (None, vec![4, 2, 1]));
        assert_eq!(binomial_peers(4, 5), (Some(0), vec![]));
        assert_eq!(binomial_peers(3, 5), (Some(2), vec![]));
    }

    #[test]
    fn every_rank_reached_exactly_once() {
        for size in 1..=16 {
            let mut received = vec![0; size];
            for (r, slot) in received.iter_mut().enumerate() {
                let (src, _) = binomial_peers(r, size);
                if src.is_some() {
                    *slot += 1;
                }
            }
            let mut sent_to = vec![0; size];
            for r in 0..size {
                let (_, dsts) = binomial_peers(r, size);
                for d in dsts {
                    sent_to[d] += 1;
                }
            }
            for r in 1..size {
                assert_eq!(received[r], 1, "rank {r} of {size}");
                assert_eq!(sent_to[r], 1, "rank {r} of {size}");
            }
            assert_eq!(sent_to[0], 0);
        }
    }

    #[test]
    fn bcast_from_rank0() {
        for n in [1, 2, 4, 5, 8] {
            let results = run_ranks(n, |proc| {
                let comm = proc.world_comm();
                let mut buf: Vec<i32> = if proc.rank() == 0 {
                    vec![11, 22, 33]
                } else {
                    Vec::new()
                };
                comm.bcast(&mut buf, 3, 0).unwrap();
                buf
            });
            for (r, buf) in results.iter().enumerate() {
                assert_eq!(buf, &vec![11, 22, 33], "rank {r} of {n}");
            }
        }
    }

    #[test]
    fn bcast_from_nonzero_root() {
        let results = run_ranks(6, |proc| {
            let comm = proc.world_comm();
            let mut buf: Vec<f64> = if proc.rank() == 3 {
                vec![2.5; 4]
            } else {
                Vec::new()
            };
            comm.bcast(&mut buf, 4, 3).unwrap();
            buf
        });
        for buf in results {
            assert_eq!(buf, vec![2.5; 4]);
        }
    }

    #[test]
    fn bcast_root_count_mismatch_errors() {
        let results = run_ranks(1, |proc| {
            let comm = proc.world_comm();
            comm.ibcast::<i32>(Some(&[1, 2]), 3, 0).is_err()
        });
        assert!(results[0]);
    }

    #[test]
    fn repeated_bcasts_in_order() {
        let results = run_ranks(4, |proc| {
            let comm = proc.world_comm();
            let mut got = Vec::new();
            for round in 0..10i32 {
                let mut buf = if proc.rank() == 0 {
                    vec![round]
                } else {
                    Vec::new()
                };
                comm.bcast(&mut buf, 1, 0).unwrap();
                got.push(buf[0]);
            }
            got
        });
        for buf in results {
            assert_eq!(buf, (0..10).collect::<Vec<i32>>());
        }
    }
}

//! Linear (pairwise) all-to-all.
//!
//! Every rank posts one receive and one send per peer, plus a local copy
//! for its own block, and completes when all are done.

use mpfa_core::{AsyncPoll, Completer, Request, Status};

use crate::comm::Comm;
use crate::datatype::{from_bytes, to_bytes, MpiType};
use crate::error::{MpiError, MpiResult};
use crate::matching::RecvSlot;
use crate::sched::CollTask;

use super::future::{CollFuture, CollOutput};

struct AlltoallTask<T: MpiType> {
    count: usize,
    size: usize,
    rank: usize,
    own_block: Vec<T>,
    sends: Vec<Request>,
    recvs: Vec<Option<(Request, RecvSlot)>>,
    out: CollOutput<T>,
    completer: Option<Completer>,
}

impl<T: MpiType> CollTask for AlltoallTask<T> {
    fn advance(&mut self) -> AsyncPoll {
        let recvs_done = self
            .recvs
            .iter()
            .all(|r| r.as_ref().map(|(req, _)| req.is_complete()).unwrap_or(true));
        if !(recvs_done && Request::all_complete(&self.sends)) {
            return AsyncPoll::Pending;
        }
        let mut result = Vec::with_capacity(self.count * self.size);
        let recvs = std::mem::take(&mut self.recvs);
        for (src, entry) in recvs.into_iter().enumerate() {
            match entry {
                Some((_, slot)) => result.extend(from_bytes::<T>(&slot.take())),
                None => {
                    debug_assert_eq!(src, self.rank);
                    result.extend(std::mem::take(&mut self.own_block));
                }
            }
        }
        self.out.deposit(result);
        if let Some(c) = self.completer.take() {
            c.complete(Status::empty());
        }
        AsyncPoll::Done
    }
}

impl Comm {
    /// Nonblocking all-to-all (`MPI_Ialltoall`): `data` holds `count`
    /// elements per destination rank; the future yields `count` elements
    /// per source rank.
    pub fn ialltoall<T: MpiType>(&self, data: &[T], count: usize) -> MpiResult<CollFuture<T>> {
        let size = self.size();
        if data.len() != count * size {
            return Err(MpiError::CountMismatch {
                got: data.len(),
                expected: count * size,
            });
        }
        let rank = self.rank() as usize;
        let seq = self.next_coll_seq();
        let tag = Comm::coll_tag(seq, 0);
        let (req, completer) = Request::pair(self.stream());
        let (fut, out) = CollFuture::<T>::pair(req);

        // Post all receives before the sends (good practice: expected-path
        // matching for the eager payloads).
        let recvs: Vec<Option<(Request, RecvSlot)>> = (0..size as i32)
            .map(|src| {
                if src as usize == rank {
                    None
                } else {
                    Some(self.irecv_on_ctx(self.coll_ctx(), count * T::SIZE, src, tag))
                }
            })
            .collect();
        let mut sends = Vec::with_capacity(size.saturating_sub(1));
        let mut own_block = Vec::new();
        for dst in 0..size as i32 {
            let block = &data[dst as usize * count..(dst as usize + 1) * count];
            if dst as usize == rank {
                own_block = block.to_vec();
            } else {
                sends.push(self.isend_on_ctx(self.coll_ctx(), to_bytes(block), dst, tag));
            }
        }

        let task = AlltoallTask {
            count,
            size,
            rank,
            own_block,
            sends,
            recvs,
            out,
            completer: Some(completer),
        };
        self.bundle().sched.submit(Box::new(task));
        Ok(fut)
    }

    /// Blocking all-to-all (`MPI_Alltoall`).
    pub fn alltoall<T: MpiType>(&self, data: &[T], count: usize) -> MpiResult<Vec<T>> {
        Ok(self.ialltoall(data, count)?.wait().0)
    }
}

#[cfg(test)]
mod tests {
    use super::super::testutil::run_ranks;

    #[test]
    fn alltoall_transpose() {
        for n in [1, 2, 3, 4, 8] {
            let results = run_ranks(n, |proc| {
                let comm = proc.world_comm();
                // data[dst] = rank * 100 + dst
                let data: Vec<i32> = (0..n as i32)
                    .map(|dst| proc.rank() as i32 * 100 + dst)
                    .collect();
                comm.alltoall(&data, 1).unwrap()
            });
            for (r, out) in results.iter().enumerate() {
                // out[src] = src * 100 + r
                let expect: Vec<i32> = (0..n as i32).map(|src| src * 100 + r as i32).collect();
                assert_eq!(out, &expect, "rank {r} of {n}");
            }
        }
    }

    #[test]
    fn alltoall_multi_element() {
        let results = run_ranks(3, |proc| {
            let comm = proc.world_comm();
            let r = proc.rank() as u64;
            let data: Vec<u64> = (0..6).map(|i| r * 10 + i).collect();
            comm.alltoall(&data, 2).unwrap()
        });
        assert_eq!(results[0], vec![0, 1, 10, 11, 20, 21]);
        assert_eq!(results[1], vec![2, 3, 12, 13, 22, 23]);
        assert_eq!(results[2], vec![4, 5, 14, 15, 24, 25]);
    }

    #[test]
    fn alltoall_count_mismatch() {
        let results = run_ranks(2, |proc| {
            let comm = proc.world_comm();
            comm.ialltoall(&[1i32; 3], 2).is_err()
        });
        assert!(results.iter().all(|&e| e));
    }
}

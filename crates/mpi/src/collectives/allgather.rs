//! Ring allgather.
//!
//! P−1 rounds: in round r, send the block received in round r−1 (initially
//! your own) to the right neighbor and receive the next block from the
//! left neighbor. Bandwidth-optimal for large payloads.

use mpfa_core::{AsyncPoll, Completer, Request, Status};

use crate::comm::Comm;
use crate::datatype::{from_bytes, to_bytes, MpiType};
use crate::error::MpiResult;
use crate::matching::RecvSlot;
use crate::sched::CollTask;

use super::future::{CollFuture, CollOutput};

enum AgState {
    Round(u32),
    Wait {
        round: u32,
        recv_block: usize,
        send: Request,
        recv: Request,
        slot: RecvSlot,
    },
}

struct AllgatherTask<T: MpiType> {
    comm: Comm,
    seq: u64,
    count: usize,
    /// Accumulated blocks, indexed by source rank.
    blocks: Vec<Option<Vec<T>>>,
    state: AgState,
    out: CollOutput<T>,
    completer: Option<Completer>,
}

impl<T: MpiType> AllgatherTask<T> {
    fn finish(&mut self) -> AsyncPoll {
        let mut all = Vec::with_capacity(self.count * self.comm.size());
        for block in &mut self.blocks {
            all.extend(block.take().expect("all blocks present at finish"));
        }
        self.out.deposit(all);
        if let Some(c) = self.completer.take() {
            c.complete(Status::empty());
        }
        AsyncPoll::Done
    }
}

impl<T: MpiType> CollTask for AllgatherTask<T> {
    fn advance(&mut self) -> AsyncPoll {
        let size = self.comm.size() as i32;
        let rank = self.comm.rank();
        match &mut self.state {
            AgState::Round(round) => {
                let r = *round;
                if r as usize >= self.comm.size() - 1 {
                    return self.finish();
                }
                let right = (rank + 1).rem_euclid(size);
                let left = (rank - 1).rem_euclid(size);
                let send_block = (rank - r as i32).rem_euclid(size) as usize;
                let recv_block = (rank - r as i32 - 1).rem_euclid(size) as usize;
                let tag = Comm::coll_tag(self.seq, r);
                let payload = to_bytes(
                    self.blocks[send_block]
                        .as_ref()
                        .expect("send block present"),
                );
                let send = self
                    .comm
                    .isend_on_ctx(self.comm.coll_ctx(), payload, right, tag);
                let (recv, slot) =
                    self.comm
                        .irecv_on_ctx(self.comm.coll_ctx(), self.count * T::SIZE, left, tag);
                self.state = AgState::Wait {
                    round: r,
                    recv_block,
                    send,
                    recv,
                    slot,
                };
                AsyncPoll::Progress
            }
            AgState::Wait {
                round,
                recv_block,
                send,
                recv,
                slot,
            } => {
                if !(send.is_complete() && recv.is_complete()) {
                    return AsyncPoll::Pending;
                }
                let block: Vec<T> = from_bytes(&slot.take());
                let rb = *recv_block;
                let r = *round;
                self.blocks[rb] = Some(block);
                self.state = AgState::Round(r + 1);
                AsyncPoll::Progress
            }
        }
    }
}

impl Comm {
    /// Nonblocking allgather (`MPI_Iallgather`): every rank contributes
    /// `data` (same length everywhere); the future yields the
    /// concatenation in rank order.
    pub fn iallgather<T: MpiType>(&self, data: &[T]) -> MpiResult<CollFuture<T>> {
        let count = data.len();
        let size = self.size();
        let mut blocks: Vec<Option<Vec<T>>> = vec![None; size];
        blocks[self.rank() as usize] = Some(data.to_vec());

        let seq = self.next_coll_seq();
        let (req, completer) = Request::pair(self.stream());
        let (fut, out) = CollFuture::<T>::pair(req);
        let task = AllgatherTask {
            comm: self.clone(),
            seq,
            count,
            blocks,
            state: AgState::Round(0),
            out,
            completer: Some(completer),
        };
        self.bundle().sched.submit(Box::new(task));
        Ok(fut)
    }

    /// Blocking allgather (`MPI_Allgather`).
    pub fn allgather<T: MpiType>(&self, data: &[T]) -> MpiResult<Vec<T>> {
        Ok(self.iallgather(data)?.wait().0)
    }
}

#[cfg(test)]
mod tests {
    use super::super::testutil::run_ranks;

    #[test]
    fn allgather_rank_ids() {
        for n in [1, 2, 3, 4, 7, 8] {
            let results = run_ranks(n, |proc| {
                let comm = proc.world_comm();
                comm.allgather(&[proc.rank() as i32]).unwrap()
            });
            let expect: Vec<i32> = (0..n as i32).collect();
            for (r, out) in results.iter().enumerate() {
                assert_eq!(out, &expect, "rank {r} of {n}");
            }
        }
    }

    #[test]
    fn allgather_multi_element_blocks() {
        let results = run_ranks(4, |proc| {
            let comm = proc.world_comm();
            let r = proc.rank() as i64;
            comm.allgather(&[r * 10, r * 10 + 1]).unwrap()
        });
        let expect = vec![0, 1, 10, 11, 20, 21, 30, 31];
        for out in results {
            assert_eq!(out, expect);
        }
    }

    #[test]
    fn allgather_empty_blocks() {
        let results = run_ranks(3, |proc| {
            let comm = proc.world_comm();
            comm.allgather::<i32>(&[]).unwrap()
        });
        for out in results {
            assert!(out.is_empty());
        }
    }
}

//! Scatter-allgather broadcast (van de Geijn algorithm): the root
//! scatters equal blocks, then a ring allgather assembles the full
//! payload everywhere.
//!
//! Binomial bcast sends the FULL payload log₂P times from the root's
//! subtree edges; scatter-allgather moves ~2·(P−1)/P of it per rank —
//! bandwidth-optimal for large messages, at the cost of more rounds.
//! [`Comm::ibcast_auto`] selects by size, like MPICH's tuned bcast.
//!
//! Composition note: the two phases are existing schedules (iscatter,
//! iallgather) chained by an `MPIX_Async` task — the collective is
//! *composed from the extension APIs*, demonstrating the §2.7 claim that
//! collectives can be layered over a progressing core.

use mpfa_core::{AsyncPoll, Request, Status};

use crate::comm::Comm;
use crate::datatype::MpiType;
use crate::error::{MpiError, MpiResult};

use super::future::CollFuture;

impl Comm {
    /// Payload size (bytes) above which [`Comm::ibcast_auto`] switches
    /// from the binomial tree to scatter-allgather.
    pub const BCAST_SAG_THRESHOLD: usize = 64 * 1024;

    /// Nonblocking scatter-allgather broadcast (`MPI_Ibcast`,
    /// large-message algorithm). Pads to equal blocks internally.
    pub fn ibcast_sag<T: MpiType + Default>(
        &self,
        data: Option<&[T]>,
        count: usize,
        root: i32,
    ) -> MpiResult<CollFuture<T>> {
        if root < 0 || root as usize >= self.size() {
            return Err(MpiError::InvalidRank {
                rank: root,
                size: self.size(),
            });
        }
        let size = self.size();
        let block = count.div_ceil(size).max(1);
        let padded = block * size;

        // Phase 1: equal-block scatter of the padded payload.
        let scatter_fut = if self.rank() == root {
            let data = data.ok_or(MpiError::CountMismatch {
                got: 0,
                expected: count,
            })?;
            if data.len() != count {
                return Err(MpiError::CountMismatch {
                    got: data.len(),
                    expected: count,
                });
            }
            let mut buf = data.to_vec();
            buf.resize(padded, T::default());
            self.iscatter(Some(&buf), block, root)?
        } else {
            self.iscatter::<T>(None, block, root)?
        };

        // Phase 2 chained by an async task: allgather the blocks, then
        // truncate the padding.
        let (req, completer) = Request::pair(self.stream());
        let (fut, out) = CollFuture::<T>::pair(req);
        let comm = self.clone();
        let mut scatter_fut = Some(scatter_fut);
        let mut gather_fut: Option<CollFuture<T>> = None;
        let mut completer = Some(completer);
        self.stream().async_start(move |_t| {
            if gather_fut.is_none() {
                if !scatter_fut.as_ref().expect("phase 1 live").is_complete() {
                    return AsyncPoll::Pending;
                }
                let my_block = scatter_fut.take().expect("present").take();
                gather_fut = Some(
                    comm.iallgather(&my_block)
                        .expect("allgather cannot fail on valid comm"),
                );
                return AsyncPoll::Progress;
            }
            if !gather_fut.as_ref().expect("phase 2 live").is_complete() {
                return AsyncPoll::Pending;
            }
            let mut full = gather_fut.take().expect("present").take();
            full.truncate(count);
            out.deposit(full);
            completer.take().expect("once").complete(Status::empty());
            AsyncPoll::Done
        });
        Ok(fut)
    }

    /// Nonblocking broadcast with size-based algorithm selection:
    /// binomial tree below [`Comm::BCAST_SAG_THRESHOLD`] bytes,
    /// scatter-allgather above.
    pub fn ibcast_auto<T: MpiType + Default>(
        &self,
        data: Option<&[T]>,
        count: usize,
        root: i32,
    ) -> MpiResult<CollFuture<T>> {
        if count * T::SIZE >= Self::BCAST_SAG_THRESHOLD && self.size() > 2 {
            self.ibcast_sag(data, count, root)
        } else {
            self.ibcast(data, count, root)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::super::testutil::run_ranks;

    #[test]
    fn sag_bcast_delivers_exact_payload() {
        for n in [2, 3, 4, 5, 8] {
            let results = run_ranks(n, |proc| {
                let comm = proc.world_comm();
                // Deliberately non-divisible count to exercise padding.
                let count = 10 * n + 3;
                let fut = if proc.rank() == 1 {
                    let data: Vec<i32> = (0..count as i32).collect();
                    comm.ibcast_sag(Some(&data), count, 1).unwrap()
                } else {
                    comm.ibcast_sag::<i32>(None, count, 1).unwrap()
                };
                fut.wait().0
            });
            let count = 10 * n + 3;
            let expect: Vec<i32> = (0..count as i32).collect();
            for out in results {
                assert_eq!(out, expect, "n={n}");
            }
        }
    }

    #[test]
    fn sag_bcast_single_element() {
        let results = run_ranks(4, |proc| {
            let comm = proc.world_comm();
            let fut = if proc.rank() == 0 {
                comm.ibcast_sag(Some(&[42i64]), 1, 0).unwrap()
            } else {
                comm.ibcast_sag::<i64>(None, 1, 0).unwrap()
            };
            fut.wait().0
        });
        for out in results {
            assert_eq!(out, vec![42]);
        }
    }

    #[test]
    fn auto_bcast_agrees_with_both_paths() {
        let results = run_ranks(4, |proc| {
            let comm = proc.world_comm();
            // Small: binomial path.
            let small = if proc.rank() == 0 {
                comm.ibcast_auto(Some(&[7u8, 8]), 2, 0).unwrap()
            } else {
                comm.ibcast_auto::<u8>(None, 2, 0).unwrap()
            };
            // Large: SAG path (> 64 KiB).
            let big: Vec<i64> = (0..10_000).collect();
            let large = if proc.rank() == 0 {
                comm.ibcast_auto(Some(&big), 10_000, 0).unwrap()
            } else {
                comm.ibcast_auto::<i64>(None, 10_000, 0).unwrap()
            };
            (small.wait().0, large.wait().0)
        });
        for (small, large) in results {
            assert_eq!(small, vec![7, 8]);
            assert_eq!(large.len(), 10_000);
            assert_eq!(large[9_999], 9_999);
        }
    }
}

//! Reduce-scatter with equal blocks (`MPI_Reduce_scatter_block`):
//! element-wise reduction of a `count * P` buffer, rank `i` receiving
//! block `i` of the result.
//!
//! Algorithm: pairwise exchange (each rank sends block `j` to rank `j`,
//! receives P−1 contributions for its own block, reduces locally) — the
//! alltoall-shaped variant, simple and contention-free on the simulated
//! fabric.

use mpfa_core::{AsyncPoll, Completer, Request, Status};

use crate::comm::Comm;
use crate::datatype::{from_bytes, to_bytes};
use crate::error::{MpiError, MpiResult};
use crate::matching::RecvSlot;
use crate::op::{Op, Reducible};
use crate::sched::CollTask;

use super::future::{CollFuture, CollOutput};

struct ReduceScatterTask<T: Reducible> {
    op: Op,
    /// Own contribution to our block.
    acc: Vec<T>,
    sends: Vec<Request>,
    recvs: Vec<Option<(Request, RecvSlot)>>,
    /// Which contributions have been folded already.
    folded: Vec<bool>,
    out: CollOutput<T>,
    completer: Option<Completer>,
}

impl<T: Reducible> CollTask for ReduceScatterTask<T> {
    fn advance(&mut self) -> AsyncPoll {
        let mut any = false;
        // Fold contributions as they arrive (no barrier on the full set).
        for src in 0..self.recvs.len() {
            if self.folded[src] {
                continue;
            }
            let Some((req, slot)) = &self.recvs[src] else {
                self.folded[src] = true;
                continue;
            };
            if req.is_complete() {
                let contribution: Vec<T> = from_bytes(&slot.take());
                self.op
                    .apply(&mut self.acc, &contribution)
                    .expect("validated at initiation");
                self.folded[src] = true;
                self.recvs[src] = None;
                any = true;
            }
        }
        let all_folded = self.folded.iter().all(|&f| f);
        if all_folded && Request::all_complete(&self.sends) {
            self.out.deposit(std::mem::take(&mut self.acc));
            if let Some(c) = self.completer.take() {
                c.complete(Status::empty());
            }
            return AsyncPoll::Done;
        }
        if any {
            AsyncPoll::Progress
        } else {
            AsyncPoll::Pending
        }
    }
}

impl Comm {
    /// Nonblocking equal-block reduce-scatter
    /// (`MPI_Ireduce_scatter_block`): `data` holds `count` elements per
    /// destination rank; rank `i`'s future yields the element-wise
    /// reduction of every rank's block `i`.
    pub fn ireduce_scatter_block<T: Reducible>(
        &self,
        data: &[T],
        count: usize,
        op: Op,
    ) -> MpiResult<CollFuture<T>> {
        op.apply::<T>(&mut [], &[])?;
        let size = self.size();
        if data.len() != count * size {
            return Err(MpiError::CountMismatch {
                got: data.len(),
                expected: count * size,
            });
        }
        let rank = self.rank() as usize;
        let seq = self.next_coll_seq();
        let tag = Comm::coll_tag(seq, 0);
        let (req, completer) = Request::pair(self.stream());
        let (fut, out) = CollFuture::<T>::pair(req);

        let recvs: Vec<Option<(Request, RecvSlot)>> = (0..size as i32)
            .map(|src| {
                (src as usize != rank)
                    .then(|| self.irecv_on_ctx(self.coll_ctx(), count * T::SIZE, src, tag))
            })
            .collect();
        let mut sends = Vec::with_capacity(size.saturating_sub(1));
        for dst in 0..size {
            if dst == rank {
                continue;
            }
            let block = &data[dst * count..(dst + 1) * count];
            sends.push(self.isend_on_ctx(self.coll_ctx(), to_bytes(block), dst as i32, tag));
        }

        let task = ReduceScatterTask {
            op,

            acc: data[rank * count..(rank + 1) * count].to_vec(),
            sends,
            recvs,
            folded: vec![false; size],
            out,
            completer: Some(completer),
        };
        self.bundle().sched.submit(Box::new(task));
        Ok(fut)
    }

    /// Blocking equal-block reduce-scatter (`MPI_Reduce_scatter_block`).
    pub fn reduce_scatter_block<T: Reducible>(
        &self,
        data: &[T],
        count: usize,
        op: Op,
    ) -> MpiResult<Vec<T>> {
        Ok(self.ireduce_scatter_block(data, count, op)?.wait().0)
    }
}

#[cfg(test)]
mod tests {
    use super::super::testutil::run_ranks;
    use super::*;

    #[test]
    fn reduce_scatter_blocks_hold_reductions() {
        for n in [1, 2, 3, 4, 6] {
            let results = run_ranks(n, |proc| {
                let comm = proc.world_comm();
                // data[dst*2 + k] = rank + dst*10 + k*100
                let r = proc.rank() as i64;
                let data: Vec<i64> = (0..2 * n)
                    .map(|i| r + (i / 2) as i64 * 10 + (i % 2) as i64 * 100)
                    .collect();
                comm.reduce_scatter_block(&data, 2, Op::Sum).unwrap()
            });
            let rank_sum: i64 = (0..n as i64).sum();
            for (dst, out) in results.iter().enumerate() {
                let expect: Vec<i64> = (0..2)
                    .map(|k| rank_sum + (dst as i64 * 10 + k * 100) * n as i64)
                    .collect();
                assert_eq!(out, &expect, "rank {dst} of {n}");
            }
        }
    }

    #[test]
    fn reduce_scatter_count_mismatch() {
        let results = run_ranks(2, |proc| {
            let comm = proc.world_comm();
            comm.ireduce_scatter_block(&[1i32; 3], 2, Op::Sum).is_err()
        });
        assert!(results.iter().all(|&e| e));
    }

    #[test]
    fn reduce_scatter_max() {
        let results = run_ranks(3, |proc| {
            let comm = proc.world_comm();
            let r = proc.rank() as i32;
            // Block j value: (r * 7 + j) % 5
            let data: Vec<i32> = (0..3).map(|j| (r * 7 + j) % 5).collect();
            comm.reduce_scatter_block(&data, 1, Op::Max).unwrap()
        });
        for (j, out) in results.iter().enumerate() {
            let expect = (0..3).map(|r| (r * 7 + j as i32) % 5).max().unwrap();
            assert_eq!(out, &vec![expect]);
        }
    }
}

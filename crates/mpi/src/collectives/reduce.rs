//! Binomial-tree reduce (commutative operations).
//!
//! Root-relative rank `r` receives partial results from children
//! `r + 2^k` (for each `k` with `r + 2^k < size` until `r`'s own bit),
//! folding each into its accumulator, then sends the accumulator to parent
//! `r - 2^k`. The root ends with the full reduction.

use mpfa_core::{AsyncPoll, Completer, Request, Status};

use crate::comm::Comm;
use crate::datatype::{from_bytes, to_bytes};
use crate::error::{MpiError, MpiResult};
use crate::matching::RecvSlot;
use crate::op::{Op, Reducible};
use crate::sched::CollTask;

use super::future::{CollFuture, CollOutput};

enum ReduceState {
    /// Working through mask rounds; `mask` is the next round's distance.
    Round { mask: usize },
    /// Waiting for a child's partial result.
    Receiving {
        mask: usize,
        req: Request,
        slot: RecvSlot,
    },
    /// Waiting for our send to the parent.
    SendingUp(Request),
}

struct ReduceTask<T: Reducible> {
    comm: Comm,
    seq: u64,
    root: i32,
    acc: Vec<T>,
    state: ReduceState,
    op: Op,
    out: CollOutput<T>,
    completer: Option<Completer>,
}

impl<T: Reducible> ReduceTask<T> {
    fn relative(&self) -> usize {
        (self.comm.rank() - self.root).rem_euclid(self.comm.size() as i32) as usize
    }

    fn absolute(&self, relative: usize) -> i32 {
        (relative as i32 + self.root) % self.comm.size() as i32
    }

    fn finish(&mut self, deliver: bool) -> AsyncPoll {
        if deliver {
            self.out.deposit(std::mem::take(&mut self.acc));
        } else {
            self.out.deposit(Vec::new());
        }
        if let Some(c) = self.completer.take() {
            c.complete(Status::empty());
        }
        AsyncPoll::Done
    }
}

impl<T: Reducible> CollTask for ReduceTask<T> {
    fn advance(&mut self) -> AsyncPoll {
        let size = self.comm.size();
        let relative = self.relative();
        loop {
            match &mut self.state {
                ReduceState::Round { mask } => {
                    let m = *mask;
                    if m >= size {
                        // All rounds done without sending up: we are root.
                        debug_assert_eq!(relative, 0);
                        return self.finish(true);
                    }
                    let tag = Comm::coll_tag(self.seq, m.trailing_zeros());
                    if relative & m != 0 {
                        // Send accumulator to parent and finish.
                        let parent = self.absolute(relative - m);
                        let req = self.comm.isend_on_ctx(
                            self.comm.coll_ctx(),
                            to_bytes(&self.acc),
                            parent,
                            tag,
                        );
                        self.state = ReduceState::SendingUp(req);
                        return AsyncPoll::Progress;
                    } else if relative + m < size {
                        // Receive a child's partial result.
                        let child = self.absolute(relative + m);
                        let (req, slot) = self.comm.irecv_on_ctx(
                            self.comm.coll_ctx(),
                            self.acc.len() * T::SIZE,
                            child,
                            tag,
                        );
                        self.state = ReduceState::Receiving { mask: m, req, slot };
                        return AsyncPoll::Progress;
                    } else {
                        // No child at this distance; next round.
                        self.state = ReduceState::Round { mask: m << 1 };
                        continue;
                    }
                }
                ReduceState::Receiving { mask, req, slot } => {
                    if !req.is_complete() {
                        return AsyncPoll::Pending;
                    }
                    let contribution: Vec<T> = from_bytes(&slot.take());
                    let m = *mask;
                    self.op
                        .apply(&mut self.acc, &contribution)
                        .expect("op validated at initiation");
                    self.state = ReduceState::Round { mask: m << 1 };
                    continue;
                }
                ReduceState::SendingUp(req) => {
                    if !req.is_complete() {
                        return AsyncPoll::Pending;
                    }
                    return self.finish(false);
                }
            }
        }
    }
}

impl Comm {
    /// Nonblocking reduce (`MPI_Ireduce`) of `data` with `op` to `root`.
    /// The root's future yields the reduction; other ranks get an empty
    /// vector.
    pub fn ireduce<T: Reducible>(&self, data: &[T], op: Op, root: i32) -> MpiResult<CollFuture<T>> {
        if root < 0 || root as usize >= self.size() {
            return Err(MpiError::InvalidRank {
                rank: root,
                size: self.size(),
            });
        }
        // Validate op/type compatibility up front (e.g. Band on floats).
        op.apply::<T>(&mut [], &[])?;

        let seq = self.next_coll_seq();
        let (req, completer) = Request::pair(self.stream());
        let (fut, out) = CollFuture::<T>::pair(req);
        let task = ReduceTask {
            comm: self.clone(),
            seq,
            root,
            acc: data.to_vec(),
            state: ReduceState::Round { mask: 1 },
            op,
            out,
            completer: Some(completer),
        };
        self.bundle().sched.submit(Box::new(task));
        Ok(fut)
    }

    /// Blocking reduce (`MPI_Reduce`). Returns `Some(result)` at the root,
    /// `None` elsewhere.
    pub fn reduce<T: Reducible>(&self, data: &[T], op: Op, root: i32) -> MpiResult<Option<Vec<T>>> {
        let (result, _) = self.ireduce(data, op, root)?.wait();
        Ok(if self.rank() == root {
            Some(result)
        } else {
            None
        })
    }
}

#[cfg(test)]
mod tests {
    use super::super::testutil::run_ranks;
    use super::*;

    #[test]
    fn reduce_sum_to_root0() {
        for n in [1, 2, 3, 4, 5, 8] {
            let results = run_ranks(n, |proc| {
                let comm = proc.world_comm();
                let data = vec![proc.rank() as i64 + 1, 10 * (proc.rank() as i64 + 1)];
                comm.reduce(&data, Op::Sum, 0).unwrap()
            });
            let total: i64 = (1..=n as i64).sum();
            assert_eq!(results[0], Some(vec![total, 10 * total]), "n={n}");
            for r in results.iter().skip(1) {
                assert!(r.is_none());
            }
        }
    }

    #[test]
    fn reduce_max_to_nonzero_root() {
        let results = run_ranks(6, |proc| {
            let comm = proc.world_comm();
            let data = vec![(proc.rank() as i32 * 7) % 5];
            comm.reduce(&data, Op::Max, 2).unwrap()
        });
        let expect = (0..6).map(|r| (r * 7) % 5).max().unwrap();
        assert_eq!(results[2], Some(vec![expect]));
    }

    #[test]
    fn reduce_float_prod() {
        let results = run_ranks(4, |proc| {
            let comm = proc.world_comm();
            comm.reduce(&[2.0f64], Op::Prod, 0).unwrap()
        });
        assert_eq!(results[0], Some(vec![16.0]));
    }

    #[test]
    fn reduce_bad_op_rejected_at_initiation() {
        let results = run_ranks(1, |proc| {
            let comm = proc.world_comm();
            comm.ireduce(&[1.0f32], Op::Bxor, 0).is_err()
        });
        assert!(results[0]);
    }

    #[test]
    fn repeated_reduces() {
        let results = run_ranks(3, |proc| {
            let comm = proc.world_comm();
            let mut sums = Vec::new();
            for round in 0..8i32 {
                let out = comm
                    .reduce(&[round + proc.rank() as i32], Op::Sum, 0)
                    .unwrap();
                if let Some(v) = out {
                    sums.push(v[0]);
                }
            }
            sums
        });
        assert_eq!(results[0], (0..8).map(|r| 3 * r + 3).collect::<Vec<i32>>());
    }
}

//! Completion handle of a nonblocking collective.

use std::future::Future;
use std::pin::Pin;
use std::sync::Arc;
use std::task::{Context, Poll};

use mpfa_core::sync::Mutex;
use mpfa_core::{Request, RequestError, Status};

/// The output side of a nonblocking collective: a request plus the typed
/// result the schedule deposits at completion.
///
/// Operations without a result for this rank (barrier, non-root reduce)
/// deposit an empty vector.
pub struct CollFuture<T> {
    req: Request,
    out: Arc<Mutex<Vec<T>>>,
}

/// The schedule-side writer for a [`CollFuture`]'s output.
pub(crate) struct CollOutput<T> {
    out: Arc<Mutex<Vec<T>>>,
}

impl<T> CollOutput<T> {
    /// Deposit the result (called by the schedule just before completing
    /// the request).
    pub(crate) fn deposit(&self, value: Vec<T>) {
        *self.out.lock() = value;
    }
}

impl<T> CollFuture<T> {
    /// Build a future + writer pair around `req`.
    pub(crate) fn pair(req: Request) -> (CollFuture<T>, CollOutput<T>) {
        let out = Arc::new(Mutex::new(Vec::new()));
        (
            CollFuture {
                req,
                out: out.clone(),
            },
            CollOutput { out },
        )
    }

    /// `MPIX_Request_is_complete` semantics: atomic, no progress.
    #[inline]
    pub fn is_complete(&self) -> bool {
        self.req.is_complete()
    }

    /// A clone of the underlying request.
    pub fn request(&self) -> Request {
        self.req.clone()
    }

    /// Wait (driving the communicator's stream) and take the result.
    pub fn wait(self) -> (Vec<T>, Status) {
        let status = self.req.wait();
        (std::mem::take(&mut *self.out.lock()), status)
    }

    /// Wait (driving the communicator's stream) and take the result,
    /// surfacing a fault instead of panicking: a collective aborted by
    /// peer failure or revocation returns the schedule's error.
    pub fn wait_result(self) -> Result<(Vec<T>, Status), RequestError> {
        let status = self.req.wait_result()?;
        Ok((std::mem::take(&mut *self.out.lock()), status))
    }

    /// Take the result of an already-complete collective.
    ///
    /// # Panics
    /// Panics if not complete.
    pub fn take(self) -> Vec<T> {
        assert!(self.is_complete(), "CollFuture::take before completion");
        std::mem::take(&mut *self.out.lock())
    }
}

/// Awaiting a nonblocking collective resolves to its typed result and
/// status at completion, or to the fault that aborted it.
impl<T> Future for CollFuture<T> {
    type Output = Result<(Vec<T>, Status), RequestError>;

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
        let this = self.get_mut();
        match Pin::new(&mut this.req).poll(cx) {
            Poll::Ready(Ok(status)) => {
                Poll::Ready(Ok((std::mem::take(&mut *this.out.lock()), status)))
            }
            Poll::Ready(Err(err)) => Poll::Ready(Err(err)),
            Poll::Pending => Poll::Pending,
        }
    }
}

impl<T> std::fmt::Debug for CollFuture<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CollFuture")
            .field("complete", &self.is_complete())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpfa_core::Stream;

    #[test]
    fn deposit_then_take() {
        let s = Stream::create();
        let (req, completer) = Request::pair(&s);
        let (fut, out) = CollFuture::<i32>::pair(req);
        assert!(!fut.is_complete());
        out.deposit(vec![1, 2, 3]);
        completer.complete_empty();
        assert!(fut.is_complete());
        assert_eq!(fut.take(), vec![1, 2, 3]);
    }

    #[test]
    #[should_panic(expected = "before completion")]
    fn take_before_complete_panics() {
        let s = Stream::create();
        let (req, _completer) = Request::pair(&s);
        let (fut, _out) = CollFuture::<i32>::pair(req);
        let _ = fut.take();
    }
}

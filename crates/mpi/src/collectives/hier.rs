//! Topology-aware hierarchical collectives: an intra-node leg over the
//! fast substrate plus an inter-node leg among one leader per node.
//!
//! At 64–256 ranks a flat collective treats every pair of ranks as
//! equidistant; a box (or rack) is not like that. [`Comm::hier_split`]
//! carves the communicator into *nodes* of `node_size` consecutive
//! ranks — `MPFA_NODE_SIZE` for launcher-provided topology — and
//! returns a [`HierComm`] whose collectives compose the existing
//! schedules into the classic three-stage shape:
//!
//! * **allreduce** — intra-node binomial reduce to the node leader,
//!   leader-level allreduce (recursive doubling, or ring
//!   reduce-scatter + allgather for bandwidth-bound payloads via
//!   `iallreduce_auto`), intra-node binomial bcast back out.
//! * **bcast** — root hands the payload to its node leader, binomial
//!   bcast among leaders, binomial bcast inside every node.
//! * **barrier** — node barrier, leader barrier, node barrier (the
//!   second node pass is the release: nobody leaves before every node
//!   has arrived).
//!
//! Only `n_nodes` ranks ever talk across node boundaries, so the
//! inter-node leg shrinks from `size` to `size / node_size`
//! participants while the intra-node legs run over whatever fast path
//! the transport gives co-located ranks (shared-memory rings under
//! `MPFA_TRANSPORT=shm`, loopback frames otherwise).
//!
//! The sub-communicators are built once (two collective `split`s) and
//! cached in the `HierComm`, so per-operation cost is the stages
//! themselves — no per-call communicator churn.

use crate::comm::Comm;
use crate::error::{MpiError, MpiResult};
use crate::op::{Op, Reducible};
use crate::MpiType;

/// Env var declaring how many consecutive ranks share a node (the
/// launcher's topology hint). Unset or `0` means "derive": the whole
/// world is one node for worlds up to 8 ranks, else nodes of 8.
pub const ENV_NODE_SIZE: &str = "MPFA_NODE_SIZE";

/// Tag for the root→leader hop of a hierarchical bcast. Runs on the
/// parent communicator's user context, so the tag is reserved by
/// convention (collectives themselves use the collective context).
const HIER_BCAST_TAG: i32 = 0x7f7f_0001;

/// Node size from the environment, falling back to a derived default.
pub fn node_size_from_env(world: usize) -> usize {
    match std::env::var(ENV_NODE_SIZE)
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
    {
        Some(n) if n > 0 => n,
        _ => {
            if world <= 8 {
                world.max(1)
            } else {
                8
            }
        }
    }
}

/// A communicator split into an intra-node leg and an inter-node
/// (leader) leg. Built by [`Comm::hier_split`]; reusable for any
/// number of operations.
pub struct HierComm {
    parent: Comm,
    /// All ranks on my node; node rank 0 is the leader.
    node: Comm,
    /// One leader per node, ordered by node id. `None` on non-leaders.
    leaders: Option<Comm>,
    node_size: usize,
}

impl Comm {
    /// Split this communicator into nodes of `node_size` consecutive
    /// ranks and return the hierarchical view. Collective over the
    /// communicator (two `split`s); every rank must pass the same
    /// `node_size`.
    pub fn hier_split(&self, node_size: usize) -> MpiResult<HierComm> {
        if node_size == 0 {
            return Err(MpiError::Protocol("hier_split: node_size 0".into()));
        }
        let me = self.rank() as usize;
        let node_id = (me / node_size) as i32;
        let node = self
            .split(node_id, 0)?
            .expect("non-negative color yields a comm");
        let is_leader = node.rank() == 0;
        // Leaders keep node order, so the leader of node k sits at
        // leader-rank k — bcast root translation is then just an index.
        let leaders = self.split(if is_leader { 0 } else { -1 }, node_id)?;
        Ok(HierComm {
            parent: self.clone(),
            node,
            leaders,
            node_size,
        })
    }

    /// [`Comm::hier_split`] with the node size from `MPFA_NODE_SIZE`
    /// (or a derived default). Collective over the communicator.
    pub fn hier_split_env(&self) -> MpiResult<HierComm> {
        let n = node_size_from_env(self.size());
        self.hier_split(n)
    }
}

impl HierComm {
    /// The parent communicator this hierarchy was carved from.
    pub fn parent(&self) -> &Comm {
        &self.parent
    }

    /// The intra-node communicator (node rank 0 is the leader).
    pub fn node(&self) -> &Comm {
        &self.node
    }

    /// The inter-node leader communicator (`None` on non-leaders).
    pub fn leaders(&self) -> Option<&Comm> {
        self.leaders.as_ref()
    }

    /// Ranks per node this hierarchy was built with.
    pub fn node_size(&self) -> usize {
        self.node_size
    }

    /// Number of nodes in the hierarchy.
    pub fn nodes(&self) -> usize {
        self.parent.size().div_ceil(self.node_size)
    }

    /// Hierarchical allreduce: intra-node reduce → leader allreduce →
    /// intra-node bcast. Same result on every rank as the flat
    /// algorithm, with only one rank per node on the inter-node leg.
    pub fn allreduce<T: Reducible>(&self, data: &[T], op: Op) -> MpiResult<Vec<T>> {
        // Stage 1: binomial reduce onto the node leader.
        let partial = self.node.reduce(data, op, 0)?;
        // Stage 2: leaders combine across nodes (ring for big payloads).
        let mut full = match (&self.leaders, partial) {
            (Some(leaders), Some(partial)) => {
                Some(leaders.iallreduce_auto(&partial, op)?.wait_result()?.0)
            }
            _ => None,
        };
        // Stage 3: binomial bcast from the leader back over the node.
        let mut buf = full.take().unwrap_or_default();
        self.node.bcast(&mut buf, data.len(), 0)?;
        Ok(buf)
    }

    /// Hierarchical bcast from parent-rank `root`: root→leader hop,
    /// leader-level binomial bcast, intra-node binomial bcast.
    pub fn bcast<T: MpiType>(&self, buf: &mut Vec<T>, count: usize, root: i32) -> MpiResult<()> {
        let size = self.parent.size();
        if root < 0 || root as usize >= size {
            return Err(MpiError::Protocol(format!("hier bcast: bad root {root}")));
        }
        let me = self.parent.rank() as usize;
        let root_node = root as usize / self.node_size;
        let root_leader = root_node * self.node_size; // parent rank of root's node leader

        // Hop 0: the payload reaches root's node leader. (Skipped when
        // the root already is its node's leader.)
        if root as usize != root_leader {
            if me == root as usize {
                self.parent
                    .send(&buf[..count], root_leader as i32, HIER_BCAST_TAG)?;
            } else if me == root_leader {
                let (data, _) = self.parent.irecv::<T>(count, root, HIER_BCAST_TAG)?.wait();
                *buf = data;
            }
        }

        // Hop 1: leaders fan the payload across nodes. Leader order is
        // node order, so the leaders-rank of root's node is root_node.
        if let Some(leaders) = &self.leaders {
            leaders.bcast(buf, count, root_node as i32)?;
        }

        // Hop 2: every leader fans out inside its node.
        self.node.bcast(buf, count, 0)
    }

    /// Hierarchical barrier: node barrier (everyone on the node has
    /// arrived), leader barrier (every node has arrived), node barrier
    /// (release — nobody leaves early).
    pub fn barrier(&self) -> MpiResult<()> {
        self.node.barrier()?;
        if let Some(leaders) = &self.leaders {
            leaders.barrier()?;
        }
        self.node.barrier()
    }
}

#[cfg(test)]
mod tests {
    use super::super::testutil::run_ranks;
    use super::*;

    #[test]
    fn node_size_default_derivation() {
        // Without the env var: whole world while small, nodes of 8 after.
        if std::env::var(ENV_NODE_SIZE).is_err() {
            assert_eq!(node_size_from_env(4), 4);
            assert_eq!(node_size_from_env(8), 8);
            assert_eq!(node_size_from_env(64), 8);
        }
    }

    #[test]
    fn hier_allreduce_matches_flat() {
        for (ranks, node_size) in [(8, 4), (8, 3), (6, 2), (8, 1), (4, 8)] {
            let results = run_ranks(ranks, move |proc| {
                let comm = proc.world_comm();
                let hier = comm.hier_split(node_size).unwrap();
                let mine: Vec<i64> = (0..5).map(|i| (proc.rank() as i64 + 1) * (i + 1)).collect();
                let got = hier.allreduce(&mine, Op::Sum).unwrap();
                let flat = comm.allreduce(&mine, Op::Sum).unwrap();
                assert_eq!(got, flat, "ranks={ranks} node={node_size}");
                got[0]
            });
            let expect: i64 = (1..=ranks as i64).sum();
            assert!(results.iter().all(|&v| v == expect));
        }
    }

    #[test]
    fn hier_bcast_from_every_root() {
        let ranks = 8;
        let results = run_ranks(ranks, |proc| {
            let comm = proc.world_comm();
            let hier = comm.hier_split(3).unwrap();
            let mut out = Vec::new();
            for root in 0..ranks as i32 {
                let mut buf = if comm.rank() == root {
                    vec![root as i64 * 100 + 7; 6]
                } else {
                    Vec::new()
                };
                hier.bcast(&mut buf, 6, root).unwrap();
                assert_eq!(buf, vec![root as i64 * 100 + 7; 6]);
                out.push(buf[0]);
            }
            out
        });
        for r in results {
            assert_eq!(
                r,
                (0..ranks as i64).map(|n| n * 100 + 7).collect::<Vec<_>>()
            );
        }
    }

    #[test]
    fn hier_barrier_orders_all_nodes() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let arrived = AtomicUsize::new(0);
        let arrived = &arrived;
        let ranks = 6;
        run_ranks(ranks, move |proc| {
            let comm = proc.world_comm();
            let hier = comm.hier_split(2).unwrap();
            arrived.fetch_add(1, Ordering::SeqCst);
            hier.barrier().unwrap();
            // After the barrier, every rank must have arrived.
            assert_eq!(arrived.load(Ordering::SeqCst), ranks);
        });
    }

    #[test]
    fn hier_split_rejects_zero_node_size() {
        run_ranks(2, |proc| {
            assert!(proc.world_comm().hier_split(0).is_err());
        });
    }
}

//! Ring allreduce: reduce-scatter phase + allgather phase, both around the
//! ring. Bandwidth-optimal (each rank moves `2·(P−1)/P` of the payload),
//! preferred over recursive doubling for large messages — the classic
//! algorithm-selection trade-off MPI implementations tune (and the A5
//! ablation measures).
//!
//! Phase 1 (reduce-scatter), P−1 steps: in step s, send block
//! `(rank − s) mod P` to the right neighbor, receive block
//! `(rank − s − 1) mod P` from the left and fold it into the local copy.
//! After P−1 steps, rank r holds the fully reduced block `(r + 1) mod P`.
//!
//! Phase 2 (allgather), P−1 steps: circulate the reduced blocks.

use mpfa_core::{AsyncPoll, Completer, Request, Status};

use crate::comm::Comm;
use crate::datatype::{from_bytes, to_bytes};
use crate::error::MpiResult;
use crate::matching::RecvSlot;
use crate::op::{Op, Reducible};
use crate::sched::CollTask;

use super::future::{CollFuture, CollOutput};

/// Block `i`'s element range for `count` elements over `size` ranks
/// (balanced partition; works for any count, including count < size).
fn block_range(count: usize, size: usize, i: usize) -> std::ops::Range<usize> {
    let lo = i * count / size;
    let hi = (i + 1) * count / size;
    lo..hi
}

enum RingState {
    ReduceScatter {
        step: usize,
    },
    Allgather {
        step: usize,
    },
    Wait {
        next: Box<RingState>,
        reducing: bool,
        recv_block: usize,
        send: Request,
        recv: Request,
        slot: RecvSlot,
    },
}

struct RingAllreduceTask<T: Reducible> {
    comm: Comm,
    seq: u64,
    op: Op,
    data: Vec<T>,
    state: RingState,
    out: CollOutput<T>,
    completer: Option<Completer>,
}

impl<T: Reducible> RingAllreduceTask<T> {
    fn finish(&mut self) -> AsyncPoll {
        self.out.deposit(std::mem::take(&mut self.data));
        if let Some(c) = self.completer.take() {
            c.complete(Status::empty());
        }
        AsyncPoll::Done
    }

    /// Issue one ring step: send `send_block`, receive `recv_block`.
    fn issue(
        &mut self,
        round: u32,
        send_block: usize,
        recv_block: usize,
        reducing: bool,
        next: RingState,
    ) -> AsyncPoll {
        let size = self.comm.size() as i32;
        let right = (self.comm.rank() + 1).rem_euclid(size);
        let left = (self.comm.rank() - 1).rem_euclid(size);
        let tag = Comm::coll_tag(self.seq, round);
        let count = self.data.len();
        let payload = to_bytes(&self.data[block_range(count, size as usize, send_block)]);
        let send = self
            .comm
            .isend_on_ctx(self.comm.coll_ctx(), payload, right, tag);
        let recv_len = block_range(count, size as usize, recv_block).len();
        let (recv, slot) =
            self.comm
                .irecv_on_ctx(self.comm.coll_ctx(), recv_len * T::SIZE, left, tag);
        self.state = RingState::Wait {
            next: Box::new(next),
            reducing,
            recv_block,
            send,
            recv,
            slot,
        };
        AsyncPoll::Progress
    }
}

impl<T: Reducible> CollTask for RingAllreduceTask<T> {
    fn advance(&mut self) -> AsyncPoll {
        let size = self.comm.size();
        let rank = self.comm.rank() as usize;
        if size == 1 {
            return self.finish();
        }
        match std::mem::replace(
            &mut self.state,
            RingState::ReduceScatter { step: usize::MAX },
        ) {
            RingState::ReduceScatter { step } => {
                if step >= size - 1 {
                    self.state = RingState::Allgather { step: 0 };
                    return self.advance();
                }
                let send_block = (rank + size - step) % size;
                let recv_block = (rank + size - step - 1) % size;
                self.issue(
                    step as u32,
                    send_block,
                    recv_block,
                    true,
                    RingState::ReduceScatter { step: step + 1 },
                )
            }
            RingState::Allgather { step } => {
                if step >= size - 1 {
                    return self.finish();
                }
                // After reduce-scatter, rank r owns reduced block (r+1)%P.
                let send_block = (rank + 1 + size - step) % size;
                let recv_block = (rank + size - step) % size;
                self.issue(
                    (size - 1 + step) as u32,
                    send_block,
                    recv_block,
                    false,
                    RingState::Allgather { step: step + 1 },
                )
            }
            RingState::Wait {
                next,
                reducing,
                recv_block,
                send,
                recv,
                slot,
            } => {
                if !(send.is_complete() && recv.is_complete()) {
                    self.state = RingState::Wait {
                        next,
                        reducing,
                        recv_block,
                        send,
                        recv,
                        slot,
                    };
                    return AsyncPoll::Pending;
                }
                let incoming: Vec<T> = from_bytes(&slot.take());
                let range = block_range(self.data.len(), size, recv_block);
                if reducing {
                    self.op
                        .apply(&mut self.data[range], &incoming)
                        .expect("validated at initiation");
                } else {
                    self.data[range].copy_from_slice(&incoming);
                }
                self.state = *next;
                self.advance()
            }
        }
    }
}

impl Comm {
    /// Payload size (bytes) above which [`Comm::iallreduce`] switches from
    /// recursive doubling to the ring algorithm.
    pub const ALLREDUCE_RING_THRESHOLD: usize = 32 * 1024;

    /// Nonblocking ring allreduce (`MPI_Iallreduce`, large-message
    /// algorithm). Valid for any rank count.
    pub fn iallreduce_ring<T: Reducible>(&self, data: &[T], op: Op) -> MpiResult<CollFuture<T>> {
        op.apply::<T>(&mut [], &[])?;
        let seq = self.next_coll_seq();
        let (req, completer) = Request::pair(self.stream());
        let (fut, out) = CollFuture::<T>::pair(req);
        let task = RingAllreduceTask {
            comm: self.clone(),
            seq,
            op,
            data: data.to_vec(),
            state: RingState::ReduceScatter { step: 0 },
            out,
            completer: Some(completer),
        };
        self.bundle().sched.submit(Box::new(task));
        Ok(fut)
    }

    /// Nonblocking allreduce with automatic algorithm selection:
    /// recursive doubling for latency-bound sizes, ring for
    /// bandwidth-bound sizes (≥ [`Comm::ALLREDUCE_RING_THRESHOLD`] bytes).
    pub fn iallreduce_auto<T: Reducible>(&self, data: &[T], op: Op) -> MpiResult<CollFuture<T>> {
        if data.len() * T::SIZE >= Self::ALLREDUCE_RING_THRESHOLD && self.size() > 2 {
            self.iallreduce_ring(data, op)
        } else {
            self.iallreduce(data, op)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::super::testutil::run_ranks;
    use super::*;

    #[test]
    fn block_ranges_partition_exactly() {
        for count in [0usize, 1, 5, 16, 17, 100] {
            for size in [1usize, 2, 3, 7, 16] {
                let mut covered = 0;
                for i in 0..size {
                    let r = block_range(count, size, i);
                    assert_eq!(r.start, covered, "gap at block {i}");
                    covered = r.end;
                }
                assert_eq!(covered, count);
            }
        }
    }

    #[test]
    fn ring_allreduce_matches_reference() {
        for n in [2, 3, 4, 5, 8] {
            let results = run_ranks(n, |proc| {
                let comm = proc.world_comm();
                let data: Vec<i64> = (0..40).map(|i| i + proc.rank() as i64).collect();
                comm.iallreduce_ring(&data, Op::Sum).unwrap().wait().0
            });
            for out in results {
                for (i, v) in out.iter().enumerate() {
                    let expect: i64 = (0..n as i64).map(|r| i as i64 + r).sum();
                    assert_eq!(*v, expect, "index {i}, n={n}");
                }
            }
        }
    }

    #[test]
    fn ring_allreduce_single_rank() {
        let results = run_ranks(1, |proc| {
            let comm = proc.world_comm();
            comm.iallreduce_ring(&[1i32, 2, 3], Op::Sum)
                .unwrap()
                .wait()
                .0
        });
        assert_eq!(results[0], vec![1, 2, 3]);
    }

    #[test]
    fn ring_allreduce_count_smaller_than_ranks() {
        // Some blocks are empty; the algorithm must still terminate.
        let results = run_ranks(6, |proc| {
            let comm = proc.world_comm();
            comm.iallreduce_ring(&[proc.rank() as i32 + 1], Op::Sum)
                .unwrap()
                .wait()
                .0
        });
        for out in results {
            assert_eq!(out, vec![21]);
        }
    }

    #[test]
    fn auto_selection_agrees_with_both_algorithms() {
        let results = run_ranks(4, |proc| {
            let comm = proc.world_comm();
            // Small: recursive doubling path.
            let small = comm
                .iallreduce_auto(&[proc.rank() as i64], Op::Sum)
                .unwrap()
                .wait()
                .0;
            // Large: ring path (> 32 KiB of i64).
            let big: Vec<i64> = (0..8000).map(|i| i + proc.rank() as i64).collect();
            let big_out = comm.iallreduce_auto(&big, Op::Sum).unwrap().wait().0;
            (small, big_out)
        });
        for (small, big) in results {
            assert_eq!(small, vec![6]);
            assert_eq!(big.len(), 8000);
            for (i, v) in big.iter().enumerate() {
                assert_eq!(*v, 4 * i as i64 + 6);
            }
        }
    }

    #[test]
    fn ring_max_reduction() {
        let results = run_ranks(3, |proc| {
            let comm = proc.world_comm();
            let data: Vec<i32> = (0..10)
                .map(|i| (i * (proc.rank() as i32 + 1)) % 7)
                .collect();
            comm.iallreduce_ring(&data, Op::Max).unwrap().wait().0
        });
        for out in &results {
            for (i, v) in out.iter().enumerate() {
                let expect = (1..=3).map(|f| (i as i32 * f) % 7).max().unwrap();
                assert_eq!(*v, expect);
            }
        }
    }
}

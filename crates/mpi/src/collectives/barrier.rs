//! Dissemination barrier.
//!
//! ⌈log₂ P⌉ rounds; in round k every rank sends an empty message to
//! `(rank + 2^k) mod P` and receives one from `(rank − 2^k) mod P`. No rank
//! leaves until every rank has entered.

use mpfa_core::{AsyncPoll, Completer, Request, Status};

use crate::comm::Comm;
use crate::error::MpiResult;
use crate::sched::{check_stage, CollTask, StageCheck};

use super::future::{CollFuture, CollOutput};

struct BarrierTask {
    comm: Comm,
    seq: u64,
    round: u32,
    nrounds: u32,
    pending: Option<(Request, Request)>,
    out: CollOutput<u8>,
    completer: Option<Completer>,
}

impl CollTask for BarrierTask {
    fn advance(&mut self) -> AsyncPoll {
        if let Some((s, r)) = &self.pending {
            match check_stage(&[s, r]) {
                StageCheck::Wait => return AsyncPoll::Pending,
                StageCheck::Failed(err) => {
                    self.out.deposit(Vec::new());
                    if let Some(c) = self.completer.take() {
                        c.fail(err);
                    }
                    return AsyncPoll::Done;
                }
                StageCheck::Ready => {}
            }
            self.pending = None;
            self.round += 1;
        }
        if self.round >= self.nrounds {
            self.out.deposit(Vec::new());
            if let Some(c) = self.completer.take() {
                c.complete(Status::empty());
            }
            return AsyncPoll::Done;
        }
        let size = self.comm.size() as i32;
        let dist = 1i32 << self.round;
        let dst = (self.comm.rank() + dist).rem_euclid(size);
        let src = (self.comm.rank() - dist).rem_euclid(size);
        let tag = Comm::coll_tag(self.seq, self.round);
        let sreq = self
            .comm
            .isend_on_ctx(self.comm.coll_ctx(), Vec::new(), dst, tag);
        let (rreq, _slot) = self.comm.irecv_on_ctx(self.comm.coll_ctx(), 0, src, tag);
        self.pending = Some((sreq, rreq));
        AsyncPoll::Progress
    }
}

impl Comm {
    /// Nonblocking barrier (`MPI_Ibarrier`), dissemination algorithm.
    pub fn ibarrier(&self) -> MpiResult<CollFuture<u8>> {
        if let Some(err) = self.coll_fault() {
            let (fut, out) = CollFuture::<u8>::pair(Request::failed(self.stream(), err));
            out.deposit(Vec::new());
            return Ok(fut);
        }
        let seq = self.next_coll_seq();
        let (req, completer) = Request::pair(self.stream());
        let (fut, out) = CollFuture::pair(req);
        let nrounds =
            (usize::BITS - (self.size() - 1).leading_zeros()) * u32::from(self.size() > 1);
        let task = BarrierTask {
            comm: self.clone(),
            seq,
            round: 0,
            nrounds,
            pending: None,
            out,
            completer: Some(completer),
        };
        self.bundle().sched.submit(Box::new(task));
        Ok(fut)
    }

    /// Blocking barrier (`MPI_Barrier`). With resilience enabled, a peer
    /// failure or revocation surfaces as `Err` rather than a hang.
    pub fn barrier(&self) -> MpiResult<()> {
        self.ibarrier()?.wait_result()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::super::testutil::run_ranks;
    use mpfa_core::wtime;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    #[test]
    fn barrier_completes_all_ranks() {
        for n in [1, 2, 3, 4, 7, 8] {
            let results = run_ranks(n, |proc| {
                let comm = proc.world_comm();
                comm.barrier().unwrap();
                true
            });
            assert!(results.iter().all(|&ok| ok), "n={n}");
        }
    }

    #[test]
    fn barrier_actually_synchronizes() {
        // No rank may leave the barrier before the slowest rank enters.
        let entered = Arc::new(AtomicUsize::new(0));
        let e = entered.clone();
        let n = 4;
        let results = run_ranks(n, move |proc| {
            let comm = proc.world_comm();
            if proc.rank() == 0 {
                // Rank 0 dawdles before entering.
                let t0 = wtime();
                while wtime() - t0 < 0.01 {
                    std::hint::spin_loop();
                }
            }
            e.fetch_add(1, Ordering::SeqCst);
            comm.barrier().unwrap();
            e.load(Ordering::SeqCst)
        });
        for seen in results {
            assert_eq!(seen, n, "a rank left the barrier before all entered");
        }
    }

    #[test]
    fn repeated_barriers_do_not_cross_match() {
        let results = run_ranks(3, |proc| {
            let comm = proc.world_comm();
            for _ in 0..20 {
                comm.barrier().unwrap();
            }
            true
        });
        assert!(results.iter().all(|&ok| ok));
    }

    #[test]
    fn nonblocking_barrier_overlaps() {
        let results = run_ranks(2, |proc| {
            let comm = proc.world_comm();
            let fut = comm.ibarrier().unwrap();
            // Do some "work" before waiting.
            let mut acc = 0u64;
            for i in 0..1000 {
                acc = acc.wrapping_add(i);
            }
            fut.wait();
            acc
        });
        assert_eq!(results.len(), 2);
    }
}

//! Variable-count collectives: `MPI_Gatherv`, `MPI_Scatterv`,
//! `MPI_Allgatherv`.
//!
//! Counts differ per rank, so the count vector is an argument on every
//! rank (as in MPI, where `recvcounts`/`sendcounts` are significant at
//! the root / everywhere). Algorithms are linear (gatherv/scatterv) and
//! gather-then-bcast (allgatherv) — simple, correct baselines.

use mpfa_core::{AsyncPoll, Completer, Request, Status};

use crate::comm::Comm;
use crate::datatype::{from_bytes, to_bytes, MpiType};
use crate::error::{MpiError, MpiResult};
use crate::matching::RecvSlot;
use crate::sched::CollTask;

use super::future::{CollFuture, CollOutput};

enum VState {
    /// Root of gatherv: per-source receive (None at own slot).
    GatherRoot {
        recvs: Vec<Option<(Request, RecvSlot)>>,
        own: Vec<u8>,
        counts: Vec<usize>,
    },
    /// Non-root of gatherv / root of scatterv: wait for plain requests.
    Sends(Vec<Request>),
    /// Leaf of scatterv: one receive.
    Recv(Request, RecvSlot),
}

struct VTask<T: MpiType> {
    state: VState,
    out: CollOutput<T>,
    completer: Option<Completer>,
    /// For the scatterv root: its own block, delivered at completion.
    own_result: Vec<u8>,
}

impl<T: MpiType> VTask<T> {
    fn finish(&mut self, result: Vec<T>) -> AsyncPoll {
        self.out.deposit(result);
        if let Some(c) = self.completer.take() {
            c.complete(Status::empty());
        }
        AsyncPoll::Done
    }
}

impl<T: MpiType> CollTask for VTask<T> {
    fn advance(&mut self) -> AsyncPoll {
        match &mut self.state {
            VState::GatherRoot { recvs, own, counts } => {
                let done = recvs
                    .iter()
                    .all(|r| r.as_ref().map(|(req, _)| req.is_complete()).unwrap_or(true));
                if !done {
                    return AsyncPoll::Pending;
                }
                let total: usize = counts.iter().sum();
                let mut result: Vec<T> = Vec::with_capacity(total);
                let own = std::mem::take(own);
                let recvs = std::mem::take(recvs);
                for entry in recvs.into_iter() {
                    match entry {
                        Some((_, slot)) => result.extend(from_bytes::<T>(&slot.take())),
                        None => result.extend(from_bytes::<T>(&own)),
                    }
                }
                self.finish(result)
            }
            VState::Sends(reqs) => {
                if !Request::all_complete(reqs) {
                    return AsyncPoll::Pending;
                }
                let own = std::mem::take(&mut self.own_result);
                self.finish(from_bytes(&own))
            }
            VState::Recv(req, slot) => {
                if !req.is_complete() {
                    return AsyncPoll::Pending;
                }
                let bytes = slot.take();
                self.finish(from_bytes(&bytes))
            }
        }
    }
}

impl Comm {
    /// Nonblocking `MPI_Igatherv`: every rank contributes `data`
    /// (`counts[rank]` elements); the root's future yields the rank-order
    /// concatenation.
    pub fn igatherv<T: MpiType>(
        &self,
        data: &[T],
        counts: &[usize],
        root: i32,
    ) -> MpiResult<CollFuture<T>> {
        self.validate_v(counts, root)?;
        if data.len() != counts[self.rank() as usize] {
            return Err(MpiError::CountMismatch {
                got: data.len(),
                expected: counts[self.rank() as usize],
            });
        }
        let seq = self.next_coll_seq();
        let tag = Comm::coll_tag(seq, 0);
        let (req, completer) = Request::pair(self.stream());
        let (fut, out) = CollFuture::<T>::pair(req);

        let task: VTask<T> = if self.rank() == root {
            let recvs = (0..self.size() as i32)
                .map(|src| {
                    (src != root).then(|| {
                        self.irecv_on_ctx(self.coll_ctx(), counts[src as usize] * T::SIZE, src, tag)
                    })
                })
                .collect();
            VTask {
                state: VState::GatherRoot {
                    recvs,
                    own: to_bytes(data),
                    counts: counts.to_vec(),
                },
                out,
                completer: Some(completer),
                own_result: Vec::new(),
            }
        } else {
            let sreq = self.isend_on_ctx(self.coll_ctx(), to_bytes(data), root, tag);
            VTask {
                state: VState::Sends(vec![sreq]),
                out,
                completer: Some(completer),
                own_result: Vec::new(),
            }
        };
        self.bundle().sched.submit(Box::new(task));
        Ok(fut)
    }

    /// Blocking `MPI_Gatherv`. `Some(concatenation)` at the root.
    pub fn gatherv<T: MpiType>(
        &self,
        data: &[T],
        counts: &[usize],
        root: i32,
    ) -> MpiResult<Option<Vec<T>>> {
        let (result, _) = self.igatherv(data, counts, root)?.wait();
        Ok((self.rank() == root).then_some(result))
    }

    /// Nonblocking `MPI_Iscatterv`: the root supplies the concatenation
    /// (`counts` elements per rank, in rank order); each rank's future
    /// yields its `counts[rank]`-element block.
    pub fn iscatterv<T: MpiType>(
        &self,
        data: Option<&[T]>,
        counts: &[usize],
        root: i32,
    ) -> MpiResult<CollFuture<T>> {
        self.validate_v(counts, root)?;
        let seq = self.next_coll_seq();
        let tag = Comm::coll_tag(seq, 0);
        let (req, completer) = Request::pair(self.stream());
        let (fut, out) = CollFuture::<T>::pair(req);

        let task: VTask<T> = if self.rank() == root {
            let total: usize = counts.iter().sum();
            let data = data.ok_or(MpiError::CountMismatch {
                got: 0,
                expected: total,
            })?;
            if data.len() != total {
                return Err(MpiError::CountMismatch {
                    got: data.len(),
                    expected: total,
                });
            }
            let mut sends = Vec::new();
            let mut own = Vec::new();
            let mut off = 0usize;
            for (dst, &count) in counts.iter().enumerate() {
                let block = &data[off..off + count];
                off += count;
                if dst as i32 == root {
                    own = to_bytes(block);
                } else {
                    sends.push(self.isend_on_ctx(
                        self.coll_ctx(),
                        to_bytes(block),
                        dst as i32,
                        tag,
                    ));
                }
            }
            VTask {
                state: VState::Sends(sends),
                out,
                completer: Some(completer),
                own_result: own,
            }
        } else {
            let (rreq, slot) = self.irecv_on_ctx(
                self.coll_ctx(),
                counts[self.rank() as usize] * T::SIZE,
                root,
                tag,
            );
            VTask {
                state: VState::Recv(rreq, slot),
                out,
                completer: Some(completer),
                own_result: Vec::new(),
            }
        };
        self.bundle().sched.submit(Box::new(task));
        Ok(fut)
    }

    /// Blocking `MPI_Scatterv`.
    pub fn scatterv<T: MpiType>(
        &self,
        data: Option<&[T]>,
        counts: &[usize],
        root: i32,
    ) -> MpiResult<Vec<T>> {
        Ok(self.iscatterv(data, counts, root)?.wait().0)
    }

    /// Blocking `MPI_Allgatherv` (gatherv to rank 0 + bcast of the
    /// concatenation).
    pub fn allgatherv<T: MpiType>(&self, data: &[T], counts: &[usize]) -> MpiResult<Vec<T>> {
        let gathered = self.gatherv(data, counts, 0)?;
        let total: usize = counts.iter().sum();
        let mut buf = gathered.unwrap_or_default();
        self.bcast(&mut buf, total, 0)?;
        Ok(buf)
    }

    fn validate_v(&self, counts: &[usize], root: i32) -> MpiResult<()> {
        if root < 0 || root as usize >= self.size() {
            return Err(MpiError::InvalidRank {
                rank: root,
                size: self.size(),
            });
        }
        if counts.len() != self.size() {
            return Err(MpiError::CountMismatch {
                got: counts.len(),
                expected: self.size(),
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::super::testutil::run_ranks;

    #[test]
    fn gatherv_variable_blocks() {
        let results = run_ranks(4, |proc| {
            let comm = proc.world_comm();
            let counts = vec![1usize, 2, 3, 4];
            let r = proc.rank() as i32;
            let data: Vec<i32> = (0..counts[r as usize] as i32).map(|i| r * 10 + i).collect();
            comm.gatherv(&data, &counts, 2).unwrap()
        });
        assert_eq!(
            results[2],
            Some(vec![0, 10, 11, 20, 21, 22, 30, 31, 32, 33])
        );
        assert!(results[0].is_none());
    }

    #[test]
    fn scatterv_variable_blocks() {
        let results = run_ranks(3, |proc| {
            let comm = proc.world_comm();
            let counts = vec![2usize, 0, 3];
            let data = (proc.rank() == 0).then(|| vec![1i64, 2, 30, 31, 32]);
            comm.scatterv(data.as_deref(), &counts, 0).unwrap()
        });
        assert_eq!(results[0], vec![1, 2]);
        assert_eq!(results[1], Vec::<i64>::new());
        assert_eq!(results[2], vec![30, 31, 32]);
    }

    #[test]
    fn allgatherv_roundtrip() {
        let results = run_ranks(3, |proc| {
            let comm = proc.world_comm();
            let counts = vec![3usize, 1, 2];
            let r = proc.rank();
            let data: Vec<u16> = (0..counts[r] as u16)
                .map(|i| (r as u16) * 100 + i)
                .collect();
            comm.allgatherv(&data, &counts).unwrap()
        });
        let expect = vec![0u16, 1, 2, 100, 200, 201];
        for out in results {
            assert_eq!(out, expect);
        }
    }

    #[test]
    fn gatherv_validates_counts() {
        let results = run_ranks(2, |proc| {
            let comm = proc.world_comm();
            comm.igatherv(&[1i32], &[1], 0).is_err() // counts.len() != size
                && comm.igatherv(&[1i32, 2], &[1, 1], 0).is_err() // own count mismatch
        });
        assert!(results.iter().all(|&e| e));
    }
}

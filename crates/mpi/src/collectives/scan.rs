//! Inclusive and exclusive prefix scans (`MPI_Scan` / `MPI_Exscan`),
//! using the classic distance-doubling algorithm for commutative-and-
//! associative operations.
//!
//! Round k: exchange partial results with `rank ± 2^k`; a rank folds what
//! it receives from `rank - 2^k` into both its running prefix and the
//! partial value it forwards up. ⌈log₂ P⌉ rounds.

use mpfa_core::{AsyncPoll, Completer, Request, Status};

use crate::comm::Comm;
use crate::datatype::{from_bytes, to_bytes};
use crate::error::MpiResult;
use crate::matching::RecvSlot;
use crate::op::{Op, Reducible};
use crate::sched::CollTask;

use super::future::{CollFuture, CollOutput};

enum ScanState {
    Round {
        mask: usize,
    },
    Wait {
        mask: usize,
        send: Option<Request>,
        recv: Option<(Request, RecvSlot)>,
    },
}

struct ScanTask<T: Reducible> {
    comm: Comm,
    seq: u64,
    op: Op,
    /// The result accumulator: the inclusive prefix (scan), or the
    /// combination of received lower spans only (exscan).
    prefix: Vec<T>,
    /// The inclusive partial of the contiguous span ending at this rank,
    /// forwarded to higher ranks each round.
    partial: Vec<T>,
    /// Exscan mode: exclude the rank's own value from `prefix`.
    exclusive: bool,
    got_any: bool,
    state: ScanState,
    out: CollOutput<T>,
    completer: Option<Completer>,
}

impl<T: Reducible> ScanTask<T> {
    fn finish(&mut self) -> AsyncPoll {
        let result = if self.exclusive && !self.got_any {
            // Rank 0 never receives: its exscan value is undefined in MPI;
            // we report it as empty.
            Vec::new()
        } else {
            std::mem::take(&mut self.prefix)
        };
        self.out.deposit(result);
        if let Some(c) = self.completer.take() {
            c.complete(Status::empty());
        }
        AsyncPoll::Done
    }
}

impl<T: Reducible> CollTask for ScanTask<T> {
    fn advance(&mut self) -> AsyncPoll {
        let size = self.comm.size();
        let rank = self.comm.rank() as usize;
        loop {
            match &mut self.state {
                ScanState::Round { mask } => {
                    let m = *mask;
                    if m >= size {
                        return self.finish();
                    }
                    let tag = Comm::coll_tag(self.seq, m.trailing_zeros());
                    let send = (rank + m < size).then(|| {
                        self.comm.isend_on_ctx(
                            self.comm.coll_ctx(),
                            to_bytes(&self.partial),
                            (rank + m) as i32,
                            tag,
                        )
                    });
                    let recv = (rank >= m).then(|| {
                        self.comm.irecv_on_ctx(
                            self.comm.coll_ctx(),
                            self.partial.len() * T::SIZE,
                            (rank - m) as i32,
                            tag,
                        )
                    });
                    if send.is_none() && recv.is_none() {
                        self.state = ScanState::Round { mask: m << 1 };
                        continue;
                    }
                    self.state = ScanState::Wait {
                        mask: m,
                        send,
                        recv,
                    };
                    return AsyncPoll::Progress;
                }
                ScanState::Wait { mask, send, recv } => {
                    let send_done = send.as_ref().map(Request::is_complete).unwrap_or(true);
                    let recv_done = recv.as_ref().map(|(r, _)| r.is_complete()).unwrap_or(true);
                    if !(send_done && recv_done) {
                        return AsyncPoll::Pending;
                    }
                    let m = *mask;
                    if let Some((_, slot)) = recv.take() {
                        let incoming: Vec<T> = from_bytes(&slot.take());
                        if self.exclusive && !self.got_any {
                            // First contribution from below seeds the
                            // exclusive accumulator (own value excluded).
                            self.prefix = incoming.clone();
                        } else {
                            self.op
                                .apply(&mut self.prefix, &incoming)
                                .expect("validated at initiation");
                        }
                        self.got_any = true;
                        // The partial we forward must absorb the incoming
                        // span too.
                        self.op
                            .apply(&mut self.partial, &incoming)
                            .expect("validated at initiation");
                    }
                    self.state = ScanState::Round { mask: m << 1 };
                    continue;
                }
            }
        }
    }
}

impl Comm {
    /// Nonblocking inclusive scan (`MPI_Iscan`): rank r's future yields
    /// `op(data_0, …, data_r)`.
    pub fn iscan<T: Reducible>(&self, data: &[T], op: Op) -> MpiResult<CollFuture<T>> {
        self.scan_impl(data, op, false)
    }

    /// Nonblocking exclusive scan (`MPI_Iexscan`): rank r's future yields
    /// `op(data_0, …, data_{r-1})`; rank 0 gets an empty vector
    /// (MPI leaves it undefined).
    pub fn iexscan<T: Reducible>(&self, data: &[T], op: Op) -> MpiResult<CollFuture<T>> {
        self.scan_impl(data, op, true)
    }

    fn scan_impl<T: Reducible>(
        &self,
        data: &[T],
        op: Op,
        exclusive: bool,
    ) -> MpiResult<CollFuture<T>> {
        op.apply::<T>(&mut [], &[])?;
        let seq = self.next_coll_seq();
        let (req, completer) = Request::pair(self.stream());
        let (fut, out) = CollFuture::<T>::pair(req);
        let task = ScanTask {
            comm: self.clone(),
            seq,
            op,
            prefix: data.to_vec(),
            partial: data.to_vec(),
            exclusive,
            got_any: false,
            state: ScanState::Round { mask: 1 },
            out,
            completer: Some(completer),
        };
        self.bundle().sched.submit(Box::new(task));
        Ok(fut)
    }

    /// Blocking inclusive scan (`MPI_Scan`).
    pub fn scan<T: Reducible>(&self, data: &[T], op: Op) -> MpiResult<Vec<T>> {
        Ok(self.iscan(data, op)?.wait().0)
    }

    /// Blocking exclusive scan (`MPI_Exscan`). Rank 0 receives an empty
    /// vector.
    pub fn exscan<T: Reducible>(&self, data: &[T], op: Op) -> MpiResult<Vec<T>> {
        Ok(self.iexscan(data, op)?.wait().0)
    }
}

#[cfg(test)]
mod tests {
    use super::super::testutil::run_ranks;
    use super::*;

    #[test]
    fn inclusive_scan_sums_prefixes() {
        for n in [1, 2, 3, 4, 5, 8] {
            let results = run_ranks(n, |proc| {
                let comm = proc.world_comm();
                comm.scan(&[proc.rank() as i64 + 1], Op::Sum).unwrap()
            });
            for (r, out) in results.iter().enumerate() {
                let expect: i64 = (1..=r as i64 + 1).sum();
                assert_eq!(out, &vec![expect], "rank {r} of {n}");
            }
        }
    }

    #[test]
    fn exclusive_scan_drops_own_value() {
        for n in [1, 2, 4, 7] {
            let results = run_ranks(n, |proc| {
                let comm = proc.world_comm();
                comm.exscan(&[proc.rank() as i32 + 1], Op::Sum).unwrap()
            });
            assert!(results[0].is_empty(), "rank 0 exscan is undefined/empty");
            for (r, out) in results.iter().enumerate().skip(1) {
                let expect: i32 = (1..=r as i32).sum();
                assert_eq!(out, &vec![expect], "rank {r} of {n}");
            }
        }
    }

    #[test]
    fn scan_with_max_gives_running_maximum() {
        let results = run_ranks(6, |proc| {
            let comm = proc.world_comm();
            let v = [((proc.rank() as i32) * 7) % 5];
            comm.scan(&v, Op::Max).unwrap()
        });
        let values: Vec<i32> = (0..6).map(|r| (r * 7) % 5).collect();
        for (r, out) in results.iter().enumerate() {
            let expect = values[..=r].iter().copied().max().unwrap();
            assert_eq!(out[0], expect);
        }
    }

    #[test]
    fn multi_element_scan() {
        let results = run_ranks(4, |proc| {
            let comm = proc.world_comm();
            let r = proc.rank() as i64;
            comm.scan(&[r, 2 * r, 100], Op::Sum).unwrap()
        });
        for (r, out) in results.iter().enumerate() {
            let s: i64 = (0..=r as i64).sum();
            assert_eq!(out, &vec![s, 2 * s, 100 * (r as i64 + 1)]);
        }
    }
}

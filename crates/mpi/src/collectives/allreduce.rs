//! Recursive-doubling allreduce with MPICH's non-power-of-two fold-in.
//!
//! This is the *native* counterpart of the paper's user-level allreduce
//! (Listing 1.8 implements the same recursive doubling, but specialized to
//! `MPI_INT`/`MPI_SUM`/power-of-two ranks). The native path keeps the full
//! generality the paper credits for the performance difference in
//! Figure 13: datatype dispatch, op indirection, and the pre/post phases
//! that fold non-power-of-two rank counts onto the nearest power of two.

use mpfa_core::{AsyncPoll, Completer, Request, RequestError, Status};

use crate::comm::Comm;
use crate::datatype::{from_bytes, to_bytes};
use crate::error::MpiResult;
use crate::matching::RecvSlot;
use crate::op::{Op, Reducible};
use crate::sched::{check_stage, CollTask, StageCheck};

use super::future::{CollFuture, CollOutput};

const ROUND_PRE: u32 = 0;
const ROUND_POST: u32 = 254;
const ROUND_DOUBLE_BASE: u32 = 1;

enum ArState {
    Start,
    /// Extra even rank: data sent to the partner; awaiting send completion,
    /// then the final result (post phase).
    PreSendWait(Request),
    /// Extra even rank: waiting for the final result from the partner.
    FinalRecv(Request, RecvSlot),
    /// Odd partner rank: absorbing the extra rank's data.
    PreRecvWait(Request, RecvSlot),
    /// A recursive-doubling exchange in flight.
    Exchange {
        mask: usize,
        send: Request,
        recv: Request,
        slot: RecvSlot,
    },
    /// Post phase: returning the result to the folded-out even rank.
    PostSendWait(Request),
}

struct AllreduceTask<T: Reducible> {
    comm: Comm,
    seq: u64,
    op: Op,
    acc: Vec<T>,
    /// Rank within the power-of-two core (None for folded-out ranks).
    newrank: Option<usize>,
    pof2: usize,
    rem: usize,
    state: ArState,
    out: CollOutput<T>,
    completer: Option<Completer>,
}

impl<T: Reducible> AllreduceTask<T> {
    fn rank(&self) -> usize {
        self.comm.rank() as usize
    }

    /// Real rank of power-of-two-core rank `new`.
    fn real_of(&self, new: usize) -> i32 {
        if new < self.rem {
            (new * 2 + 1) as i32
        } else {
            (new + self.rem) as i32
        }
    }

    fn finish(&mut self) -> AsyncPoll {
        self.out.deposit(std::mem::take(&mut self.acc));
        if let Some(c) = self.completer.take() {
            c.complete(Status::empty());
        }
        AsyncPoll::Done
    }

    /// A stage request failed (peer death / revocation): fail the
    /// collective's request so waiters unblock with the error.
    fn abort(&mut self, err: RequestError) -> AsyncPoll {
        self.out.deposit(Vec::new());
        if let Some(c) = self.completer.take() {
            c.fail(err);
        }
        AsyncPoll::Done
    }

    /// Issue the next doubling round, or move to the post phase.
    fn next_round(&mut self, mask: usize) -> AsyncPoll {
        if mask >= self.pof2 {
            return self.post_phase();
        }
        let newrank = self.newrank.expect("only core ranks double");
        let partner_new = newrank ^ mask;
        let partner = self.real_of(partner_new);
        let tag = Comm::coll_tag(self.seq, ROUND_DOUBLE_BASE + mask.trailing_zeros());
        let send = self
            .comm
            .isend_on_ctx(self.comm.coll_ctx(), to_bytes(&self.acc), partner, tag);
        let (recv, slot) =
            self.comm
                .irecv_on_ctx(self.comm.coll_ctx(), self.acc.len() * T::SIZE, partner, tag);
        self.state = ArState::Exchange {
            mask,
            send,
            recv,
            slot,
        };
        AsyncPoll::Progress
    }

    /// After the doubling rounds: hand results back to folded-out ranks.
    fn post_phase(&mut self) -> AsyncPoll {
        let rank = self.rank();
        if rank < 2 * self.rem && rank % 2 == 1 {
            // We hold the result for our even partner too.
            let tag = Comm::coll_tag(self.seq, ROUND_POST);
            let req = self.comm.isend_on_ctx(
                self.comm.coll_ctx(),
                to_bytes(&self.acc),
                (rank - 1) as i32,
                tag,
            );
            self.state = ArState::PostSendWait(req);
            AsyncPoll::Progress
        } else {
            self.finish()
        }
    }
}

impl<T: Reducible> CollTask for AllreduceTask<T> {
    fn advance(&mut self) -> AsyncPoll {
        match &mut self.state {
            ArState::Start => {
                let rank = self.rank();
                if rank < 2 * self.rem {
                    let tag = Comm::coll_tag(self.seq, ROUND_PRE);
                    if rank.is_multiple_of(2) {
                        // Fold out: contribute data to the odd partner.
                        let req = self.comm.isend_on_ctx(
                            self.comm.coll_ctx(),
                            to_bytes(&self.acc),
                            (rank + 1) as i32,
                            tag,
                        );
                        self.state = ArState::PreSendWait(req);
                    } else {
                        let (req, slot) = self.comm.irecv_on_ctx(
                            self.comm.coll_ctx(),
                            self.acc.len() * T::SIZE,
                            (rank - 1) as i32,
                            tag,
                        );
                        self.state = ArState::PreRecvWait(req, slot);
                    }
                    AsyncPoll::Progress
                } else {
                    self.next_round(1)
                }
            }
            ArState::PreSendWait(req) => {
                match check_stage(&[req]) {
                    StageCheck::Wait => return AsyncPoll::Pending,
                    StageCheck::Failed(err) => return self.abort(err),
                    StageCheck::Ready => {}
                }
                // Wait for the final result from the partner.
                let tag = Comm::coll_tag(self.seq, ROUND_POST);
                let rank = self.rank();
                let (recv, slot) = self.comm.irecv_on_ctx(
                    self.comm.coll_ctx(),
                    self.acc.len() * T::SIZE,
                    (rank + 1) as i32,
                    tag,
                );
                self.state = ArState::FinalRecv(recv, slot);
                AsyncPoll::Progress
            }
            ArState::FinalRecv(req, slot) => {
                match check_stage(&[req]) {
                    StageCheck::Wait => return AsyncPoll::Pending,
                    StageCheck::Failed(err) => return self.abort(err),
                    StageCheck::Ready => {}
                }
                self.acc = from_bytes(&slot.take());
                self.finish()
            }
            ArState::PreRecvWait(req, slot) => {
                match check_stage(&[req]) {
                    StageCheck::Wait => return AsyncPoll::Pending,
                    StageCheck::Failed(err) => return self.abort(err),
                    StageCheck::Ready => {}
                }
                let contribution: Vec<T> = from_bytes(&slot.take());
                self.op
                    .apply(&mut self.acc, &contribution)
                    .expect("op validated at initiation");
                self.next_round(1)
            }
            ArState::Exchange {
                mask,
                send,
                recv,
                slot,
            } => {
                match check_stage(&[send, recv]) {
                    StageCheck::Wait => return AsyncPoll::Pending,
                    StageCheck::Failed(err) => return self.abort(err),
                    StageCheck::Ready => {}
                }
                let m = *mask;
                let contribution: Vec<T> = from_bytes(&slot.take());
                self.op
                    .apply(&mut self.acc, &contribution)
                    .expect("op validated at initiation");
                self.next_round(m << 1)
            }
            ArState::PostSendWait(req) => {
                match check_stage(&[req]) {
                    StageCheck::Wait => return AsyncPoll::Pending,
                    StageCheck::Failed(err) => return self.abort(err),
                    StageCheck::Ready => {}
                }
                self.finish()
            }
        }
    }
}

impl Comm {
    /// Nonblocking allreduce (`MPI_Iallreduce`) — the full general path:
    /// any [`Reducible`] type, any built-in op, any rank count.
    pub fn iallreduce<T: Reducible>(&self, data: &[T], op: Op) -> MpiResult<CollFuture<T>> {
        op.apply::<T>(&mut [], &[])?;
        if let Some(err) = self.coll_fault() {
            // Revoked (or all-peers-dead) comm: a born-failed future,
            // so callers see the error without touching the schedule.
            let (fut, out) = CollFuture::<T>::pair(Request::failed(self.stream(), err));
            out.deposit(Vec::new());
            return Ok(fut);
        }
        let size = self.size();
        let pof2 = if size == 0 {
            1
        } else {
            1usize << (usize::BITS - 1 - size.leading_zeros())
        };
        let rem = size - pof2;
        let rank = self.rank() as usize;
        let newrank = if rank < 2 * rem {
            if rank.is_multiple_of(2) {
                None
            } else {
                Some(rank / 2)
            }
        } else {
            Some(rank - rem)
        };

        let seq = self.next_coll_seq();
        let (req, completer) = Request::pair(self.stream());
        let (fut, out) = CollFuture::<T>::pair(req);
        let task = AllreduceTask {
            comm: self.clone(),
            seq,
            op,
            acc: data.to_vec(),
            newrank,
            pof2,
            rem,
            state: ArState::Start,
            out,
            completer: Some(completer),
        };
        self.bundle().sched.submit(Box::new(task));
        Ok(fut)
    }

    /// Blocking allreduce (`MPI_Allreduce`): the reduction of `data`
    /// across all ranks, on every rank. With resilience enabled, a peer
    /// failure or revocation surfaces as `Err` rather than a hang.
    pub fn allreduce<T: Reducible>(&self, data: &[T], op: Op) -> MpiResult<Vec<T>> {
        Ok(self.iallreduce(data, op)?.wait_result()?.0)
    }
}

#[cfg(test)]
mod tests {
    use super::super::testutil::run_ranks;
    use super::*;

    #[test]
    fn allreduce_sum_pof2() {
        for n in [1, 2, 4, 8] {
            let results = run_ranks(n, |proc| {
                let comm = proc.world_comm();
                comm.allreduce(&[proc.rank() as i32 + 1, 100], Op::Sum)
                    .unwrap()
            });
            let total: i32 = (1..=n as i32).sum();
            for (r, out) in results.iter().enumerate() {
                assert_eq!(out, &vec![total, 100 * n as i32], "rank {r} of {n}");
            }
        }
    }

    #[test]
    fn allreduce_sum_non_pof2() {
        for n in [3, 5, 6, 7, 12] {
            let results = run_ranks(n, |proc| {
                let comm = proc.world_comm();
                comm.allreduce(&[proc.rank() as i64], Op::Sum).unwrap()
            });
            let total: i64 = (0..n as i64).sum();
            for out in results {
                assert_eq!(out, vec![total], "n={n}");
            }
        }
    }

    #[test]
    fn allreduce_min_max() {
        let results = run_ranks(5, |proc| {
            let comm = proc.world_comm();
            let x = [((proc.rank() as i32) * 13) % 7];
            let mx = comm.allreduce(&x, Op::Max).unwrap();
            let mn = comm.allreduce(&x, Op::Min).unwrap();
            (mx[0], mn[0])
        });
        let values: Vec<i32> = (0..5).map(|r| (r * 13) % 7).collect();
        for (mx, mn) in results {
            assert_eq!(mx, *values.iter().max().unwrap());
            assert_eq!(mn, *values.iter().min().unwrap());
        }
    }

    #[test]
    fn allreduce_float_sum() {
        let results = run_ranks(4, |proc| {
            let comm = proc.world_comm();
            comm.allreduce(&[0.5f64 * (proc.rank() as f64 + 1.0)], Op::Sum)
                .unwrap()
        });
        for out in results {
            assert!((out[0] - 5.0).abs() < 1e-12);
        }
    }

    #[test]
    fn nonblocking_allreduce_overlap() {
        let results = run_ranks(4, |proc| {
            let comm = proc.world_comm();
            let fut = comm.iallreduce(&[1i32], Op::Sum).unwrap();
            assert!(fut.request().stream().is_some());
            let (v, _) = fut.wait();
            v[0]
        });
        for v in results {
            assert_eq!(v, 4);
        }
    }

    #[test]
    fn vector_payloads() {
        let results = run_ranks(3, |proc| {
            let comm = proc.world_comm();
            let data: Vec<i32> = (0..100).map(|i| i + proc.rank() as i32).collect();
            comm.allreduce(&data, Op::Sum).unwrap()
        });
        for out in &results {
            for (i, v) in out.iter().enumerate() {
                assert_eq!(*v, 3 * i as i32 + 3);
            }
        }
    }

    #[test]
    fn back_to_back_allreduces() {
        let results = run_ranks(6, |proc| {
            let comm = proc.world_comm();
            (0..10)
                .map(|round| {
                    comm.allreduce(&[round + proc.rank() as i32], Op::Sum)
                        .unwrap()[0]
                })
                .collect::<Vec<i32>>()
        });
        let expect: Vec<i32> = (0..10).map(|round| 6 * round + 15).collect();
        for out in results {
            assert_eq!(out, expect);
        }
    }
}

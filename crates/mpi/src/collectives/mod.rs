//! Native collectives, implemented as multi-stage schedules advanced by the
//! `Collective_sched_progress` hook (the paper's Listing 1.1, entry 2).
//!
//! Every algorithm is a [`crate::sched::CollTask`] state machine that
//! checks its outstanding requests with the side-effect-free
//! `Request::is_complete` and, when a stage completes, issues the next
//! stage's operations — a task with multiple wait blocks (paper
//! Figure 2(c)). Nonblocking entry points return a [`CollFuture`]; blocking
//! ones wait on it, driving the communicator's stream.
//!
//! The *native* paths keep their full generality on purpose — datatype
//! dispatch, op indirection, non-power-of-two handling, count checks —
//! because that generality is exactly what the paper's Figure 13 measures
//! the user-level specialized allreduce against.
//!
//! Algorithms:
//!
//! | operation | algorithm |
//! |---|---|
//! | barrier | dissemination |
//! | bcast | binomial tree |
//! | reduce | binomial tree (commutative) |
//! | allreduce | recursive doubling with non-pof2 fold-in (MPICH-style); ring (reduce-scatter + allgather) for large payloads via `iallreduce_auto` |
//! | allgather | ring |
//! | gather / scatter | linear |
//! | alltoall | linear (pairwise irecv/isend) |
//! | reduce_scatter_block | pairwise exchange + incremental local fold |
//! | scan / exscan | distance doubling (commutative ops) |
//! | hierarchical allreduce / bcast / barrier | intra-node leg + leader leg via [`HierComm`] (`Comm::hier_split`) |

mod allgather;
mod allreduce;
mod alltoall;
mod barrier;
mod bcast;
mod bcast_sag;
mod future;
mod gather;
mod hier;
mod reduce;
mod reduce_scatter;
mod ring_allreduce;
mod scan;
mod scatter;
mod vcolls;

pub use future::CollFuture;
pub use hier::{node_size_from_env, HierComm, ENV_NODE_SIZE};

use crate::comm::Comm;

impl Comm {
    /// Internal: tag for round `round` of the collective with sequence
    /// number `seq` (collectives run on the dedicated collective context,
    /// so these tags never collide with user tags).
    pub(crate) fn coll_tag(seq: u64, round: u32) -> i32 {
        ((seq as i32) << 8) | (round as i32 & 0xff)
    }

    /// Internal: next collective sequence number. Collective calls must be
    /// made by all ranks in the same order (MPI semantics), so per-rank
    /// counters agree.
    pub(crate) fn next_coll_seq(&self) -> u64 {
        self.coll_seq
            .fetch_add(1, std::sync::atomic::Ordering::AcqRel)
    }
}

#[cfg(test)]
pub(crate) mod testutil {
    use crate::proc::Proc;
    use crate::world::{World, WorldConfig};

    /// Run `f(proc)` on one thread per rank and return the outputs in rank
    /// order. The standard harness for collective tests.
    pub fn run_ranks<R: Send>(n: usize, f: impl Fn(Proc) -> R + Send + Sync) -> Vec<R> {
        run_ranks_cfg(WorldConfig::instant(n), f)
    }

    /// `run_ranks` with an explicit world configuration.
    pub fn run_ranks_cfg<R: Send>(cfg: WorldConfig, f: impl Fn(Proc) -> R + Send + Sync) -> Vec<R> {
        let procs = World::init(cfg);
        let f = &f;
        std::thread::scope(|s| {
            let handles: Vec<_> = procs.into_iter().map(|p| s.spawn(move || f(p))).collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("rank thread panicked"))
                .collect()
        })
    }
}

//! Typed data on the wire: the fixed-size element types the runtime can
//! transfer, plus non-contiguous layouts served by the datatype engine.
//!
//! The runtime moves raw bytes; [`MpiType`] defines the safe
//! bytes↔elements conversions (native endianness — all ranks share the
//! process). [`Layout`] describes non-contiguous data (the `MPI_Type_vector`
//! family); packing/unpacking a non-contiguous layout is an *asynchronous*
//! job executed in segments by the datatype engine hook
//! ([`crate::dtengine`]), mirroring MPICH's async pack/unpack subsystem.

/// A fixed-size element type the runtime can send and receive.
///
/// Implementations must be plain values: `SIZE` bytes round-trip exactly
/// through [`MpiType::write_to`] / [`MpiType::read_from`].
pub trait MpiType: Copy + Send + Sync + PartialEq + std::fmt::Debug + 'static {
    /// Serialized size in bytes.
    const SIZE: usize;
    /// Human-readable type name (used in diagnostics and dispatch).
    const NAME: &'static str;
    /// Write this value's bytes into `out` (exactly `SIZE` bytes).
    fn write_to(&self, out: &mut [u8]);
    /// Read one value from `from` (exactly `SIZE` bytes).
    fn read_from(from: &[u8]) -> Self;
}

macro_rules! impl_mpi_type {
    ($($t:ty => $name:literal),* $(,)?) => {
        $(
            impl MpiType for $t {
                const SIZE: usize = std::mem::size_of::<$t>();
                const NAME: &'static str = $name;
                #[inline]
                fn write_to(&self, out: &mut [u8]) {
                    out[..Self::SIZE].copy_from_slice(&self.to_ne_bytes());
                }
                #[inline]
                fn read_from(from: &[u8]) -> Self {
                    let mut buf = [0u8; std::mem::size_of::<$t>()];
                    buf.copy_from_slice(&from[..Self::SIZE]);
                    <$t>::from_ne_bytes(buf)
                }
            }
        )*
    };
}

impl_mpi_type! {
    u8 => "u8", i8 => "i8",
    u16 => "u16", i16 => "i16",
    u32 => "u32", i32 => "i32",
    u64 => "u64", i64 => "i64",
    f32 => "f32", f64 => "f64",
    usize => "usize", isize => "isize",
}

/// Serialize a typed slice to bytes.
pub fn to_bytes<T: MpiType>(data: &[T]) -> Vec<u8> {
    let mut out = vec![0u8; data.len() * T::SIZE];
    for (i, v) in data.iter().enumerate() {
        v.write_to(&mut out[i * T::SIZE..(i + 1) * T::SIZE]);
    }
    out
}

/// Deserialize bytes into a typed vector. Panics if `bytes` is not a
/// multiple of the element size.
pub fn from_bytes<T: MpiType>(bytes: &[u8]) -> Vec<T> {
    assert!(
        bytes.len().is_multiple_of(T::SIZE),
        "byte length {} not a multiple of {} ({})",
        bytes.len(),
        T::SIZE,
        T::NAME
    );
    bytes.chunks_exact(T::SIZE).map(T::read_from).collect()
}

/// Deserialize bytes into an existing typed slice (exact fit required).
pub fn read_into<T: MpiType>(bytes: &[u8], out: &mut [T]) {
    assert_eq!(
        bytes.len(),
        out.len() * T::SIZE,
        "size mismatch in read_into"
    );
    for (i, slot) in out.iter_mut().enumerate() {
        *slot = T::read_from(&bytes[i * T::SIZE..(i + 1) * T::SIZE]);
    }
}

/// A data layout over a typed buffer — the derived-datatype subset the
/// runtime understands.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Layout {
    /// `count` consecutive elements.
    Contiguous {
        /// Number of elements.
        count: usize,
    },
    /// `count` blocks of `blocklen` elements, block `i` starting at element
    /// `i * stride` — `MPI_Type_vector(count, blocklen, stride)`.
    Vector {
        /// Number of blocks.
        count: usize,
        /// Elements per block.
        blocklen: usize,
        /// Elements between block starts (must be >= `blocklen`).
        stride: usize,
    },
}

impl Layout {
    /// Number of elements the layout selects.
    pub fn element_count(&self) -> usize {
        match *self {
            Layout::Contiguous { count } => count,
            Layout::Vector {
                count, blocklen, ..
            } => count * blocklen,
        }
    }

    /// Minimum length of the underlying buffer (in elements) this layout
    /// touches.
    pub fn extent(&self) -> usize {
        match *self {
            Layout::Contiguous { count } => count,
            Layout::Vector {
                count,
                blocklen,
                stride,
            } => {
                if count == 0 {
                    0
                } else {
                    (count - 1) * stride + blocklen
                }
            }
        }
    }

    /// Validate the layout against a buffer length; panics on misuse.
    pub fn check(&self, buffer_len: usize) {
        if let Layout::Vector {
            blocklen, stride, ..
        } = *self
        {
            assert!(
                stride >= blocklen,
                "vector stride {stride} < blocklen {blocklen}"
            );
        }
        assert!(
            self.extent() <= buffer_len,
            "layout extent {} exceeds buffer of {} elements",
            self.extent(),
            buffer_len
        );
    }

    /// Pack the selected elements of `data` into a dense vector.
    /// (The synchronous reference implementation; the datatype engine does
    /// the same work incrementally.)
    pub fn pack<T: MpiType>(&self, data: &[T]) -> Vec<T> {
        self.check(data.len());
        match *self {
            Layout::Contiguous { count } => data[..count].to_vec(),
            Layout::Vector {
                count,
                blocklen,
                stride,
            } => {
                let mut out = Vec::with_capacity(count * blocklen);
                for b in 0..count {
                    let start = b * stride;
                    out.extend_from_slice(&data[start..start + blocklen]);
                }
                out
            }
        }
    }

    /// Unpack a dense vector into the selected elements of `data`.
    pub fn unpack<T: MpiType>(&self, packed: &[T], data: &mut [T]) {
        self.check(data.len());
        assert_eq!(packed.len(), self.element_count(), "packed length mismatch");
        match *self {
            Layout::Contiguous { count } => data[..count].copy_from_slice(packed),
            Layout::Vector {
                count,
                blocklen,
                stride,
            } => {
                for b in 0..count {
                    let start = b * stride;
                    data[start..start + blocklen]
                        .copy_from_slice(&packed[b * blocklen..(b + 1) * blocklen]);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_scalars() {
        fn rt<T: MpiType>(v: T) {
            let mut buf = vec![0u8; T::SIZE];
            v.write_to(&mut buf);
            assert_eq!(T::read_from(&buf), v);
        }
        rt(42i32);
        rt(-7i64);
        rt(3.25f64);
        rt(1.5f32);
        rt(255u8);
        rt(65535u16);
        rt(usize::MAX);
    }

    #[test]
    fn roundtrip_slices() {
        let data: Vec<i32> = (-50..50).collect();
        let bytes = to_bytes(&data);
        assert_eq!(bytes.len(), 100 * 4);
        let back: Vec<i32> = from_bytes(&bytes);
        assert_eq!(back, data);
    }

    #[test]
    fn read_into_slice() {
        let data = [1.0f64, 2.0, 3.0];
        let bytes = to_bytes(&data);
        let mut out = [0.0f64; 3];
        read_into(&bytes, &mut out);
        assert_eq!(out, data);
    }

    #[test]
    #[should_panic(expected = "not a multiple")]
    fn from_bytes_rejects_ragged() {
        let _: Vec<i32> = from_bytes(&[1, 2, 3]);
    }

    #[test]
    fn contiguous_layout() {
        let l = Layout::Contiguous { count: 4 };
        assert_eq!(l.element_count(), 4);
        assert_eq!(l.extent(), 4);
        let data = [1, 2, 3, 4, 5];
        assert_eq!(l.pack(&data), vec![1, 2, 3, 4]);
    }

    #[test]
    fn vector_layout_pack_unpack() {
        // 3 blocks of 2 out of stride 4: indices 0,1, 4,5, 8,9
        let l = Layout::Vector {
            count: 3,
            blocklen: 2,
            stride: 4,
        };
        assert_eq!(l.element_count(), 6);
        assert_eq!(l.extent(), 10);
        let data: Vec<i32> = (0..10).collect();
        let packed = l.pack(&data);
        assert_eq!(packed, vec![0, 1, 4, 5, 8, 9]);

        let mut out = vec![0i32; 10];
        l.unpack(&packed, &mut out);
        assert_eq!(out, vec![0, 1, 0, 0, 4, 5, 0, 0, 8, 9]);
    }

    #[test]
    fn empty_vector_layout() {
        let l = Layout::Vector {
            count: 0,
            blocklen: 3,
            stride: 5,
        };
        assert_eq!(l.extent(), 0);
        assert_eq!(l.pack(&[0i32; 0]), Vec::<i32>::new());
    }

    #[test]
    #[should_panic(expected = "stride")]
    fn overlapping_vector_rejected() {
        let l = Layout::Vector {
            count: 2,
            blocklen: 4,
            stride: 2,
        };
        l.check(100);
    }

    #[test]
    #[should_panic(expected = "extent")]
    fn oversized_layout_rejected() {
        let l = Layout::Contiguous { count: 10 };
        l.check(5);
    }
}

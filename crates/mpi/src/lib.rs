//! # mpfa-mpi — an MPI-like message-passing runtime on explicit progress
//!
//! This crate is the substrate the paper's extensions live in: a
//! from-scratch message-passing runtime whose *entire* internal progression
//! is expressed as [`mpfa_core`] progress hooks, exactly like MPICH's
//! collated progress function (the paper's Listing 1.1):
//!
//! 1. **datatype engine** — asynchronous pack/unpack of non-contiguous
//!    datatypes ([`dtengine`]),
//! 2. **collective schedules** — multi-stage collective algorithms
//!    ([`collectives`], [`sched`]),
//! 3. **shmem** — intra-node packet processing ([`subsys`]),
//! 4. **netmod** — inter-node packet processing, rendezvous/pipeline
//!    protocol state machines, TX completions ([`subsys`], [`protocol`]).
//!
//! ## Shape of the runtime
//!
//! A [`World`] owns a simulated fabric ([`mpfa_fabric`]) and hands out one
//! [`Proc`] per rank; each rank runs on its own OS thread (modeling what
//! would be separate processes). A [`Comm`] is a per-rank communicator
//! handle supporting typed point-to-point operations in the paper's three
//! message modes (buffered/lightweight eager, eager with TX wait,
//! rendezvous with RTS/CTS — plus chunked pipeline), and a set of
//! native collectives implemented as schedules.
//!
//! ## Streams and VCIs
//!
//! Each rank has a *default stream* whose hooks serve virtual communication
//! interface (VCI) 0. Binding a communicator to a user stream
//! ([`Comm::with_stream`], ≙ `MPIX_Stream_comm_create`) allocates a
//! dedicated VCI whose hooks are registered on that stream, so traffic on
//! different stream communicators contends on nothing — MPICH's
//! stream-to-VCI mapping from the paper's Section 3.1.

#![warn(missing_docs)]

pub mod async_api;
pub mod cart;
pub mod collectives;
pub mod comm;
pub mod datatype;
pub mod dtengine;
pub mod error;
pub mod matching;
pub mod op;
pub mod persist;
pub mod proc;
pub mod protocol;
pub mod recv;
pub mod reserved;
pub mod resilience;
pub mod sched;
pub mod subsys;
pub mod vci;
pub mod vector_ops;
pub mod wire;
pub mod world;

pub use cart::{dims_create, CartComm};
pub use collectives::CollFuture;
pub use comm::{Comm, ANY_SOURCE, ANY_TAG};
pub use datatype::{Layout, MpiType};
pub use error::{MpiError, MpiResult};
pub use op::Op;
pub use persist::{
    PartitionedRecv, PartitionedSend, PersistentAllreduce, PersistentRecv, PersistentRecvBytes,
    PersistentSend, PersistentSendBytes,
};
pub use proc::Proc;
pub use recv::{RecvBytesRequest, RecvRequest};
pub use reserved::{CtrlPort, ReservedCtx};
pub use resilience::Resilience;
// Re-export so callers of [`Proc::enable_resilience`] need not depend on
// `mpfa-resil` directly.
pub use mpfa_resil::DetectorConfig;
pub use vector_ops::VectorRecv;
pub use world::{Launch, World, WorldConfig};

pub use mpfa_transport::{MpfaBytes, TransportKind};

//! Persistent & partitioned operations (`MPI_Send_init` / `MPI_Recv_init`
//! / `MPI_Start`, `MPI_Psend_init` / `MPI_Precv_init` / `MPI_Pready`) with
//! **pre-matched re-fire descriptors**.
//!
//! The paper's stream/VCI progress model shines on repeated transfers,
//! but a one-shot send pays validation, routing, and tag matching every
//! time. A persistent handle pays them **once**, at init:
//!
//! 1. **Validation** — ranks and tags are checked at `*_init`.
//! 2. **Routing** — the destination wire endpoint (rank × VCI) is
//!    resolved at init and cached in the descriptor.
//! 3. **Matching** — `recv_init` pins a *matching-bucket slot*: a compact
//!    slot id announced to the sender in a one-time
//!    [`crate::wire::WireMsg::PersistBind`] handshake. Every re-fire is
//!    then slot-addressed ([`crate::wire::WireMsg::Refire`] /
//!    [`crate::wire::WireMsg::RefireRts`]) and **never enters the tag
//!    matcher** — the `match_bucket_hits` / `match_wildcard_hits`
//!    counters stay flat across a million re-fires.
//!
//! The first `start` on a send returns a request that stays pending
//! until the peer's bind arrives (an async task on the stream resolves
//! the handshake and fires — never a blocking spin, so it composes
//! with the DST scheduler); every later `start` is a pure slot fire.
//! If the slot is invalidated — the communicator was revoked or the
//! peer died — `start` falls back to the one-shot path, whose ULFM
//! choke points produce a properly born-failed request.
//!
//! **Pairing contract** (a deliberate deviation from MPI, where
//! `MPI_Start` is local): a persistent *send* must be matched by a
//! persistent *receive* with a concrete `(src, tag)` on the peer —
//! the slot protocol needs the receiver's bind, and the first round
//! stays pending until it lands. Pair an ordinary receive with `isend`, not a
//! persistent send. The converse is relaxed: `recv_init` with
//! wildcard `ANY_SOURCE`/`ANY_TAG` cannot pin a slot, so it consults
//! the matcher every round and pairs with ordinary tagged sends.
//!
//! Partitioned operations ([`PartitionedSend`] / [`PartitionedRecv`])
//! split one round's buffer into partitions that compute threads mark
//! ready ([`PartitionedSend::pready`]) while a single stream progresses
//! the wire; ready partitions ride the existing chunked pipeline as
//! zero-copy slices of the round's payload view.

use std::sync::{Arc, Mutex};

use mpfa_core::{AsyncPoll, Request, Status};
use mpfa_transport::MpfaBytes;

use crate::collectives::CollFuture;
use crate::comm::{Comm, ANY_SOURCE, ANY_TAG};
use crate::datatype::{to_bytes, MpiType};
use crate::error::{MpiError, MpiResult};
use crate::matching::RecvSlot;
use crate::op::{Op, Reducible};
use crate::recv::{RecvBytesRequest, RecvRequest};
use crate::vci::{BindState, PartFlags, PersistKey};

// -------------------------------------------------------------------
// Descriptor cores (shared by typed / bytes / partitioned wrappers)
// -------------------------------------------------------------------

/// Sender-side descriptor core: validated route + claimed binding.
struct SendCore {
    comm: Comm,
    dst: i32,
    tag: i32,
    /// Destination wire endpoint, resolved once at init.
    dst_ep: usize,
    key: PersistKey,
    /// Re-fire generation counter (diagnostics on the wire).
    gen: u64,
}

impl SendCore {
    fn init(comm: &Comm, dst: i32, tag: i32) -> MpiResult<SendCore> {
        comm.world_rank(dst)?;
        if tag < 0 {
            return Err(MpiError::InvalidTag(tag));
        }
        let key = PersistKey {
            ctx: comm.ptp_ctx(),
            src_rank: comm.rank(),
            tag,
        };
        let dst_ep = comm.ep_of(dst);
        if !comm.bundle().vci.persist_send_init(key, dst_ep) {
            return Err(MpiError::Protocol(format!(
                "send_init: a persistent send for (dst {dst}, tag {tag}) \
                 already exists on this communicator"
            )));
        }
        Ok(SendCore {
            comm: comm.clone(),
            dst,
            tag,
            dst_ep,
            key,
            gen: 0,
        })
    }

    /// Non-blocking route decision for one round.
    fn route(&self) -> Route {
        // A visible fault always diverts to the fallback, whatever the
        // binding says — the round must be born with the right error.
        if self.comm.fault_for(Some(self.dst)).is_some() {
            return Route::Fallback;
        }
        match self.comm.bundle().vci.persist_binding(&self.key) {
            BindState::Bound(slot) => Route::Slot(slot),
            BindState::Revoked => Route::Fallback,
            BindState::Unbound => Route::AwaitBind,
        }
    }

    /// The one-shot fallback through the ULFM choke point.
    fn fallback(&self, bytes: MpfaBytes) -> Request {
        self.comm
            .isend_on_ctx(self.comm.ptp_ctx(), bytes, self.dst, self.tag)
    }

    /// Fire one round: slot-addressed fast path, a deferred first-round
    /// fire awaiting the peer's bind, or the one-shot fallback.
    fn fire(&mut self, bytes: MpfaBytes) -> Request {
        match self.route() {
            Route::Slot(slot) => {
                let gen = self.gen;
                self.gen += 1;
                self.comm
                    .bundle()
                    .vci
                    .persist_fire(self.dst_ep, slot, gen, bytes)
            }
            Route::AwaitBind => {
                let gen = self.gen;
                self.gen += 1;
                self.deferred_fire(gen, bytes)
            }
            Route::Fallback => self.fallback(bytes),
        }
    }

    /// First-round fire with the bind still in flight: an async task on
    /// the stream polls the binding and fires the moment it lands (or
    /// takes the fallback under a fault/revoke), then forwards the
    /// inner request's outcome. Returns immediately — the handshake
    /// wait rides the stream's progress, never a caller-side spin.
    fn deferred_fire(&self, gen: u64, bytes: MpfaBytes) -> Request {
        let (req, completer) = Request::pair(self.comm.stream());
        let comm = self.comm.clone();
        let (key, dst, dst_ep, tag) = (self.key, self.dst, self.dst_ep, self.tag);
        let mut payload = Some(bytes);
        let mut completer = Some(completer);
        let mut inner: Option<Request> = None;
        let stream = self.comm.stream().clone();
        stream.async_start(move |_t| {
            if inner.is_none() {
                let fault = comm.fault_for(Some(dst)).is_some();
                inner = match comm.bundle().vci.persist_binding(&key) {
                    BindState::Bound(slot) if !fault => Some(comm.bundle().vci.persist_fire(
                        dst_ep,
                        slot,
                        gen,
                        payload.take().expect("single fire"),
                    )),
                    BindState::Unbound if !fault => return AsyncPoll::Pending,
                    // Revoked, or anything under a visible fault: the
                    // fallback births the right error.
                    _ => Some(comm.isend_on_ctx(
                        comm.ptp_ctx(),
                        payload.take().expect("single fire"),
                        dst,
                        tag,
                    )),
                };
            }
            let r = inner.as_ref().expect("resolved above");
            if !r.is_complete() {
                return AsyncPoll::Pending;
            }
            let c = completer.take().expect("completed once");
            match r.error() {
                Some(e) => c.fail(e),
                None => c.complete(r.status().unwrap_or_else(Status::empty)),
            }
            AsyncPoll::Done
        });
        req
    }
}

/// One round's routing verdict (see [`SendCore::route`]).
enum Route {
    /// Bound and healthy: the slot-addressed fast path.
    Slot(u64),
    /// First round, bind still in flight: defer the fire to the stream.
    AwaitBind,
    /// Revoked or faulted: the one-shot path, born with the right error.
    Fallback,
}

impl Drop for SendCore {
    fn drop(&mut self) {
        self.comm.bundle().vci.persist_free_binding(&self.key);
    }
}

/// Receiver-side descriptor core: validated pattern + pinned slot
/// (`None` for wildcard patterns, which cannot be slot-addressed and
/// take the tagged path every round).
struct RecvCore {
    comm: Comm,
    capacity: usize,
    src: i32,
    tag: i32,
    slot: Option<u64>,
}

impl RecvCore {
    fn init(comm: &Comm, capacity: usize, src: i32, tag: i32) -> MpiResult<RecvCore> {
        if src != ANY_SOURCE {
            comm.world_rank(src)?;
        }
        if tag < 0 && tag != ANY_TAG {
            return Err(MpiError::InvalidTag(tag));
        }
        let slot = if src == ANY_SOURCE || tag == ANY_TAG {
            // Wildcards must consult the matcher; no slot pinning.
            None
        } else {
            let key = PersistKey {
                ctx: comm.ptp_ctx(),
                src_rank: src,
                tag,
            };
            match comm
                .bundle()
                .vci
                .persist_recv_init(key, capacity, comm.ep_of(src))
            {
                Some(id) => Some(id),
                None => {
                    return Err(MpiError::Protocol(format!(
                        "recv_init: a persistent receive for (src {src}, tag {tag}) \
                         already exists on this communicator"
                    )))
                }
            }
        };
        Ok(RecvCore {
            comm: comm.clone(),
            capacity,
            src,
            tag,
            slot,
        })
    }

    /// Arm one round: pre-matched slot when pinned and healthy,
    /// otherwise the one-shot tagged path (born-failed under a fault).
    fn arm(&self) -> (Request, RecvSlot) {
        if let Some(slot_id) = self.slot {
            let known_src = (self.src != ANY_SOURCE).then_some(self.src);
            if self.comm.fault_for(known_src).is_none() {
                if let Some(pair) = self.comm.bundle().vci.persist_arm(slot_id) {
                    return pair;
                }
            }
        }
        self.comm
            .irecv_on_ctx(self.comm.ptp_ctx(), self.capacity, self.src, self.tag)
    }
}

impl Drop for RecvCore {
    fn drop(&mut self) {
        if let Some(slot_id) = self.slot {
            self.comm.bundle().vci.persist_free_slot(slot_id);
        }
    }
}

fn active_round_err(what: &str) -> MpiError {
    MpiError::Protocol(format!(
        "MPI_Start on a persistent {what} with an active round"
    ))
}

// -------------------------------------------------------------------
// Persistent point-to-point (typed)
// -------------------------------------------------------------------

/// A persistent send: captured buffer + pre-resolved route, re-startable.
pub struct PersistentSend<T: MpiType> {
    core: SendCore,
    data: Vec<T>,
    active: Option<Request>,
}

impl<T: MpiType> PersistentSend<T> {
    /// The send buffer; mutate it between rounds (erroneous while a round
    /// is active, like touching an MPI send buffer mid-flight — here it
    /// is merely stale data, since starts snapshot the buffer).
    pub fn buffer_mut(&mut self) -> &mut Vec<T> {
        &mut self.data
    }

    /// The send buffer (read access).
    pub fn buffer(&self) -> &[T] {
        &self.data
    }

    /// `MPI_Start`: issue one round down the slot-addressed fast path.
    /// Errors if the previous round has not completed (MPI calls this
    /// erroneous).
    pub fn start(&mut self) -> MpiResult<Request> {
        if let Some(prev) = &self.active {
            if !prev.is_complete() {
                return Err(active_round_err("send"));
            }
        }
        let req = self.core.fire(to_bytes(&self.data).into());
        self.active = Some(req.clone());
        Ok(req)
    }

    /// The in-flight round's request, if any.
    pub fn active(&self) -> Option<&Request> {
        self.active.as_ref()
    }
}

/// A persistent receive: pinned matching slot + capacity, re-startable.
pub struct PersistentRecv<T: MpiType> {
    core: RecvCore,
    active: Option<RecvRequest<T>>,
}

impl<T: MpiType> PersistentRecv<T> {
    /// `MPI_Start`: arm one receive round. Errors if the previous round
    /// is still active.
    pub fn start(&mut self) -> MpiResult<()> {
        if let Some(prev) = &self.active {
            if !prev.is_complete() {
                return Err(active_round_err("recv"));
            }
        }
        let (req, slot) = self.core.arm();
        self.active = Some(RecvRequest::new(req, slot));
        Ok(())
    }

    /// True if the current round (if any) has completed.
    pub fn is_complete(&self) -> bool {
        self.active
            .as_ref()
            .map(RecvRequest::is_complete)
            .unwrap_or(false)
    }

    /// The current round's request, if a round is active — each re-fire
    /// generation is a fresh request, so continuations and futures
    /// attach per generation.
    pub fn request(&self) -> Option<Request> {
        self.active.as_ref().map(RecvRequest::request)
    }

    /// Wait for the current round and take its payload. Errors if no
    /// round was started.
    pub fn wait(&mut self) -> MpiResult<(Vec<T>, Status)> {
        match self.active.take() {
            Some(recv) => Ok(recv.wait()),
            None => Err(MpiError::Protocol(
                "wait on an unstarted persistent recv".into(),
            )),
        }
    }
}

// -------------------------------------------------------------------
// Persistent point-to-point (raw bytes, zero-copy)
// -------------------------------------------------------------------

/// A persistent raw-bytes send: the payload view is captured by
/// refcount and re-fired without copying — the minimal-overhead path
/// for repeated-transfer benchmarks.
pub struct PersistentSendBytes {
    core: SendCore,
    data: MpfaBytes,
    active: Option<Request>,
}

impl PersistentSendBytes {
    /// Replace the payload fired by subsequent rounds.
    pub fn set_payload(&mut self, data: impl Into<MpfaBytes>) {
        self.data = data.into();
    }

    /// The payload view.
    pub fn payload(&self) -> &MpfaBytes {
        &self.data
    }

    /// `MPI_Start`: fire one round.
    pub fn start(&mut self) -> MpiResult<Request> {
        if let Some(prev) = &self.active {
            if !prev.is_complete() {
                return Err(active_round_err("send"));
            }
        }
        let req = self.core.fire(self.data.clone());
        self.active = Some(req.clone());
        Ok(req)
    }

    /// True if the current round (if any) has completed.
    pub fn is_complete(&self) -> bool {
        self.active
            .as_ref()
            .map(Request::is_complete)
            .unwrap_or(false)
    }

    /// The in-flight round's request, if any.
    pub fn active(&self) -> Option<&Request> {
        self.active.as_ref()
    }
}

/// A persistent raw-bytes receive; each round's payload comes out as a
/// refcounted view.
pub struct PersistentRecvBytes {
    core: RecvCore,
    active: Option<RecvBytesRequest>,
}

impl PersistentRecvBytes {
    /// `MPI_Start`: arm one receive round.
    pub fn start(&mut self) -> MpiResult<()> {
        if let Some(prev) = &self.active {
            if !prev.is_complete() {
                return Err(active_round_err("recv"));
            }
        }
        let (req, slot) = self.core.arm();
        self.active = Some(RecvBytesRequest::new(req, slot));
        Ok(())
    }

    /// True if the current round (if any) has completed.
    pub fn is_complete(&self) -> bool {
        self.active
            .as_ref()
            .map(RecvBytesRequest::is_complete)
            .unwrap_or(false)
    }

    /// The current round's request, if a round is active.
    pub fn request(&self) -> Option<Request> {
        self.active.as_ref().map(RecvBytesRequest::request)
    }

    /// Wait for the current round and take its payload view.
    pub fn wait(&mut self) -> MpiResult<(MpfaBytes, Status)> {
        match self.active.take() {
            Some(recv) => Ok(recv.wait()),
            None => Err(MpiError::Protocol(
                "wait on an unstarted persistent recv".into(),
            )),
        }
    }
}

// -------------------------------------------------------------------
// Partitioned operations
// -------------------------------------------------------------------

/// A partitioned send (`MPI_Psend_init`): one round's buffer split into
/// partitions that compute threads mark ready while the progress
/// stream feeds the wire. The payload is an [`MpfaBytes`] view;
/// partition chunks are slices of it — no copies on the datapath.
pub struct PartitionedSend {
    core: SendCore,
    data: MpfaBytes,
    partitions: usize,
    /// The active round's routing state, shared with the deferred-start
    /// task so `pready` from any thread lands wherever the round is.
    round: Arc<Mutex<PartRoundState>>,
    active: Option<Request>,
}

/// Where the active partitioned round lives (see [`PartitionedSend`]).
enum PartRoundState {
    /// First round, bind still in flight: `pready` calls accumulate in
    /// the backlog and are replayed when the engine round starts.
    AwaitBind { backlog: Vec<(usize, usize)> },
    /// Engine round `id` is live; `pready` goes straight to the VCI.
    Engine(u64),
    /// Fallback one-shot round: nothing to mark ready.
    Fallback,
}

impl PartitionedSend {
    /// Number of partitions per round.
    pub fn partitions(&self) -> usize {
        self.partitions
    }

    /// Bytes per partition (the last partition may be shorter).
    pub fn partition_size(&self) -> usize {
        self.data.len().div_ceil(self.partitions)
    }

    /// The round payload view.
    pub fn payload(&self) -> &MpfaBytes {
        &self.data
    }

    /// Replace the payload for subsequent rounds. The length must match
    /// the init-time length (the receiver's slot is sized once).
    pub fn set_payload(&mut self, data: impl Into<MpfaBytes>) -> MpiResult<()> {
        let data = data.into();
        if data.len() != self.data.len() {
            return Err(MpiError::Protocol(format!(
                "set_payload: partitioned round is {} bytes, got {}",
                self.data.len(),
                data.len()
            )));
        }
        self.data = data;
        Ok(())
    }

    /// `MPI_Start`: begin one partitioned round with every partition
    /// unready. Nothing is sent until [`PartitionedSend::pready`]; the
    /// request completes once every partition has been handed to the
    /// transport.
    pub fn start(&mut self) -> MpiResult<Request> {
        if let Some(prev) = &self.active {
            if !prev.is_complete() {
                return Err(active_round_err("partitioned send"));
            }
        }
        let (state, req) = match self.core.route() {
            Route::Slot(slot) => {
                self.core.gen += 1;
                let (id, req) = self.core.comm.bundle().vci.persist_part_start(
                    self.core.comm.ptp_ctx(),
                    self.core.dst_ep,
                    slot,
                    self.data.clone(),
                    self.partitions,
                );
                (PartRoundState::Engine(id), req)
            }
            Route::AwaitBind => {
                self.core.gen += 1;
                let state = PartRoundState::AwaitBind {
                    backlog: Vec::new(),
                };
                (state, self.deferred_part_start())
            }
            // Fallback (revoked / dead peer): a one-shot round through
            // the ULFM choke point, born with the right error.
            Route::Fallback => (
                PartRoundState::Fallback,
                self.core.fallback(self.data.clone()),
            ),
        };
        *self.round.lock().unwrap() = state;
        self.active = Some(req.clone());
        Ok(req)
    }

    /// First-round start with the bind still in flight: an async task
    /// polls the binding, starts the engine round when it lands (or
    /// takes the one-shot fallback under a fault/revoke), replays the
    /// `pready` backlog, and forwards the inner request's outcome.
    fn deferred_part_start(&self) -> Request {
        let (req, completer) = Request::pair(self.core.comm.stream());
        let comm = self.core.comm.clone();
        let (key, dst, dst_ep, tag) = (
            self.core.key,
            self.core.dst,
            self.core.dst_ep,
            self.core.tag,
        );
        let data = self.data.clone();
        let partitions = self.partitions;
        let round = self.round.clone();
        let mut completer = Some(completer);
        let mut inner: Option<Request> = None;
        let stream = self.core.comm.stream().clone();
        stream.async_start(move |_t| {
            if inner.is_none() {
                let fault = comm.fault_for(Some(dst)).is_some();
                // Lock order: round mutex, then (inside the VCI calls)
                // the VCI lock — same order `pready_range` uses.
                let mut state = round.lock().unwrap();
                inner = match comm.bundle().vci.persist_binding(&key) {
                    BindState::Bound(slot) if !fault => {
                        let (id, r) = comm.bundle().vci.persist_part_start(
                            comm.ptp_ctx(),
                            dst_ep,
                            slot,
                            data.clone(),
                            partitions,
                        );
                        // Replay pready calls that raced the handshake.
                        if let PartRoundState::AwaitBind { backlog } = &*state {
                            for &(lo, hi) in backlog {
                                comm.bundle().vci.persist_pready(id, lo, hi);
                            }
                        }
                        *state = PartRoundState::Engine(id);
                        Some(r)
                    }
                    BindState::Unbound if !fault => return AsyncPoll::Pending,
                    // Revoked, or anything under a visible fault: the
                    // whole-round fallback (partitions are moot).
                    _ => {
                        *state = PartRoundState::Fallback;
                        Some(comm.isend_on_ctx(comm.ptp_ctx(), data.clone(), dst, tag))
                    }
                };
            }
            let r = inner.as_ref().expect("resolved above");
            if !r.is_complete() {
                return AsyncPoll::Pending;
            }
            let c = completer.take().expect("completed once");
            match r.error() {
                Some(e) => c.fail(e),
                None => c.complete(r.status().unwrap_or_else(Status::empty)),
            }
            AsyncPoll::Done
        });
        req
    }

    /// `MPI_Pready`: partition `p` of the active round is filled and
    /// may be sent. Callable from any thread.
    pub fn pready(&self, p: usize) -> MpiResult<()> {
        self.pready_range(p, p + 1)
    }

    /// `MPI_Pready_range`: partitions `[lo, hi)` are filled and may be
    /// sent. Callable from any thread.
    pub fn pready_range(&self, lo: usize, hi: usize) -> MpiResult<()> {
        if lo >= hi || hi > self.partitions {
            return Err(MpiError::Protocol(format!(
                "pready_range [{lo}, {hi}) out of bounds for {} partitions",
                self.partitions
            )));
        }
        if self.active.is_none() {
            return Err(MpiError::Protocol(
                "MPI_Pready before MPI_Start on a partitioned send".into(),
            ));
        }
        match &mut *self.round.lock().unwrap() {
            // Bind still in flight: queue the mark; the deferred start
            // replays the backlog the moment the engine round exists.
            PartRoundState::AwaitBind { backlog } => backlog.push((lo, hi)),
            PartRoundState::Engine(id) => {
                let id = *id;
                self.core.comm.bundle().vci.persist_pready(id, lo, hi);
            }
            // A fallback round (born-failed one-shot) has no partitions
            // to mark; pready is a no-op so producer threads need no
            // special casing on the failure path.
            PartRoundState::Fallback => {}
        }
        Ok(())
    }

    /// The in-flight round's request, if any.
    pub fn active(&self) -> Option<&Request> {
        self.active.as_ref()
    }
}

/// A partitioned receive (`MPI_Precv_init`): per-partition arrival
/// tracking over a pinned slot. [`PartitionedRecv::parrived`] answers
/// "has partition `p` landed?" without waiting for the whole round.
pub struct PartitionedRecv {
    core: RecvCore,
    partitions: usize,
    flags: Arc<PartFlags>,
    active: Option<RecvBytesRequest>,
}

impl PartitionedRecv {
    /// Number of partitions per round.
    pub fn partitions(&self) -> usize {
        self.partitions
    }

    /// `MPI_Start`: arm one partitioned round (resets every partition's
    /// arrival flag).
    pub fn start(&mut self) -> MpiResult<()> {
        if let Some(prev) = &self.active {
            if !prev.is_complete() {
                return Err(active_round_err("partitioned recv"));
            }
        }
        let (req, slot) = self.core.arm();
        self.active = Some(RecvBytesRequest::new(req, slot));
        Ok(())
    }

    /// `MPI_Parrived`: has partition `p` of the current round fully
    /// landed? Drives one progress call so arrived frames are visible.
    pub fn parrived(&self, p: usize) -> MpiResult<bool> {
        if p >= self.partitions {
            return Err(MpiError::Protocol(format!(
                "parrived: partition {p} out of bounds for {} partitions",
                self.partitions
            )));
        }
        self.core.comm.stream().progress();
        Ok(self.flags.arrived(p))
    }

    /// True if the current round (if any) has completed.
    pub fn is_complete(&self) -> bool {
        self.active
            .as_ref()
            .map(RecvBytesRequest::is_complete)
            .unwrap_or(false)
    }

    /// The current round's request, if a round is active.
    pub fn request(&self) -> Option<Request> {
        self.active.as_ref().map(RecvBytesRequest::request)
    }

    /// Wait for the whole round and take its payload view.
    pub fn wait(&mut self) -> MpiResult<(MpfaBytes, Status)> {
        match self.active.take() {
            Some(recv) => {
                recv.request().wait_result()?;
                Ok(recv.take())
            }
            None => Err(MpiError::Protocol(
                "wait on an unstarted partitioned recv".into(),
            )),
        }
    }
}

// -------------------------------------------------------------------
// Persistent collectives
// -------------------------------------------------------------------

/// A persistent allreduce (`MPI_Allreduce_init`): operator validated
/// once; each `start` runs one round over the live buffer.
pub struct PersistentAllreduce<T: Reducible> {
    comm: Comm,
    data: Vec<T>,
    op: Op,
    active: Option<CollFuture<T>>,
}

impl<T: Reducible> PersistentAllreduce<T> {
    /// The contribution buffer; mutate it between rounds.
    pub fn buffer_mut(&mut self) -> &mut Vec<T> {
        &mut self.data
    }

    /// The contribution buffer (read access).
    pub fn buffer(&self) -> &[T] {
        &self.data
    }

    /// `MPI_Start`: run one allreduce round. Errors if the previous
    /// round has not completed.
    pub fn start(&mut self) -> MpiResult<()> {
        if let Some(prev) = &self.active {
            if !prev.is_complete() {
                return Err(active_round_err("allreduce"));
            }
        }
        self.active = Some(self.comm.iallreduce(&self.data, self.op)?);
        Ok(())
    }

    /// True if the current round (if any) has completed.
    pub fn is_complete(&self) -> bool {
        self.active
            .as_ref()
            .map(CollFuture::is_complete)
            .unwrap_or(false)
    }

    /// Wait for the current round and take the reduced vector.
    pub fn wait(&mut self) -> MpiResult<(Vec<T>, Status)> {
        match self.active.take() {
            Some(fut) => Ok(fut.wait_result()?),
            None => Err(MpiError::Protocol(
                "wait on an unstarted persistent allreduce".into(),
            )),
        }
    }
}

// -------------------------------------------------------------------
// Comm constructors
// -------------------------------------------------------------------

impl Comm {
    /// `MPI_Send_init`: build a persistent send. Validation and routing
    /// happen here; the slot handshake completes on the first `start`.
    pub fn send_init<T: MpiType>(
        &self,
        data: &[T],
        dst: i32,
        tag: i32,
    ) -> MpiResult<PersistentSend<T>> {
        Ok(PersistentSend {
            core: SendCore::init(self, dst, tag)?,
            data: data.to_vec(),
            active: None,
        })
    }

    /// `MPI_Recv_init`: build a persistent receive, pinning a matching
    /// slot (wildcard patterns fall back to the tagged path per round).
    pub fn recv_init<T: MpiType>(
        &self,
        count: usize,
        src: i32,
        tag: i32,
    ) -> MpiResult<PersistentRecv<T>> {
        Ok(PersistentRecv {
            core: RecvCore::init(self, count * T::SIZE, src, tag)?,
            active: None,
        })
    }

    /// `MPI_Send_init` over raw bytes: the payload view is re-fired by
    /// refcount, never copied.
    pub fn send_init_bytes(
        &self,
        data: impl Into<MpfaBytes>,
        dst: i32,
        tag: i32,
    ) -> MpiResult<PersistentSendBytes> {
        Ok(PersistentSendBytes {
            core: SendCore::init(self, dst, tag)?,
            data: data.into(),
            active: None,
        })
    }

    /// `MPI_Recv_init` over raw bytes.
    pub fn recv_init_bytes(
        &self,
        capacity: usize,
        src: i32,
        tag: i32,
    ) -> MpiResult<PersistentRecvBytes> {
        Ok(PersistentRecvBytes {
            core: RecvCore::init(self, capacity, src, tag)?,
            active: None,
        })
    }

    /// `MPI_Psend_init`: build a partitioned send over `data` split into
    /// `partitions` equal parts (the last may be shorter).
    pub fn psend_init(
        &self,
        data: impl Into<MpfaBytes>,
        partitions: usize,
        dst: i32,
        tag: i32,
    ) -> MpiResult<PartitionedSend> {
        let data = data.into();
        check_partitioning(data.len(), partitions)?;
        Ok(PartitionedSend {
            core: SendCore::init(self, dst, tag)?,
            data,
            partitions,
            round: Arc::new(Mutex::new(PartRoundState::Fallback)),
            active: None,
        })
    }

    /// `MPI_Precv_init`: build a partitioned receive of `total` bytes in
    /// `partitions` parts. Wildcards are not allowed (per-partition
    /// delivery needs a pinned slot).
    pub fn precv_init(
        &self,
        total: usize,
        partitions: usize,
        src: i32,
        tag: i32,
    ) -> MpiResult<PartitionedRecv> {
        check_partitioning(total, partitions)?;
        if src == ANY_SOURCE || tag == ANY_TAG {
            return Err(MpiError::Protocol(
                "precv_init: wildcard source/tag cannot be slot-pinned".into(),
            ));
        }
        self.world_rank(src)?;
        if tag < 0 {
            return Err(MpiError::InvalidTag(tag));
        }
        let key = PersistKey {
            ctx: self.ptp_ctx(),
            src_rank: src,
            tag,
        };
        let Some((slot, flags)) =
            self.bundle()
                .vci
                .persist_precv_init(key, total, partitions, self.ep_of(src))
        else {
            return Err(MpiError::Protocol(format!(
                "precv_init: a persistent receive for (src {src}, tag {tag}) \
                 already exists on this communicator"
            )));
        };
        Ok(PartitionedRecv {
            core: RecvCore {
                comm: self.clone(),
                capacity: total,
                src,
                tag,
                slot: Some(slot),
            },
            partitions,
            flags,
            active: None,
        })
    }

    /// `MPI_Allreduce_init`: build a persistent allreduce, validating
    /// the operator/datatype combination once.
    pub fn allreduce_init<T: Reducible>(
        &self,
        data: &[T],
        op: Op,
    ) -> MpiResult<PersistentAllreduce<T>> {
        op.apply::<T>(&mut [], &[])?;
        Ok(PersistentAllreduce {
            comm: self.clone(),
            data: data.to_vec(),
            op,
            active: None,
        })
    }
}

fn check_partitioning(total: usize, partitions: usize) -> MpiResult<()> {
    if total == 0 || partitions == 0 {
        return Err(MpiError::Protocol(format!(
            "partitioned operation needs a non-empty buffer and at least one \
             partition (got {total} bytes, {partitions} partitions)"
        )));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use crate::collectives::testutil::run_ranks;
    use crate::op::Op;

    #[test]
    fn persistent_pair_runs_many_rounds() {
        let results = run_ranks(2, |proc| {
            let comm = proc.world_comm();
            if comm.rank() == 0 {
                let mut ps = comm.send_init(&[0i32; 4], 1, 7).unwrap();
                for round in 0..20 {
                    ps.buffer_mut().iter_mut().for_each(|v| *v = round);
                    let req = ps.start().unwrap();
                    req.wait();
                }
                Vec::new()
            } else {
                let mut pr = comm.recv_init::<i32>(4, 0, 7).unwrap();
                let mut got = Vec::new();
                for _ in 0..20 {
                    pr.start().unwrap();
                    let (data, _) = pr.wait().unwrap();
                    got.push(data[0]);
                }
                got
            }
        });
        assert_eq!(results[1], (0..20).collect::<Vec<i32>>());
    }

    #[test]
    fn double_start_is_erroneous() {
        let results = run_ranks(2, |proc| {
            let comm = proc.world_comm();
            if comm.rank() == 0 {
                // Rendezvous-sized: the round cannot complete before the
                // peer arms, so the immediate second start must fail.
                let mut ps = comm.send_init(&vec![0u8; 100_000], 1, 1).unwrap();
                let first = ps.start().unwrap();
                let err = ps.start().is_err();
                // Complete the round before exiting (MPI semantics: never
                // abandon an active send).
                first.wait();
                // After completion, a restart is legal again.
                let second = ps.start().unwrap();
                second.wait();
                err
            } else {
                let mut pr = comm.recv_init::<u8>(100_000, 0, 1).unwrap();
                for _ in 0..2 {
                    pr.start().unwrap();
                    let (data, _) = pr.wait().unwrap();
                    assert_eq!(data.len(), 100_000);
                }
                true
            }
        });
        assert!(results.iter().all(|&ok| ok));
    }

    #[test]
    fn recv_wait_without_start_errors() {
        let results = run_ranks(1, |proc| {
            let comm = proc.world_comm();
            let mut pr = comm.recv_init::<i32>(1, 0, 0).unwrap();
            pr.wait().is_err()
        });
        assert!(results[0]);
    }

    #[test]
    fn init_validates_arguments_once() {
        let results = run_ranks(1, |proc| {
            let comm = proc.world_comm();
            assert!(comm.send_init(&[1i32], 5, 0).is_err());
            assert!(comm.send_init(&[1i32], 0, -3).is_err());
            assert!(comm.recv_init::<i32>(1, 9, 0).is_err());
            assert!(comm.psend_init(vec![0u8; 8], 0, 0, 0).is_err());
            assert!(comm.psend_init(Vec::<u8>::new(), 2, 0, 0).is_err());
            assert!(comm.precv_init(8, 2, crate::comm::ANY_SOURCE, 0).is_err());
            true
        });
        assert!(results[0]);
    }

    #[test]
    fn duplicate_init_on_same_key_is_rejected() {
        let results = run_ranks(2, |proc| {
            let comm = proc.world_comm();
            if comm.rank() == 0 {
                let _a = comm.send_init(&[1u8], 1, 3).unwrap();
                // Same (dst, tag): ambiguous to slot-address.
                assert!(comm.send_init(&[1u8], 1, 3).is_err());
                // Different tag is fine.
                let _b = comm.send_init(&[1u8], 1, 4).unwrap();
            } else {
                let _a = comm.recv_init::<u8>(1, 0, 3).unwrap();
                assert!(comm.recv_init::<u8>(1, 0, 3).is_err());
            }
            // Barrier so neither rank tears down its descriptors (and
            // slots) while the peer still asserts against them.
            comm.barrier().unwrap();
            true
        });
        assert!(results.iter().all(|&ok| ok));
    }

    #[test]
    fn dropped_descriptor_key_is_reusable() {
        let results = run_ranks(2, |proc| {
            let comm = proc.world_comm();
            if comm.rank() == 0 {
                {
                    let mut ps = comm.send_init(&[7i32], 1, 9).unwrap();
                    ps.start().unwrap().wait();
                }
                // The first descriptor is gone; the key can be claimed
                // again and re-fires against the peer's (new) slot.
                let mut ps = comm.send_init(&[8i32], 1, 9).unwrap();
                ps.start().unwrap().wait();
                Vec::new()
            } else {
                let mut got = Vec::new();
                {
                    let mut pr = comm.recv_init::<i32>(1, 0, 9).unwrap();
                    pr.start().unwrap();
                    got.push(pr.wait().unwrap().0[0]);
                }
                let mut pr = comm.recv_init::<i32>(1, 0, 9).unwrap();
                pr.start().unwrap();
                got.push(pr.wait().unwrap().0[0]);
                got
            }
        });
        assert_eq!(results[1], vec![7, 8]);
    }

    #[test]
    fn wildcard_recv_init_takes_tagged_path() {
        let results = run_ranks(2, |proc| {
            let comm = proc.world_comm();
            if comm.rank() == 0 {
                // A wildcard persistent recv consults the matcher each
                // round, so an ordinary tagged send pairs with it (a
                // slot-addressed persistent send would not — see the
                // pairing contract in the module docs).
                comm.send(&[41i32], 1, 5).unwrap();
                0
            } else {
                let mut pr = comm
                    .recv_init::<i32>(1, crate::comm::ANY_SOURCE, crate::comm::ANY_TAG)
                    .unwrap();
                pr.start().unwrap();
                pr.wait().unwrap().0[0]
            }
        });
        assert_eq!(results[1], 41);
    }

    #[test]
    fn partitioned_round_trip_with_pready_range() {
        const PARTS: usize = 8;
        const BYTES: usize = 8 * 1024;
        let results = run_ranks(2, |proc| {
            let comm = proc.world_comm();
            if comm.rank() == 0 {
                let payload: Vec<u8> = (0..BYTES).map(|i| (i % 251) as u8).collect();
                let mut ps = comm.psend_init(payload, PARTS, 1, 2).unwrap();
                let req = ps.start().unwrap();
                // Mark partitions ready out of order, in two ranges.
                ps.pready_range(4, 8).unwrap();
                ps.pready_range(0, 4).unwrap();
                req.wait();
                true
            } else {
                let mut pr = comm.precv_init(BYTES, PARTS, 0, 2).unwrap();
                pr.start().unwrap();
                let (data, st) = pr.wait().unwrap();
                assert_eq!(st.bytes, BYTES);
                assert!(data.iter().enumerate().all(|(i, &b)| b == (i % 251) as u8));
                // After the round, every partition reads arrived.
                (0..PARTS).all(|p| pr.parrived(p).unwrap())
            }
        });
        assert!(results.iter().all(|&ok| ok));
    }

    #[test]
    fn parrived_tracks_partitions_before_round_completes() {
        const PARTS: usize = 4;
        const BYTES: usize = 4096;
        let results = run_ranks(2, |proc| {
            let comm = proc.world_comm();
            if comm.rank() == 0 {
                let mut ps = comm.psend_init(vec![9u8; BYTES], PARTS, 1, 0).unwrap();
                let req = ps.start().unwrap();
                ps.pready(2).unwrap();
                // Hold partitions 0, 1, 3 back until the peer confirms
                // partition 2 arrived alone.
                let (_, go) = comm.recv::<u8>(1, 1, 1).unwrap();
                assert_eq!(go.bytes, 1);
                ps.pready_range(0, 2).unwrap();
                ps.pready(3).unwrap();
                req.wait();
                true
            } else {
                let mut pr = comm.precv_init(BYTES, PARTS, 0, 0).unwrap();
                pr.start().unwrap();
                // Only partition 2 was released: it must arrive while
                // the others stay un-arrived.
                while !pr.parrived(2).unwrap() {}
                assert!(!pr.parrived(0).unwrap());
                assert!(!pr.parrived(1).unwrap());
                assert!(!pr.parrived(3).unwrap());
                assert!(!pr.is_complete());
                comm.send(&[1u8], 0, 1).unwrap();
                let (data, _) = pr.wait().unwrap();
                assert_eq!(data.len(), BYTES);
                true
            }
        });
        assert!(results.iter().all(|&ok| ok));
    }

    #[test]
    fn pready_before_start_and_out_of_bounds_error() {
        let results = run_ranks(2, |proc| {
            let comm = proc.world_comm();
            if comm.rank() == 0 {
                let mut ps = comm.psend_init(vec![1u8; 64], 4, 1, 0).unwrap();
                assert!(ps.pready(0).is_err(), "pready before start");
                let req = ps.start().unwrap();
                assert!(ps.pready(4).is_err(), "partition out of bounds");
                assert!(ps.pready_range(2, 2).is_err(), "empty range");
                ps.pready_range(0, 4).unwrap();
                req.wait();
            } else {
                let mut pr = comm.precv_init(64, 4, 0, 0).unwrap();
                assert!(pr.parrived(4).is_err(), "partition out of bounds");
                pr.start().unwrap();
                pr.wait().unwrap();
            }
            true
        });
        assert!(results.iter().all(|&ok| ok));
    }

    #[test]
    fn persistent_allreduce_reruns_with_fresh_contributions() {
        let results = run_ranks(3, |proc| {
            let comm = proc.world_comm();
            let mut pa = comm
                .allreduce_init(&[0i64, comm.rank() as i64], Op::Sum)
                .unwrap();
            let mut sums = Vec::new();
            for round in 0..5i64 {
                pa.buffer_mut()[0] = round * (comm.rank() as i64 + 1);
                pa.start().unwrap();
                let (out, _) = pa.wait().unwrap();
                sums.push(out);
            }
            sums
        });
        for (round, want0) in (0..5i64).map(|r| (r as usize, r * 6)) {
            // Σ r*(rank+1) = r*(1+2+3); Σ rank = 0+1+2.
            assert_eq!(results[0][round], vec![want0, 3]);
            assert_eq!(results[0][round], results[1][round]);
            assert_eq!(results[0][round], results[2][round]);
        }
    }

    #[test]
    fn persistent_bytes_pair_refires_views() {
        let results = run_ranks(2, |proc| {
            let comm = proc.world_comm();
            if comm.rank() == 0 {
                let mut ps = comm.send_init_bytes(vec![0u8; 512], 1, 11).unwrap();
                for round in 0..10u8 {
                    ps.set_payload(vec![round; 512]);
                    ps.start().unwrap().wait();
                }
                Vec::new()
            } else {
                let mut pr = comm.recv_init_bytes(512, 0, 11).unwrap();
                let mut got = Vec::new();
                for _ in 0..10 {
                    pr.start().unwrap();
                    let (bytes, st) = pr.wait().unwrap();
                    assert_eq!(st.bytes, 512);
                    got.push(bytes[0]);
                }
                got
            }
        });
        assert_eq!(results[1], (0..10u8).collect::<Vec<u8>>());
    }

    #[test]
    fn refires_complete_into_continuations_per_generation() {
        use std::sync::atomic::{AtomicU64, Ordering};
        use std::sync::Arc;
        let results = run_ranks(2, |proc| {
            let comm = proc.world_comm();
            if comm.rank() == 0 {
                let mut ps = comm.send_init(&[5u32; 2], 1, 0).unwrap();
                for _ in 0..8 {
                    ps.start().unwrap().wait();
                }
                0
            } else {
                let fired = Arc::new(AtomicU64::new(0));
                let mut pr = comm.recv_init::<u32>(2, 0, 0).unwrap();
                for gen in 0..8 {
                    pr.start().unwrap();
                    // Each re-fire generation is a fresh request: a
                    // continuation attached per round fires per round.
                    if let Some(active) = pr.active.as_ref() {
                        let fired = fired.clone();
                        active.request().on_complete(move |_| {
                            fired.fetch_add(1, Ordering::Relaxed);
                        });
                    }
                    let (data, _) = pr.wait().unwrap();
                    assert_eq!(data, vec![5u32; 2]);
                    // Continuations dispatch on the stream's next poll,
                    // not inline with completion — drive progress until
                    // this generation's callback lands.
                    while fired.load(Ordering::Relaxed) <= gen {
                        comm.stream().progress();
                    }
                }
                fired.load(Ordering::Relaxed)
            }
        });
        assert_eq!(results[1], 8);
    }
}

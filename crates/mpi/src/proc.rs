//! Per-rank runtime context: what an MPI process would be.
//!
//! Each [`Proc`] owns its *default stream* (the rank's `MPIX_STREAM_NULL`)
//! with the full Listing-1.1 hook set registered for VCI 0, and lazily
//! attaches further VCIs when communicators are bound to user streams.

use std::collections::HashMap;
use std::sync::Arc;

use mpfa_core::sync::Mutex;
use mpfa_core::{Stream, StreamHints};
use mpfa_resil::DetectorConfig;

use crate::comm::Comm;
use crate::dtengine::DtEngine;
use crate::error::{MpiError, MpiResult};
use crate::resilience::Resilience;
use crate::sched::SchedQueue;
use crate::subsys;
use crate::vci::Vci;
use crate::world::World;

/// The engines serving one VCI.
pub(crate) struct VciBundle {
    pub(crate) vci: Arc<Vci>,
    pub(crate) dt: Arc<DtEngine>,
    pub(crate) sched: Arc<SchedQueue>,
}

pub(crate) struct ProcInner {
    world: World,
    rank: usize,
    default_stream: Stream,
    bundles: Mutex<HashMap<usize, Arc<VciBundle>>>,
    /// ULFM machinery, present once `enable_resilience` ran. Comm
    /// handles cache this at construction: enable resilience *before*
    /// creating the communicators that should honor it.
    resilience: Mutex<Option<Arc<Resilience>>>,
}

/// One rank's runtime handle. Cheap to clone; typically moved onto the
/// rank's own OS thread.
#[derive(Clone)]
pub struct Proc {
    inner: Arc<ProcInner>,
}

impl Proc {
    pub(crate) fn new(world: World, rank: usize) -> Proc {
        let default_stream =
            Stream::with_hints(StreamHints::new().name(format!("rank{rank}/default")));
        let proc = Proc {
            inner: Arc::new(ProcInner {
                world,
                rank,
                default_stream,
                bundles: Mutex::new(HashMap::new()),
                resilience: Mutex::new(None),
            }),
        };
        // VCI 0 serves the default stream from the start.
        proc.attach_vci(0, &proc.inner.default_stream.clone())
            .expect("VCI 0 attach cannot fail");
        proc
    }

    /// This rank's index in the world.
    pub fn rank(&self) -> usize {
        self.inner.rank
    }

    /// World size.
    pub fn size(&self) -> usize {
        self.inner.world.size()
    }

    /// The owning world.
    pub fn world(&self) -> &World {
        &self.inner.world
    }

    /// The rank's default stream — its `MPIX_STREAM_NULL`. Blocking waits
    /// on world-communicator operations drive this stream.
    pub fn default_stream(&self) -> &Stream {
        &self.inner.default_stream
    }

    /// The world communicator for this rank (`MPI_COMM_WORLD`).
    pub fn world_comm(&self) -> Comm {
        Comm::world(self.clone())
    }

    /// Attach (or fetch) the engines for VCI `idx`, served by `stream`.
    ///
    /// The first caller for an index registers the four Listing-1.1 hooks
    /// on `stream`; later callers get the existing bundle (and `stream`
    /// must then be the one already serving it).
    pub(crate) fn attach_vci(&self, idx: usize, stream: &Stream) -> MpiResult<Arc<VciBundle>> {
        let mut bundles = self.inner.bundles.lock();
        if let Some(bundle) = bundles.get(&idx) {
            if bundle.vci.stream().id() != stream.id() {
                return Err(MpiError::Protocol(format!(
                    "VCI {idx} is already served by stream {:?}; cannot rebind",
                    bundle.vci.stream().id()
                )));
            }
            return Ok(bundle.clone());
        }
        let cfg = self.inner.world.config();
        assert!(idx < cfg.max_vcis, "VCI index {idx} out of range");
        let vci = Vci::on_transport(
            self.inner.world.rank_transport(self.inner.rank),
            cfg.ep_index(self.inner.rank, idx),
            stream.clone(),
            cfg.proto,
        );
        let dt = DtEngine::shared();
        let sched = SchedQueue::shared();
        subsys::register_all(&vci, &dt, &sched);
        let bundle = Arc::new(VciBundle { vci, dt, sched });
        bundles.insert(idx, bundle.clone());
        Ok(bundle)
    }

    /// Fetch an attached VCI bundle.
    pub(crate) fn bundle(&self, idx: usize) -> Option<Arc<VciBundle>> {
        self.inner.bundles.lock().get(&idx).cloned()
    }

    /// Switch on the ULFM machinery: start a failure detector watching
    /// this rank's transport plus a resilience progress task (revoke
    /// listener + failure sweep), both as `MPIX_Async` hooks on the
    /// default stream. Idempotent — later calls return the existing
    /// handle and ignore `cfg`. Communicators cache the handle at
    /// construction, so call this *before* creating the comms that
    /// should observe failures.
    pub fn enable_resilience(&self, cfg: DetectorConfig) -> Arc<Resilience> {
        let mut slot = self.inner.resilience.lock();
        if let Some(r) = slot.as_ref() {
            return r.clone();
        }
        let r = Resilience::install(self, cfg);
        *slot = Some(r.clone());
        r
    }

    /// The resilience handle, if `enable_resilience` ran.
    pub fn resilience(&self) -> Option<Arc<Resilience>> {
        self.inner.resilience.lock().clone()
    }

    /// `MPI_Finalize` for this rank: spin the default stream until its
    /// user tasks drain (paper Listing 1.2 — "MPI_Finalize will spin
    /// progress until all async tasks complete"). Returns false on the
    /// safety timeout.
    pub fn finalize(&self, timeout_s: f64) -> bool {
        // The detector and resilience tasks poll forever by design;
        // retire them first or the drain below would never finish.
        if let Some(r) = self.inner.resilience.lock().as_ref() {
            r.shutdown();
        }
        self.inner.default_stream.drain(timeout_s)
    }
}

impl std::fmt::Debug for Proc {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Proc")
            .field("rank", &self.inner.rank)
            .field("size", &self.size())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::world::WorldConfig;

    #[test]
    fn proc_has_default_stream_with_hooks() {
        let procs = World::init(WorldConfig::instant(2));
        let p = &procs[0];
        assert_eq!(p.default_stream().hook_count(), 4);
        assert!(p.default_stream().name().unwrap().contains("rank0"));
    }

    #[test]
    fn attach_vci_is_idempotent() {
        let procs = World::init(WorldConfig::instant(2));
        let p = &procs[0];
        let s = p.default_stream().clone();
        let a = p.attach_vci(0, &s).unwrap();
        let b = p.attach_vci(0, &s).unwrap();
        assert!(Arc::ptr_eq(&a, &b));
    }

    #[test]
    fn attach_vci_rejects_stream_rebind() {
        let procs = World::init(WorldConfig::instant(2));
        let p = &procs[0];
        let other = Stream::create();
        assert!(p.attach_vci(0, &other).is_err());
    }

    #[test]
    fn finalize_drains_default_stream() {
        use mpfa_core::AsyncPoll;
        let procs = World::init(WorldConfig::instant(1));
        let p = &procs[0];
        let mut polls = 0;
        p.default_stream().async_start(move |_t| {
            polls += 1;
            if polls > 3 {
                AsyncPoll::Done
            } else {
                AsyncPoll::Pending
            }
        });
        assert!(p.finalize(1.0));
        assert_eq!(p.default_stream().pending_tasks(), 0);
    }
}

//! The wire protocol: what travels through the simulated fabric.
//!
//! The message modes map onto the paper's Figure 1:
//!
//! * [`WireMsg::Eager`] — buffered/lightweight and normal eager sends
//!   (Figure 1(a)/(b)): the payload rides along with the match header.
//! * [`WireMsg::Rts`] / [`WireMsg::Cts`] / [`WireMsg::Data`] — the
//!   rendezvous handshake (Figure 1(c)): the sender announces, the
//!   receiver clears, the data follows in one or more chunks
//!   ([`WireMsg::DataAck`] provides the pipeline-mode flow control with a
//!   bounded number of in-flight chunks).

/// Matching metadata carried by message-bearing packets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MsgHeader {
    /// Communicator context id (unique per communicator, agreed by all
    /// ranks at communicator creation).
    pub context_id: u64,
    /// Sender's rank *within the communicator*.
    pub src_rank: i32,
    /// User tag.
    pub tag: i32,
}

/// A packet of the runtime's wire protocol.
#[derive(Debug, Clone, PartialEq)]
pub enum WireMsg {
    /// Complete message in one packet (buffered or eager mode).
    Eager {
        /// Match header.
        hdr: MsgHeader,
        /// Full payload.
        data: Vec<u8>,
    },
    /// Ready-to-send: start of a rendezvous transfer.
    Rts {
        /// Match header.
        hdr: MsgHeader,
        /// Sender-side request id, echoed in the CTS.
        send_id: u64,
        /// Total payload size of the coming transfer.
        total: usize,
    },
    /// Clear-to-send: the receiver matched the RTS and is ready.
    Cts {
        /// Sender-side request id from the RTS.
        send_id: u64,
        /// Receiver-side request id, echoed in DATA packets.
        recv_id: u64,
    },
    /// One chunk of a rendezvous payload.
    Data {
        /// Receiver-side request id from the CTS.
        recv_id: u64,
        /// Byte offset of this chunk in the full payload.
        offset: usize,
        /// Chunk bytes.
        data: Vec<u8>,
    },
    /// Receiver flow-control credit: one chunk landed; the sender may
    /// inject another (pipeline mode's bounded concurrency).
    DataAck {
        /// Sender-side request id.
        send_id: u64,
    },
}

impl WireMsg {
    /// The payload size the fabric should charge for. Control packets
    /// (RTS/CTS/ACK) are charged zero — they are header-sized, and the
    /// simulation models their cost as pure latency.
    pub fn wire_bytes(&self) -> usize {
        match self {
            WireMsg::Eager { data, .. } => data.len(),
            WireMsg::Data { data, .. } => data.len(),
            WireMsg::Rts { .. } | WireMsg::Cts { .. } | WireMsg::DataAck { .. } => 0,
        }
    }

    /// Diagnostic kind tag.
    pub fn kind(&self) -> &'static str {
        match self {
            WireMsg::Eager { .. } => "eager",
            WireMsg::Rts { .. } => "rts",
            WireMsg::Cts { .. } => "cts",
            WireMsg::Data { .. } => "data",
            WireMsg::DataAck { .. } => "ack",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hdr() -> MsgHeader {
        MsgHeader {
            context_id: 1,
            src_rank: 0,
            tag: 5,
        }
    }

    #[test]
    fn wire_bytes_charges_payload_only() {
        assert_eq!(
            WireMsg::Eager {
                hdr: hdr(),
                data: vec![0; 10]
            }
            .wire_bytes(),
            10
        );
        assert_eq!(
            WireMsg::Rts {
                hdr: hdr(),
                send_id: 1,
                total: 1000
            }
            .wire_bytes(),
            0
        );
        assert_eq!(
            WireMsg::Cts {
                send_id: 1,
                recv_id: 2
            }
            .wire_bytes(),
            0
        );
        assert_eq!(
            WireMsg::Data {
                recv_id: 2,
                offset: 0,
                data: vec![0; 7]
            }
            .wire_bytes(),
            7
        );
        assert_eq!(WireMsg::DataAck { send_id: 1 }.wire_bytes(), 0);
    }

    #[test]
    fn kinds() {
        assert_eq!(
            WireMsg::Eager {
                hdr: hdr(),
                data: vec![]
            }
            .kind(),
            "eager"
        );
        assert_eq!(WireMsg::DataAck { send_id: 0 }.kind(), "ack");
    }
}

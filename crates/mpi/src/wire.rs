//! The wire protocol: what travels through the simulated fabric.
//!
//! The message modes map onto the paper's Figure 1:
//!
//! * [`WireMsg::Eager`] — buffered/lightweight and normal eager sends
//!   (Figure 1(a)/(b)): the payload rides along with the match header.
//! * [`WireMsg::Rts`] / [`WireMsg::Cts`] / [`WireMsg::Data`] — the
//!   rendezvous handshake (Figure 1(c)): the sender announces, the
//!   receiver clears, the data follows in one or more chunks
//!   ([`WireMsg::DataAck`] provides the pipeline-mode flow control with a
//!   bounded number of in-flight chunks).

use mpfa_transport::codec::{put_i32, put_u64, ByteReader};
use mpfa_transport::FrameCodec;

/// Matching metadata carried by message-bearing packets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MsgHeader {
    /// Communicator context id (unique per communicator, agreed by all
    /// ranks at communicator creation).
    pub context_id: u64,
    /// Sender's rank *within the communicator*.
    pub src_rank: i32,
    /// User tag.
    pub tag: i32,
}

/// A packet of the runtime's wire protocol.
#[derive(Debug, Clone, PartialEq)]
pub enum WireMsg {
    /// Complete message in one packet (buffered or eager mode).
    Eager {
        /// Match header.
        hdr: MsgHeader,
        /// Full payload.
        data: Vec<u8>,
    },
    /// Ready-to-send: start of a rendezvous transfer.
    Rts {
        /// Match header.
        hdr: MsgHeader,
        /// Sender-side request id, echoed in the CTS.
        send_id: u64,
        /// Total payload size of the coming transfer.
        total: usize,
    },
    /// Clear-to-send: the receiver matched the RTS and is ready.
    Cts {
        /// Sender-side request id from the RTS.
        send_id: u64,
        /// Receiver-side request id, echoed in DATA packets.
        recv_id: u64,
    },
    /// One chunk of a rendezvous payload.
    Data {
        /// Receiver-side request id from the CTS.
        recv_id: u64,
        /// Byte offset of this chunk in the full payload.
        offset: usize,
        /// Chunk bytes.
        data: Vec<u8>,
    },
    /// Receiver flow-control credit: one chunk landed; the sender may
    /// inject another (pipeline mode's bounded concurrency).
    DataAck {
        /// Sender-side request id.
        send_id: u64,
    },
}

impl WireMsg {
    /// The payload size the fabric should charge for. Control packets
    /// (RTS/CTS/ACK) are charged zero — they are header-sized, and the
    /// simulation models their cost as pure latency.
    pub fn wire_bytes(&self) -> usize {
        match self {
            WireMsg::Eager { data, .. } => data.len(),
            WireMsg::Data { data, .. } => data.len(),
            WireMsg::Rts { .. } | WireMsg::Cts { .. } | WireMsg::DataAck { .. } => 0,
        }
    }

    /// Diagnostic kind tag.
    pub fn kind(&self) -> &'static str {
        match self {
            WireMsg::Eager { .. } => "eager",
            WireMsg::Rts { .. } => "rts",
            WireMsg::Cts { .. } => "cts",
            WireMsg::Data { .. } => "data",
            WireMsg::DataAck { .. } => "ack",
        }
    }
}

// ---------------------------------------------------------------------
// Wire framing: how WireMsg crosses a real socket.
// ---------------------------------------------------------------------

/// Variant tags of the frame encoding (one byte on the wire).
const TAG_EAGER: u8 = 0;
const TAG_RTS: u8 = 1;
const TAG_CTS: u8 = 2;
const TAG_DATA: u8 = 3;
const TAG_DATA_ACK: u8 = 4;

fn put_hdr(buf: &mut Vec<u8>, hdr: &MsgHeader) {
    put_u64(buf, hdr.context_id);
    put_i32(buf, hdr.src_rank);
    put_i32(buf, hdr.tag);
}

fn read_hdr(r: &mut ByteReader<'_>) -> Option<MsgHeader> {
    Some(MsgHeader {
        context_id: r.u64()?,
        src_rank: r.i32()?,
        tag: r.i32()?,
    })
}

/// [`FrameCodec`] lets [`WireMsg`] cross the real TCP/UDS backends of
/// `mpfa-transport` unchanged: one leading variant byte, little-endian
/// fixed-width fields, and — for the two data-bearing variants — the
/// payload as the trailing rest of the frame (the frame header already
/// carries the length, so none is repeated here).
impl FrameCodec for WireMsg {
    fn encode(&self, buf: &mut Vec<u8>) {
        match self {
            WireMsg::Eager { hdr, data } => {
                buf.push(TAG_EAGER);
                put_hdr(buf, hdr);
                buf.extend_from_slice(data);
            }
            WireMsg::Rts {
                hdr,
                send_id,
                total,
            } => {
                buf.push(TAG_RTS);
                put_hdr(buf, hdr);
                put_u64(buf, *send_id);
                put_u64(buf, *total as u64);
            }
            WireMsg::Cts { send_id, recv_id } => {
                buf.push(TAG_CTS);
                put_u64(buf, *send_id);
                put_u64(buf, *recv_id);
            }
            WireMsg::Data {
                recv_id,
                offset,
                data,
            } => {
                buf.push(TAG_DATA);
                put_u64(buf, *recv_id);
                put_u64(buf, *offset as u64);
                buf.extend_from_slice(data);
            }
            WireMsg::DataAck { send_id } => {
                buf.push(TAG_DATA_ACK);
                put_u64(buf, *send_id);
            }
        }
    }

    fn decode(bytes: &[u8]) -> Option<Self> {
        let mut r = ByteReader::new(bytes);
        let tag = *r.take(1)?.first()?;
        let msg = match tag {
            TAG_EAGER => WireMsg::Eager {
                hdr: read_hdr(&mut r)?,
                data: r.rest().to_vec(),
            },
            TAG_RTS => WireMsg::Rts {
                hdr: read_hdr(&mut r)?,
                send_id: r.u64()?,
                total: r.u64()? as usize,
            },
            TAG_CTS => WireMsg::Cts {
                send_id: r.u64()?,
                recv_id: r.u64()?,
            },
            TAG_DATA => WireMsg::Data {
                recv_id: r.u64()?,
                offset: r.u64()? as usize,
                data: r.rest().to_vec(),
            },
            TAG_DATA_ACK => WireMsg::DataAck { send_id: r.u64()? },
            _ => return None,
        };
        // Fixed-size variants must consume the payload exactly; the
        // data-bearing ones drained it via rest().
        r.is_empty().then_some(msg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hdr() -> MsgHeader {
        MsgHeader {
            context_id: 1,
            src_rank: 0,
            tag: 5,
        }
    }

    #[test]
    fn wire_bytes_charges_payload_only() {
        assert_eq!(
            WireMsg::Eager {
                hdr: hdr(),
                data: vec![0; 10]
            }
            .wire_bytes(),
            10
        );
        assert_eq!(
            WireMsg::Rts {
                hdr: hdr(),
                send_id: 1,
                total: 1000
            }
            .wire_bytes(),
            0
        );
        assert_eq!(
            WireMsg::Cts {
                send_id: 1,
                recv_id: 2
            }
            .wire_bytes(),
            0
        );
        assert_eq!(
            WireMsg::Data {
                recv_id: 2,
                offset: 0,
                data: vec![0; 7]
            }
            .wire_bytes(),
            7
        );
        assert_eq!(WireMsg::DataAck { send_id: 1 }.wire_bytes(), 0);
    }

    #[test]
    fn frame_codec_roundtrips_every_variant() {
        let msgs = vec![
            WireMsg::Eager {
                hdr: MsgHeader {
                    context_id: u64::MAX,
                    src_rank: -1,
                    tag: i32::MIN,
                },
                data: (0..=255).collect(),
            },
            WireMsg::Eager {
                hdr: hdr(),
                data: vec![],
            },
            WireMsg::Rts {
                hdr: hdr(),
                send_id: 7,
                total: 1 << 40,
            },
            WireMsg::Cts {
                send_id: 7,
                recv_id: 9,
            },
            WireMsg::Data {
                recv_id: 9,
                offset: 123_456,
                data: vec![0xAB; 3],
            },
            WireMsg::DataAck { send_id: 7 },
        ];
        for msg in msgs {
            let mut buf = Vec::new();
            msg.encode(&mut buf);
            assert_eq!(WireMsg::decode(&buf), Some(msg));
        }
    }

    #[test]
    fn frame_codec_rejects_malformed_payloads() {
        // Unknown variant tag.
        assert_eq!(WireMsg::decode(&[99]), None);
        // Empty payload.
        assert_eq!(WireMsg::decode(&[]), None);
        // Truncated fixed-size variant.
        let mut buf = Vec::new();
        WireMsg::DataAck { send_id: 1 }.encode(&mut buf);
        assert_eq!(WireMsg::decode(&buf[..buf.len() - 1]), None);
        // Trailing garbage after a fixed-size variant.
        buf.push(0);
        assert_eq!(WireMsg::decode(&buf), None);
    }

    #[test]
    fn kinds() {
        assert_eq!(
            WireMsg::Eager {
                hdr: hdr(),
                data: vec![]
            }
            .kind(),
            "eager"
        );
        assert_eq!(WireMsg::DataAck { send_id: 0 }.kind(), "ack");
    }
}

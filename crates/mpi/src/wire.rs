//! The wire protocol: what travels through the simulated fabric.
//!
//! The message modes map onto the paper's Figure 1:
//!
//! * [`WireMsg::Eager`] — buffered/lightweight and normal eager sends
//!   (Figure 1(a)/(b)): the payload rides along with the match header.
//! * [`WireMsg::Rts`] / [`WireMsg::Cts`] / [`WireMsg::Data`] — the
//!   rendezvous handshake (Figure 1(c)): the sender announces, the
//!   receiver clears, the data follows in one or more chunks
//!   ([`WireMsg::DataAck`] provides the pipeline-mode flow control with a
//!   bounded number of in-flight chunks).

use mpfa_transport::codec::{put_i32, put_u64, ByteReader};
use mpfa_transport::{FrameCodec, MpfaBytes};

/// Matching metadata carried by message-bearing packets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MsgHeader {
    /// Communicator context id (unique per communicator, agreed by all
    /// ranks at communicator creation).
    pub context_id: u64,
    /// Sender's rank *within the communicator*.
    pub src_rank: i32,
    /// User tag.
    pub tag: i32,
}

/// A packet of the runtime's wire protocol.
#[derive(Debug, Clone, PartialEq)]
pub enum WireMsg {
    /// Complete message in one packet (buffered or eager mode).
    Eager {
        /// Match header.
        hdr: MsgHeader,
        /// Full payload — a refcounted view, so a send captures the
        /// caller's buffer without copying and a zero-copy receive can
        /// hand a transport ring view straight through to the match.
        data: MpfaBytes,
    },
    /// Ready-to-send: start of a rendezvous transfer.
    Rts {
        /// Match header.
        hdr: MsgHeader,
        /// Sender-side request id, echoed in the CTS.
        send_id: u64,
        /// Total payload size of the coming transfer.
        total: usize,
    },
    /// Clear-to-send: the receiver matched the RTS and is ready.
    Cts {
        /// Sender-side request id from the RTS.
        send_id: u64,
        /// Receiver-side request id, echoed in DATA packets.
        recv_id: u64,
    },
    /// One chunk of a rendezvous payload.
    Data {
        /// Receiver-side request id from the CTS.
        recv_id: u64,
        /// Byte offset of this chunk in the full payload.
        offset: usize,
        /// Chunk bytes (a slice of the sender's payload view; no
        /// per-chunk copy on the send side).
        data: MpfaBytes,
    },
    /// Receiver flow-control credit: one chunk landed; the sender may
    /// inject another (pipeline mode's bounded concurrency).
    DataAck {
        /// Sender-side request id.
        send_id: u64,
    },
    /// Persistent-pair handshake (receiver → sender): `recv_init` ran,
    /// and the matching bucket for `key` is pinned to compact slot id
    /// `slot`. From here on the sender addresses fires by slot and the
    /// pair never touches tag matching again.
    PersistBind {
        /// The pair's identity: the wire context, the sender's comm
        /// rank, and the tag — the same triple an ordinary eager send
        /// would have been matched on.
        key: MsgHeader,
        /// Receiver-assigned slot id for all subsequent fires.
        slot: u64,
    },
    /// One eager re-fire of a bound persistent send: the full payload,
    /// addressed by slot — no match header, no tag matching.
    Refire {
        /// Receiver-side slot id from the [`WireMsg::PersistBind`].
        slot: u64,
        /// Re-fire generation (0 for the first start), for diagnostics
        /// and partitioned-round bookkeeping.
        gen: u64,
        /// Full payload view (sliced zero-copy on decode).
        data: MpfaBytes,
    },
    /// Rendezvous announce for a bound persistent send above the eager
    /// threshold. The receiver registers the transfer against the slot's
    /// armed buffer and replies with an ordinary [`WireMsg::Cts`]; the
    /// chunked Data/DataAck pipeline is reused unchanged (it is already
    /// id-addressed and match-free).
    RefireRts {
        /// Receiver-side slot id.
        slot: u64,
        /// Re-fire generation.
        gen: u64,
        /// Sender-side request id, echoed in the CTS.
        send_id: u64,
        /// Total payload size of the coming transfer.
        total: usize,
    },
    /// One chunk of one *partition* of a partitioned persistent send.
    /// Partition readiness (`pready`) feeds these into the wire as the
    /// sweeps run; the receiver accounts arrival per partition so
    /// `parrived` can answer before the whole round lands.
    PartData {
        /// Receiver-side slot id.
        slot: u64,
        /// Byte offset of this chunk in the full (round) payload.
        offset: usize,
        /// Partition index this chunk belongs to.
        part: u32,
        /// Chunk bytes (a slice of the sender's payload view).
        data: MpfaBytes,
    },
}

impl WireMsg {
    /// The payload size the fabric should charge for. Control packets
    /// (RTS/CTS/ACK) are charged zero — they are header-sized, and the
    /// simulation models their cost as pure latency.
    pub fn wire_bytes(&self) -> usize {
        match self {
            WireMsg::Eager { data, .. } => data.len(),
            WireMsg::Data { data, .. } => data.len(),
            WireMsg::Refire { data, .. } => data.len(),
            WireMsg::PartData { data, .. } => data.len(),
            WireMsg::Rts { .. }
            | WireMsg::Cts { .. }
            | WireMsg::DataAck { .. }
            | WireMsg::PersistBind { .. }
            | WireMsg::RefireRts { .. } => 0,
        }
    }

    /// Diagnostic kind tag.
    pub fn kind(&self) -> &'static str {
        match self {
            WireMsg::Eager { .. } => "eager",
            WireMsg::Rts { .. } => "rts",
            WireMsg::Cts { .. } => "cts",
            WireMsg::Data { .. } => "data",
            WireMsg::DataAck { .. } => "ack",
            WireMsg::PersistBind { .. } => "bind",
            WireMsg::Refire { .. } => "refire",
            WireMsg::RefireRts { .. } => "refire-rts",
            WireMsg::PartData { .. } => "part",
        }
    }
}

// ---------------------------------------------------------------------
// Wire framing: how WireMsg crosses a real socket.
// ---------------------------------------------------------------------

/// Variant tags of the frame encoding (one byte on the wire).
const TAG_EAGER: u8 = 0;
const TAG_RTS: u8 = 1;
const TAG_CTS: u8 = 2;
const TAG_DATA: u8 = 3;
const TAG_DATA_ACK: u8 = 4;
const TAG_PERSIST_BIND: u8 = 5;
const TAG_REFIRE: u8 = 6;
const TAG_REFIRE_RTS: u8 = 7;
const TAG_PART_DATA: u8 = 8;

fn put_hdr(buf: &mut Vec<u8>, hdr: &MsgHeader) {
    put_u64(buf, hdr.context_id);
    put_i32(buf, hdr.src_rank);
    put_i32(buf, hdr.tag);
}

fn read_hdr(r: &mut ByteReader<'_>) -> Option<MsgHeader> {
    Some(MsgHeader {
        context_id: r.u64()?,
        src_rank: r.i32()?,
        tag: r.i32()?,
    })
}

/// [`FrameCodec`] lets [`WireMsg`] cross the real TCP/UDS backends of
/// `mpfa-transport` unchanged: one leading variant byte, little-endian
/// fixed-width fields, and — for the two data-bearing variants — the
/// payload as the trailing rest of the frame (the frame header already
/// carries the length, so none is repeated here).
impl FrameCodec for WireMsg {
    fn encode(&self, buf: &mut Vec<u8>) {
        match self {
            WireMsg::Eager { hdr, data } => {
                buf.push(TAG_EAGER);
                put_hdr(buf, hdr);
                buf.extend_from_slice(data);
            }
            WireMsg::Rts {
                hdr,
                send_id,
                total,
            } => {
                buf.push(TAG_RTS);
                put_hdr(buf, hdr);
                put_u64(buf, *send_id);
                put_u64(buf, *total as u64);
            }
            WireMsg::Cts { send_id, recv_id } => {
                buf.push(TAG_CTS);
                put_u64(buf, *send_id);
                put_u64(buf, *recv_id);
            }
            WireMsg::Data {
                recv_id,
                offset,
                data,
            } => {
                buf.push(TAG_DATA);
                put_u64(buf, *recv_id);
                put_u64(buf, *offset as u64);
                buf.extend_from_slice(data);
            }
            WireMsg::DataAck { send_id } => {
                buf.push(TAG_DATA_ACK);
                put_u64(buf, *send_id);
            }
            WireMsg::PersistBind { key, slot } => {
                buf.push(TAG_PERSIST_BIND);
                put_hdr(buf, key);
                put_u64(buf, *slot);
            }
            WireMsg::Refire { slot, gen, data } => {
                buf.push(TAG_REFIRE);
                put_u64(buf, *slot);
                put_u64(buf, *gen);
                buf.extend_from_slice(data);
            }
            WireMsg::RefireRts {
                slot,
                gen,
                send_id,
                total,
            } => {
                buf.push(TAG_REFIRE_RTS);
                put_u64(buf, *slot);
                put_u64(buf, *gen);
                put_u64(buf, *send_id);
                put_u64(buf, *total as u64);
            }
            WireMsg::PartData {
                slot,
                offset,
                part,
                data,
            } => {
                buf.push(TAG_PART_DATA);
                put_u64(buf, *slot);
                put_u64(buf, *offset as u64);
                put_i32(buf, *part as i32);
                buf.extend_from_slice(data);
            }
        }
    }

    fn decode(bytes: &[u8]) -> Option<Self> {
        let mut r = ByteReader::new(bytes);
        let tag = *r.take(1)?.first()?;
        let msg = match tag {
            TAG_EAGER => WireMsg::Eager {
                hdr: read_hdr(&mut r)?,
                data: MpfaBytes::copy_from(r.rest()),
            },
            TAG_RTS => WireMsg::Rts {
                hdr: read_hdr(&mut r)?,
                send_id: r.u64()?,
                total: r.u64()? as usize,
            },
            TAG_CTS => WireMsg::Cts {
                send_id: r.u64()?,
                recv_id: r.u64()?,
            },
            TAG_DATA => WireMsg::Data {
                recv_id: r.u64()?,
                offset: r.u64()? as usize,
                data: MpfaBytes::copy_from(r.rest()),
            },
            TAG_DATA_ACK => WireMsg::DataAck { send_id: r.u64()? },
            TAG_PERSIST_BIND => WireMsg::PersistBind {
                key: read_hdr(&mut r)?,
                slot: r.u64()?,
            },
            TAG_REFIRE => WireMsg::Refire {
                slot: r.u64()?,
                gen: r.u64()?,
                data: MpfaBytes::copy_from(r.rest()),
            },
            TAG_REFIRE_RTS => WireMsg::RefireRts {
                slot: r.u64()?,
                gen: r.u64()?,
                send_id: r.u64()?,
                total: r.u64()? as usize,
            },
            TAG_PART_DATA => WireMsg::PartData {
                slot: r.u64()?,
                offset: r.u64()? as usize,
                part: r.i32()? as u32,
                data: MpfaBytes::copy_from(r.rest()),
            },
            _ => return None,
        };
        // Fixed-size variants must consume the payload exactly; the
        // data-bearing ones drained it via rest().
        r.is_empty().then_some(msg)
    }

    /// Zero-copy decode: the data-bearing variants keep a *slice* of the
    /// delivered view as their payload instead of copying it out. This
    /// is how a shared-memory ring view flows through matching into the
    /// application's receive without a memcpy.
    fn decode_bytes(bytes: MpfaBytes) -> Option<Self> {
        // Three data-bearing layouts put the payload at byte 17:
        // Eager = tag(1) + header(16); Data = tag(1) + recv_id(8) +
        // offset(8); Refire = tag(1) + slot(8) + gen(8). PartData adds a
        // partition index, so its payload sits at byte 21.
        const PAYLOAD_AT: usize = 17;
        const PART_PAYLOAD_AT: usize = 21;
        match *bytes.first()? {
            TAG_EAGER if bytes.len() >= PAYLOAD_AT => {
                let mut r = ByteReader::new(&bytes[1..PAYLOAD_AT]);
                Some(WireMsg::Eager {
                    hdr: read_hdr(&mut r)?,
                    data: bytes.slice(PAYLOAD_AT..bytes.len()),
                })
            }
            TAG_DATA if bytes.len() >= PAYLOAD_AT => {
                let mut r = ByteReader::new(&bytes[1..PAYLOAD_AT]);
                Some(WireMsg::Data {
                    recv_id: r.u64()?,
                    offset: r.u64()? as usize,
                    data: bytes.slice(PAYLOAD_AT..bytes.len()),
                })
            }
            TAG_REFIRE if bytes.len() >= PAYLOAD_AT => {
                let mut r = ByteReader::new(&bytes[1..PAYLOAD_AT]);
                Some(WireMsg::Refire {
                    slot: r.u64()?,
                    gen: r.u64()?,
                    data: bytes.slice(PAYLOAD_AT..bytes.len()),
                })
            }
            TAG_PART_DATA if bytes.len() >= PART_PAYLOAD_AT => {
                let mut r = ByteReader::new(&bytes[1..PART_PAYLOAD_AT]);
                Some(WireMsg::PartData {
                    slot: r.u64()?,
                    offset: r.u64()? as usize,
                    part: r.i32()? as u32,
                    data: bytes.slice(PART_PAYLOAD_AT..bytes.len()),
                })
            }
            _ => Self::decode(&bytes),
        }
    }

    /// Every variant's size is known up front, so backends with
    /// preallocated frame space (the shared-memory ring) reserve the
    /// frame in place and encode straight into it — no staging buffer.
    fn encoded_len(&self) -> Option<usize> {
        Some(match self {
            WireMsg::Eager { data, .. } => 17 + data.len(),
            WireMsg::Rts { .. } => 33,
            WireMsg::Cts { .. } => 17,
            WireMsg::Data { data, .. } => 17 + data.len(),
            WireMsg::DataAck { .. } => 9,
            WireMsg::PersistBind { .. } => 25,
            WireMsg::Refire { data, .. } => 17 + data.len(),
            WireMsg::RefireRts { .. } => 33,
            WireMsg::PartData { data, .. } => 21 + data.len(),
        })
    }

    fn encode_into(&self, buf: &mut [u8]) {
        fn hdr_into(buf: &mut [u8], hdr: &MsgHeader) {
            buf[0..8].copy_from_slice(&hdr.context_id.to_le_bytes());
            buf[8..12].copy_from_slice(&hdr.src_rank.to_le_bytes());
            buf[12..16].copy_from_slice(&hdr.tag.to_le_bytes());
        }
        match self {
            WireMsg::Eager { hdr, data } => {
                buf[0] = TAG_EAGER;
                hdr_into(&mut buf[1..17], hdr);
                buf[17..].copy_from_slice(data);
            }
            WireMsg::Rts {
                hdr,
                send_id,
                total,
            } => {
                buf[0] = TAG_RTS;
                hdr_into(&mut buf[1..17], hdr);
                buf[17..25].copy_from_slice(&send_id.to_le_bytes());
                buf[25..33].copy_from_slice(&(*total as u64).to_le_bytes());
            }
            WireMsg::Cts { send_id, recv_id } => {
                buf[0] = TAG_CTS;
                buf[1..9].copy_from_slice(&send_id.to_le_bytes());
                buf[9..17].copy_from_slice(&recv_id.to_le_bytes());
            }
            WireMsg::Data {
                recv_id,
                offset,
                data,
            } => {
                buf[0] = TAG_DATA;
                buf[1..9].copy_from_slice(&recv_id.to_le_bytes());
                buf[9..17].copy_from_slice(&(*offset as u64).to_le_bytes());
                buf[17..].copy_from_slice(data);
            }
            WireMsg::DataAck { send_id } => {
                buf[0] = TAG_DATA_ACK;
                buf[1..9].copy_from_slice(&send_id.to_le_bytes());
            }
            WireMsg::PersistBind { key, slot } => {
                buf[0] = TAG_PERSIST_BIND;
                hdr_into(&mut buf[1..17], key);
                buf[17..25].copy_from_slice(&slot.to_le_bytes());
            }
            WireMsg::Refire { slot, gen, data } => {
                buf[0] = TAG_REFIRE;
                buf[1..9].copy_from_slice(&slot.to_le_bytes());
                buf[9..17].copy_from_slice(&gen.to_le_bytes());
                buf[17..].copy_from_slice(data);
            }
            WireMsg::RefireRts {
                slot,
                gen,
                send_id,
                total,
            } => {
                buf[0] = TAG_REFIRE_RTS;
                buf[1..9].copy_from_slice(&slot.to_le_bytes());
                buf[9..17].copy_from_slice(&gen.to_le_bytes());
                buf[17..25].copy_from_slice(&send_id.to_le_bytes());
                buf[25..33].copy_from_slice(&(*total as u64).to_le_bytes());
            }
            WireMsg::PartData {
                slot,
                offset,
                part,
                data,
            } => {
                buf[0] = TAG_PART_DATA;
                buf[1..9].copy_from_slice(&slot.to_le_bytes());
                buf[9..17].copy_from_slice(&(*offset as u64).to_le_bytes());
                buf[17..21].copy_from_slice(&(*part as i32).to_le_bytes());
                buf[21..].copy_from_slice(data);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hdr() -> MsgHeader {
        MsgHeader {
            context_id: 1,
            src_rank: 0,
            tag: 5,
        }
    }

    #[test]
    fn wire_bytes_charges_payload_only() {
        assert_eq!(
            WireMsg::Eager {
                hdr: hdr(),
                data: vec![0; 10].into()
            }
            .wire_bytes(),
            10
        );
        assert_eq!(
            WireMsg::Rts {
                hdr: hdr(),
                send_id: 1,
                total: 1000
            }
            .wire_bytes(),
            0
        );
        assert_eq!(
            WireMsg::Cts {
                send_id: 1,
                recv_id: 2
            }
            .wire_bytes(),
            0
        );
        assert_eq!(
            WireMsg::Data {
                recv_id: 2,
                offset: 0,
                data: vec![0; 7].into()
            }
            .wire_bytes(),
            7
        );
        assert_eq!(WireMsg::DataAck { send_id: 1 }.wire_bytes(), 0);
        assert_eq!(
            WireMsg::PersistBind {
                key: hdr(),
                slot: 3
            }
            .wire_bytes(),
            0
        );
        assert_eq!(
            WireMsg::Refire {
                slot: 3,
                gen: 4,
                data: vec![0; 12].into()
            }
            .wire_bytes(),
            12
        );
        assert_eq!(
            WireMsg::RefireRts {
                slot: 3,
                gen: 4,
                send_id: 5,
                total: 100
            }
            .wire_bytes(),
            0
        );
        assert_eq!(
            WireMsg::PartData {
                slot: 3,
                offset: 64,
                part: 1,
                data: vec![0; 9].into()
            }
            .wire_bytes(),
            9
        );
    }

    #[test]
    fn frame_codec_roundtrips_every_variant() {
        let msgs = vec![
            WireMsg::Eager {
                hdr: MsgHeader {
                    context_id: u64::MAX,
                    src_rank: -1,
                    tag: i32::MIN,
                },
                data: (0..=255).collect::<Vec<u8>>().into(),
            },
            WireMsg::Eager {
                hdr: hdr(),
                data: vec![].into(),
            },
            WireMsg::Rts {
                hdr: hdr(),
                send_id: 7,
                total: 1 << 40,
            },
            WireMsg::Cts {
                send_id: 7,
                recv_id: 9,
            },
            WireMsg::Data {
                recv_id: 9,
                offset: 123_456,
                data: vec![0xAB; 3].into(),
            },
            WireMsg::DataAck { send_id: 7 },
            WireMsg::PersistBind {
                key: MsgHeader {
                    context_id: 42,
                    src_rank: 3,
                    tag: 17,
                },
                slot: u64::MAX - 1,
            },
            WireMsg::Refire {
                slot: 11,
                gen: 1 << 33,
                data: (0..=255).collect::<Vec<u8>>().into(),
            },
            WireMsg::Refire {
                slot: 11,
                gen: 0,
                data: vec![].into(),
            },
            WireMsg::RefireRts {
                slot: 11,
                gen: 2,
                send_id: 77,
                total: 1 << 30,
            },
            WireMsg::PartData {
                slot: 11,
                offset: 4096,
                part: u32::MAX,
                data: vec![0xCD; 5].into(),
            },
            WireMsg::PartData {
                slot: 11,
                offset: 0,
                part: 0,
                data: vec![].into(),
            },
        ];
        for msg in msgs {
            let mut buf = Vec::new();
            msg.encode(&mut buf);
            assert_eq!(WireMsg::decode(&buf), Some(msg.clone()));
            // decode_bytes agrees with decode on every variant.
            assert_eq!(
                WireMsg::decode_bytes(MpfaBytes::copy_from(&buf)),
                Some(msg.clone())
            );
            // encoded_len/encode_into produce the exact same frame.
            let len = msg.encoded_len().expect("every variant sizes itself");
            assert_eq!(len, buf.len());
            let mut direct = vec![0u8; len];
            msg.encode_into(&mut direct);
            assert_eq!(direct, buf);
        }
    }

    #[test]
    fn decode_bytes_slices_payload_without_copying() {
        let payload: Vec<u8> = (0..200).collect();
        let msg = WireMsg::Eager {
            hdr: hdr(),
            data: payload.clone().into(),
        };
        let mut buf = Vec::new();
        msg.encode(&mut buf);
        let view = MpfaBytes::from(buf);
        let base = view.as_ptr();
        match WireMsg::decode_bytes(view).unwrap() {
            WireMsg::Eager { data, .. } => {
                assert_eq!(&data[..], &payload[..]);
                // The payload is a slice of the delivered frame view, not
                // a fresh allocation: zero-copy receive.
                assert_eq!(data.as_ptr(), unsafe { base.add(17) });
            }
            other => panic!("wrong variant: {}", other.kind()),
        }
    }

    #[test]
    fn decode_bytes_slices_persist_payloads_without_copying() {
        let payload: Vec<u8> = (0..150).collect();
        for (msg, payload_at) in [
            (
                WireMsg::Refire {
                    slot: 9,
                    gen: 3,
                    data: payload.clone().into(),
                },
                17usize,
            ),
            (
                WireMsg::PartData {
                    slot: 9,
                    offset: 300,
                    part: 2,
                    data: payload.clone().into(),
                },
                21,
            ),
        ] {
            let mut buf = Vec::new();
            msg.encode(&mut buf);
            let view = MpfaBytes::from(buf);
            let base = view.as_ptr();
            let decoded = WireMsg::decode_bytes(view).unwrap();
            let data = match &decoded {
                WireMsg::Refire { data, .. } => data,
                WireMsg::PartData { data, .. } => data,
                other => panic!("wrong variant: {}", other.kind()),
            };
            assert_eq!(&data[..], &payload[..]);
            assert_eq!(data.as_ptr(), unsafe { base.add(payload_at) });
        }
    }

    #[test]
    fn frame_codec_rejects_malformed_payloads() {
        // Unknown variant tag.
        assert_eq!(WireMsg::decode(&[99]), None);
        // Empty payload.
        assert_eq!(WireMsg::decode(&[]), None);
        // Truncated fixed-size variant.
        let mut buf = Vec::new();
        WireMsg::DataAck { send_id: 1 }.encode(&mut buf);
        assert_eq!(WireMsg::decode(&buf[..buf.len() - 1]), None);
        // Trailing garbage after a fixed-size variant.
        buf.push(0);
        assert_eq!(WireMsg::decode(&buf), None);
        // Truncated persist handshake / rendezvous announce.
        let mut bind = Vec::new();
        WireMsg::PersistBind {
            key: MsgHeader {
                context_id: 1,
                src_rank: 0,
                tag: 0,
            },
            slot: 1,
        }
        .encode(&mut bind);
        assert_eq!(WireMsg::decode(&bind[..bind.len() - 1]), None);
        bind.push(0);
        assert_eq!(WireMsg::decode(&bind), None);
        let mut rts = Vec::new();
        WireMsg::RefireRts {
            slot: 1,
            gen: 0,
            send_id: 2,
            total: 3,
        }
        .encode(&mut rts);
        assert_eq!(WireMsg::decode(&rts[..rts.len() - 1]), None);
    }

    #[test]
    fn kinds() {
        assert_eq!(
            WireMsg::Eager {
                hdr: hdr(),
                data: vec![].into()
            }
            .kind(),
            "eager"
        );
        assert_eq!(WireMsg::DataAck { send_id: 0 }.kind(), "ack");
        assert_eq!(
            WireMsg::PersistBind {
                key: hdr(),
                slot: 0
            }
            .kind(),
            "bind"
        );
        assert_eq!(
            WireMsg::Refire {
                slot: 0,
                gen: 0,
                data: vec![].into()
            }
            .kind(),
            "refire"
        );
        assert_eq!(
            WireMsg::RefireRts {
                slot: 0,
                gen: 0,
                send_id: 0,
                total: 0
            }
            .kind(),
            "refire-rts"
        );
        assert_eq!(
            WireMsg::PartData {
                slot: 0,
                offset: 0,
                part: 0,
                data: vec![].into()
            }
            .kind(),
            "part"
        );
    }
}

//! The four subsystem progress hooks of the collated progress function —
//! this module *is* the paper's Listing 1.1, one [`ProgressHook`] per entry:
//!
//! ```c
//! Datatype_engine_progress(&made_progress);   // DtEngineHook
//! Collective_sched_progress(&made_progress);  // CollSchedHook
//! Shmem_progress(&made_progress);             // ShmemHook
//! Netmod_progress(&made_progress);            // NetmodHook (last: its
//!                                             //  empty poll is not free)
//! ```
//!
//! The ordering and short-circuiting live in `mpfa_core`'s engine; this
//! module supplies the class assignments and the cheap `has_work` answers
//! (a single atomic read each).

use std::sync::{Arc, Weak};

use mpfa_core::{ProgressHook, SubsystemClass};

use crate::dtengine::DtEngine;
use crate::sched::SchedQueue;
use crate::vci::Vci;

/// How many packets a netmod/shmem hook processes per poll. Bounds the
/// time one progress call can spend inside a single hook (the Figure 8
/// lesson: a heavy poll delays every other collated task).
pub const POLL_BATCH: usize = 16;

/// `Datatype_engine_progress`: advances asynchronous pack/unpack jobs.
pub struct DtEngineHook {
    engine: Arc<DtEngine>,
}

impl DtEngineHook {
    /// Hook over a shared engine.
    pub fn new(engine: Arc<DtEngine>) -> Self {
        DtEngineHook { engine }
    }
}

impl ProgressHook for DtEngineHook {
    fn name(&self) -> &str {
        "datatype-engine"
    }
    fn class(&self) -> SubsystemClass {
        SubsystemClass::DatatypeEngine
    }
    fn has_work(&self) -> bool {
        self.engine.pending() > 0
    }
    fn poll(&self) -> bool {
        self.engine.poll()
    }
}

/// `Collective_sched_progress`: advances active collective schedules.
pub struct CollSchedHook {
    queue: Arc<SchedQueue>,
}

impl CollSchedHook {
    /// Hook over a shared schedule queue.
    pub fn new(queue: Arc<SchedQueue>) -> Self {
        CollSchedHook { queue }
    }
}

impl ProgressHook for CollSchedHook {
    fn name(&self) -> &str {
        "coll-sched"
    }
    fn class(&self) -> SubsystemClass {
        SubsystemClass::CollectiveSched
    }
    fn has_work(&self) -> bool {
        self.queue.pending() > 0
    }
    fn poll(&self) -> bool {
        self.queue.poll()
    }
}

/// `Shmem_progress`: processes intra-node packets for one VCI.
///
/// Holds its VCI weakly: the hook lives inside the stream's engine and
/// the VCI holds the stream, so a strong reference here would form a
/// `Stream → hook → Vci → Stream` cycle that keeps the whole
/// world — transport sockets, reactor thread, segment mappings — alive
/// forever after teardown.
pub struct ShmemHook {
    vci: Weak<Vci>,
}

impl ShmemHook {
    /// Hook over a VCI's shmem path.
    pub fn new(vci: Arc<Vci>) -> Self {
        ShmemHook {
            vci: Arc::downgrade(&vci),
        }
    }
}

impl ProgressHook for ShmemHook {
    fn name(&self) -> &str {
        "shmem"
    }
    fn class(&self) -> SubsystemClass {
        SubsystemClass::Shmem
    }
    fn has_work(&self) -> bool {
        self.vci.upgrade().is_some_and(|v| v.queued_shmem() > 0)
    }
    fn poll(&self) -> bool {
        self.vci.upgrade().is_some_and(|v| v.poll_shmem(POLL_BATCH))
    }
}

/// `Netmod_progress`: processes inter-node packets and sweeps protocol
/// state (eager TX completions) for one VCI. Placed last in the collation
/// order; skipped whenever an earlier subsystem progressed.
pub struct NetmodHook {
    /// Weak for the same cycle-breaking reason as [`ShmemHook`].
    vci: Weak<Vci>,
}

impl NetmodHook {
    /// Hook over a VCI's network path.
    pub fn new(vci: Arc<Vci>) -> Self {
        NetmodHook {
            vci: Arc::downgrade(&vci),
        }
    }
}

impl ProgressHook for NetmodHook {
    fn name(&self) -> &str {
        "netmod"
    }
    fn class(&self) -> SubsystemClass {
        SubsystemClass::Netmod
    }
    fn has_work(&self) -> bool {
        // `transport_work` is the transport's `external_work`: under the
        // epoll reactor it is wakeup-driven (readiness bitmap, dirty-TX
        // and dirty-connection sets fed by the reactor thread), and the
        // shm backend reports actual ring occupancy — so an idle wire
        // world answers false here and the engine suppresses the netmod
        // poll entirely. Only the legacy scan path (`MPFA_REACTOR=0`)
        // still answers "live peers => maybe buffered bytes => work".
        // Always false on the simulated fabric, so sim worlds keep the
        // poll-suppression behaviour unchanged.
        self.vci
            .upgrade()
            .is_some_and(|v| v.queued_net() > 0 || v.protocol_work() > 0 || v.transport_work())
    }
    fn poll(&self) -> bool {
        let Some(v) = self.vci.upgrade() else {
            return false;
        };
        let pkts = v.poll_net(POLL_BATCH);
        let tx = v.sweep_tx();
        pkts || tx
    }
}

/// Register the full Listing-1.1 hook set for one VCI on its stream.
/// Returns the hook ids in registration order
/// (dt-engine, coll-sched, shmem, netmod).
pub fn register_all(
    vci: &Arc<Vci>,
    dt: &Arc<DtEngine>,
    sched: &Arc<SchedQueue>,
) -> [mpfa_core::HookId; 4] {
    let stream = vci.stream().clone();
    [
        stream.register_hook(DtEngineHook::new(dt.clone())),
        stream.register_hook(CollSchedHook::new(sched.clone())),
        stream.register_hook(ShmemHook::new(vci.clone())),
        stream.register_hook(NetmodHook::new(vci.clone())),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::ProtoConfig;
    use crate::wire::{MsgHeader, WireMsg};
    use mpfa_core::Stream;
    use mpfa_fabric::{Fabric, FabricConfig};

    fn vci_on(stream: &Stream, fabric: &Fabric<WireMsg>, rank: usize) -> Arc<Vci> {
        Vci::new(
            fabric.endpoint(rank),
            stream.clone(),
            ProtoConfig::default(),
        )
    }

    #[test]
    fn classes_match_listing_order() {
        let fabric: Fabric<WireMsg> = Fabric::new(FabricConfig::instant(1));
        let s = Stream::create();
        let v = vci_on(&s, &fabric, 0);
        assert_eq!(
            DtEngineHook::new(DtEngine::shared()).class(),
            SubsystemClass::DatatypeEngine
        );
        assert_eq!(
            CollSchedHook::new(SchedQueue::shared()).class(),
            SubsystemClass::CollectiveSched
        );
        assert_eq!(ShmemHook::new(v.clone()).class(), SubsystemClass::Shmem);
        assert_eq!(NetmodHook::new(v).class(), SubsystemClass::Netmod);
    }

    #[test]
    fn idle_hooks_report_no_work() {
        let fabric: Fabric<WireMsg> = Fabric::new(FabricConfig::instant(1));
        let s = Stream::create();
        let v = vci_on(&s, &fabric, 0);
        let dt = DtEngine::shared();
        let q = SchedQueue::shared();
        assert!(!DtEngineHook::new(dt).has_work());
        assert!(!CollSchedHook::new(q).has_work());
        assert!(!ShmemHook::new(v.clone()).has_work());
        assert!(!NetmodHook::new(v).has_work());
    }

    #[test]
    fn stream_progress_drives_message_delivery() {
        // End-to-end through the core engine: two ranks, registered hooks,
        // message completes under Stream::progress alone.
        let fabric: Fabric<WireMsg> = Fabric::new(FabricConfig::instant(2));
        let s0 = Stream::create();
        let s1 = Stream::create();
        let v0 = vci_on(&s0, &fabric, 0);
        let v1 = vci_on(&s1, &fabric, 1);
        let (dt0, q0) = (DtEngine::shared(), SchedQueue::shared());
        let (dt1, q1) = (DtEngine::shared(), SchedQueue::shared());
        register_all(&v0, &dt0, &q0);
        register_all(&v1, &dt1, &q1);
        assert_eq!(s0.hook_count(), 4);

        let (rreq, slot) = v1.irecv_bytes(9, 0, 5, 1024);
        let sreq = v0.isend_bytes(
            v1.ep_index(),
            MsgHeader {
                context_id: 9,
                src_rank: 0,
                tag: 5,
            },
            vec![1, 2, 3, 4],
        );
        while !(rreq.is_complete() && sreq.is_complete()) {
            s0.progress();
            s1.progress();
        }
        assert_eq!(slot.take(), vec![1, 2, 3, 4]);
    }

    #[test]
    fn netmod_reports_work_for_pending_tx() {
        let proto = ProtoConfig {
            buffered_max: 0,
            ..ProtoConfig::default()
        };
        let fabric: Fabric<WireMsg> = Fabric::new(FabricConfig::instant(2));
        let s = Stream::create();
        let v0 = Vci::new(fabric.endpoint(0), s.clone(), proto);
        let hook = NetmodHook::new(v0.clone());
        assert!(!hook.has_work());
        let _req = v0.isend_bytes(
            1,
            MsgHeader {
                context_id: 1,
                src_rank: 0,
                tag: 0,
            },
            vec![0; 64],
        );
        assert!(hook.has_work(), "pending TX must show as netmod work");
    }
}

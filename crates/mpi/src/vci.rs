//! Virtual communication interfaces: per-stream protocol engines.
//!
//! A [`Vci`] bundles one fabric endpoint with the matching engine and the
//! point-to-point protocol state machines that serve it. Each VCI is
//! served by exactly one stream's progress hooks, which is how "operations
//! on a stream communicator [are] associated with the corresponding
//! MPIX_Stream context" (paper §3.1) becomes freedom from cross-stream lock
//! contention: two VCIs share no mutable state.

use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;

use mpfa_core::sync::Mutex;
use mpfa_core::{wtime, Completer, Request, RequestError, Status, Stream};
use mpfa_fabric::{Endpoint, Path, TxHandle};
use mpfa_transport::{MpfaBytes, Transport};

use crate::matching::{MatchState, PostedRecv, RecvSlot, Unexpected};
use crate::protocol::{ProtoConfig, SendMode};
use crate::wire::{MsgHeader, WireMsg};

/// Identity of a persistent pair before its slot is bound: the wire
/// point-to-point context, the sender's comm rank, and the tag — the
/// triple an ordinary send would have been *matched* on. After the
/// [`WireMsg::PersistBind`] handshake the pair is addressed by a compact
/// slot id instead and never touches tag matching again.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PersistKey {
    /// Wire context id (a communicator's point-to-point context).
    pub ctx: u64,
    /// Sender's rank within the communicator.
    pub src_rank: i32,
    /// User tag.
    pub tag: i32,
}

/// Sender-side view of one persistent binding.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum BindState {
    /// The receiver's `recv_init` bind has not arrived yet.
    Unbound,
    /// Bound to the receiver's slot id: fires are slot-addressed.
    Bound(u64),
    /// Invalidated by comm revoke or peer failure; `start` must take
    /// the one-shot fallback path.
    Revoked,
}

/// Per-partition arrival flags of a partitioned receive, shared with
/// `parrived` callers lock-free. Reset at each `start` (re-fire
/// generation); set as the last byte of each partition lands.
pub struct PartFlags {
    flags: Vec<AtomicBool>,
}

impl PartFlags {
    fn new(n: usize) -> Arc<PartFlags> {
        Arc::new(PartFlags {
            flags: (0..n).map(|_| AtomicBool::new(false)).collect(),
        })
    }

    /// `MPI_Parrived`: has partition `i` of the current round fully landed?
    pub fn arrived(&self, i: usize) -> bool {
        self.flags[i].load(Ordering::Acquire)
    }

    /// Number of partitions.
    pub fn len(&self) -> usize {
        self.flags.len()
    }

    /// True when the round has no partitions (never, in practice).
    pub fn is_empty(&self) -> bool {
        self.flags.is_empty()
    }

    fn set(&self, i: usize) {
        if let Some(f) = self.flags.get(i) {
            f.store(true, Ordering::Release);
        }
    }

    fn reset(&self) {
        for f in &self.flags {
            f.store(false, Ordering::Release);
        }
    }
}

/// A fire that arrived before the receiver armed the matching round.
/// FIFO transport order per endpoint pair keeps these in generation
/// order, so a later `start` pops exactly its own round's arrival.
enum PersistArrival {
    Eager {
        data: MpfaBytes,
    },
    Rts {
        send_id: u64,
        total: usize,
        from_ep: usize,
    },
    Part {
        offset: usize,
        part: u32,
        data: MpfaBytes,
    },
}

/// The receiver's currently armed re-fire round.
struct ArmedRound {
    slot: RecvSlot,
    completer: Completer,
    /// Bytes landed so far (partitioned rounds).
    received: usize,
    /// Remaining bytes per partition (empty for plain slots).
    part_remaining: Vec<usize>,
}

/// What a persistent receive slot is shaped for.
enum SlotKind {
    /// Ordinary persistent receive: one buffer per round.
    Plain { capacity: usize },
    /// Partitioned receive: per-partition arrival accounting.
    Part {
        total: usize,
        partitions: usize,
        arrived: Arc<PartFlags>,
    },
}

/// One receiver-side persistent slot: the pinned matching bucket.
///
/// A slot is durable per key: freeing the descriptor *disowns* it but
/// keeps it (and its pending queue) alive, because the sender's
/// binding still addresses this id — stale-looking refires are the
/// moral equivalent of the unexpected-message queue, and a later
/// `recv_init` on the same key re-owns the slot without a second
/// handshake. Only comm revoke / peer failure truly removes a slot.
struct PersistSlot {
    key: PersistKey,
    /// The sender's wire endpoint (fault sweeps fail slots whose
    /// sender died).
    sender_ep: usize,
    kind: SlotKind,
    /// Fires that arrived before their round was armed.
    pending: VecDeque<PersistArrival>,
    armed: Option<ArmedRound>,
    /// Whether a live persistent-recv descriptor owns this slot.
    owned: bool,
}

/// Sender-side binding of a persistent send to its receiver slot.
struct PersistBinding {
    dst_ep: usize,
    slot: Option<u64>,
    revoked: bool,
    /// Whether a live persistent-send descriptor owns this binding
    /// (two concurrent descriptors on one key would corrupt rounds).
    claimed: bool,
}

/// Readiness of one partition of an active partitioned send round.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum PartState {
    Unready,
    Ready,
    Sent,
}

/// An active partitioned send round (sender side). `pready` flips
/// partitions to `Ready` from any thread; the progress sweep feeds
/// ready partitions into the wire as [`WireMsg::PartData`] chunks.
struct PartRound {
    ctx: u64,
    slot: u64,
    dst_ep: usize,
    /// Full round payload; partition chunks are slices of this view.
    data: MpfaBytes,
    /// Partition size in bytes (the last partition may be shorter).
    psize: usize,
    state: Vec<PartState>,
    sent: usize,
    /// When the round started (virtual-clock aware) — feeds the
    /// unready-partition stall gauge the doctor reads.
    started_at: f64,
    completer: Option<Completer>,
}

/// A rendezvous send in flight (sender side).
struct RndvSend {
    /// Full payload; chunks are sliced out of this view, so pumping the
    /// pipeline never copies on the send side.
    data: MpfaBytes,
    dst_ep: usize,
    /// Next unsent byte offset.
    offset: usize,
    /// Chunks currently on the wire without an ack.
    inflight: usize,
    /// Chunks acknowledged by the receiver.
    acked: usize,
    /// Receiver request id (known after CTS).
    recv_id: Option<u64>,
    completer: Option<Completer>,
}

/// A rendezvous receive in flight (receiver side).
struct RndvRecv {
    slot: RecvSlot,
    total: usize,
    received: usize,
    src_rank: i32,
    tag: i32,
    send_id: u64,
    reply_ep: usize,
    completer: Option<Completer>,
}

/// An eager send awaiting NIC TX completion.
struct TxPending {
    tx: TxHandle,
    /// Destination wire endpoint (the fault sweep fails pending sends
    /// by where they were headed).
    dst_ep: usize,
    completer: Completer,
    status: Status,
}

#[derive(Default)]
struct VciState {
    matching: HashMap<u64, MatchState>,
    sends: HashMap<u64, RndvSend>,
    recvs: HashMap<u64, RndvRecv>,
    tx_pending: Vec<TxPending>,
    /// Receiver-side persistent slots by slot id (the pinned buckets).
    persist_slots: HashMap<u64, PersistSlot>,
    /// Key → slot id, so a duplicate `recv_init` is rejected.
    persist_keys: HashMap<PersistKey, u64>,
    /// Sender-side bindings by key.
    persist_bindings: HashMap<PersistKey, PersistBinding>,
    /// Active partitioned send rounds by round id.
    part_rounds: HashMap<u64, PartRound>,
    next_id: u64,
}

/// One virtual communication interface: transport endpoint + protocol
/// state, served by a single stream's hooks.
pub struct Vci {
    /// The packet substrate carrying this VCI's traffic (simulated
    /// fabric or a real wire backend — the protocol code cannot tell).
    port: Arc<dyn Transport<WireMsg>>,
    /// This VCI's wire endpoint index on `port`.
    ep: usize,
    stream: Stream,
    proto: ProtoConfig,
    state: Mutex<VciState>,
    /// Pending protocol items (rendezvous transfers + TX completions);
    /// lets the netmod hook's `has_work` stay one atomic read.
    work: AtomicUsize,
    /// Whether this VCI currently asserts the partitioned-stall gauge
    /// (so a VCI with no stalled rounds doesn't clobber another's
    /// assertion every sweep).
    stall_asserted: AtomicBool,
}

impl Vci {
    /// Create a VCI over the fabric endpoint `ep`, served by `stream`.
    ///
    /// Convenience wrapper over [`Vci::on_transport`] for the simulated
    /// fabric (every `Fabric` is a [`Transport`]).
    pub fn new(ep: Endpoint<WireMsg>, stream: Stream, proto: ProtoConfig) -> Arc<Vci> {
        let index = ep.rank();
        Vci::on_transport(Arc::new(ep.fabric().clone()), index, stream, proto)
    }

    /// Create a VCI over wire endpoint `ep` of an arbitrary transport,
    /// served by `stream`.
    pub fn on_transport(
        port: Arc<dyn Transport<WireMsg>>,
        ep: usize,
        stream: Stream,
        proto: ProtoConfig,
    ) -> Arc<Vci> {
        proto.validate();
        assert!(
            ep < port.endpoints(),
            "endpoint {ep} out of range for a {}-endpoint transport",
            port.endpoints()
        );
        Arc::new(Vci {
            port,
            ep,
            stream,
            proto,
            state: Mutex::new(VciState::default()),
            work: AtomicUsize::new(0),
            stall_asserted: AtomicBool::new(false),
        })
    }

    /// The stream serving this VCI.
    pub fn stream(&self) -> &Stream {
        &self.stream
    }

    /// The wire endpoint index of this VCI.
    pub fn ep_index(&self) -> usize {
        self.ep
    }

    /// Protocol tunables in force.
    pub fn proto(&self) -> &ProtoConfig {
        &self.proto
    }

    /// Pending protocol items (diagnostics / `has_work`).
    pub fn protocol_work(&self) -> usize {
        self.work.load(Ordering::Acquire)
    }

    /// Packets queued for this VCI on the network path.
    pub fn queued_net(&self) -> usize {
        self.port.queued(self.ep, Path::Net)
    }

    /// Packets queued for this VCI on the shmem path.
    pub fn queued_shmem(&self) -> usize {
        self.port.queued(self.ep, Path::Shmem)
    }

    /// True when the transport can make progress invisible to
    /// [`Vci::queued_net`] — bytes in kernel socket buffers, pending
    /// reconnects. Always false on the simulated fabric.
    pub fn transport_work(&self) -> bool {
        self.port.external_work()
    }

    // ---------------------------------------------------------------
    // Initiation side
    // ---------------------------------------------------------------

    /// Nonblocking byte send to wire endpoint `dst_ep`.
    ///
    /// Picks the message mode by size (Figure 1(a)–(c)) and returns the
    /// request tracking completion. A transport that carries large
    /// contiguous frames cheaply (the shared-memory ring) advertises an
    /// eager ceiling via [`Transport::eager_hint`]; rendezvous-size
    /// payloads under that ceiling are promoted to a single eager frame,
    /// which on such a backend travels — and lands — without a copy.
    pub fn isend_bytes(
        &self,
        dst_ep: usize,
        hdr: MsgHeader,
        bytes: impl Into<MpfaBytes>,
    ) -> Request {
        let bytes = bytes.into();
        let mut mode = self.proto.mode_for(bytes.len());
        if mode == SendMode::Rendezvous {
            if let Some(max) = self.port.eager_hint() {
                if bytes.len() <= max {
                    mode = SendMode::Eager;
                }
            }
        }
        self.isend_bytes_mode(dst_ep, hdr, bytes, mode)
    }

    /// [`Vci::isend_bytes`] with an explicit mode override (protocol
    /// testing; e.g. force a small message through the rendezvous path).
    pub fn isend_bytes_mode(
        &self,
        dst_ep: usize,
        hdr: MsgHeader,
        bytes: impl Into<MpfaBytes>,
        mode: SendMode,
    ) -> Request {
        let bytes = bytes.into();
        let n = bytes.len();
        match mode {
            SendMode::Buffered => {
                // Lightweight send: inject and complete immediately; the
                // payload view is captured by the packet, so the caller
                // holds no aliasing obligation.
                mpfa_obs::global_counters()
                    .eager_msgs
                    .fetch_add(1, Ordering::Relaxed);
                mpfa_obs::record(|| mpfa_obs::EventKind::EagerSend {
                    src: self.ep as u32,
                    dst: dst_ep as u32,
                    bytes: n as u64,
                    buffered: true,
                });
                let tx = self
                    .port
                    .send(self.ep, dst_ep, WireMsg::Eager { hdr, data: bytes }, n);
                if tx.is_failed() {
                    // The transport refused delivery synchronously (dead
                    // peer): even a buffered send must not report local
                    // success for a message that can never arrive.
                    return Request::failed(&self.stream, RequestError::PeerFailed { rank: -1 });
                }
                Request::completed(
                    &self.stream,
                    Status {
                        source: hdr.src_rank,
                        tag: hdr.tag,
                        bytes: n,
                        cancelled: false,
                    },
                )
            }
            SendMode::Eager => {
                mpfa_obs::global_counters()
                    .eager_msgs
                    .fetch_add(1, Ordering::Relaxed);
                mpfa_obs::record(|| mpfa_obs::EventKind::EagerSend {
                    src: self.ep as u32,
                    dst: dst_ep as u32,
                    bytes: n as u64,
                    buffered: false,
                });
                let (req, completer) = Request::pair(&self.stream);
                let tx = self
                    .port
                    .send(self.ep, dst_ep, WireMsg::Eager { hdr, data: bytes }, n);
                let mut st = self.state.lock();
                st.tx_pending.push(TxPending {
                    tx,
                    dst_ep,
                    completer,
                    status: Status {
                        source: hdr.src_rank,
                        tag: hdr.tag,
                        bytes: n,
                        cancelled: false,
                    },
                });
                drop(st);
                self.work.fetch_add(1, Ordering::Release);
                req
            }
            SendMode::Rendezvous => {
                let (req, completer) = Request::pair(&self.stream);
                let send_id = {
                    let mut st = self.state.lock();
                    let id = st.next_id;
                    st.next_id += 1;
                    st.sends.insert(
                        id,
                        RndvSend {
                            data: bytes,
                            dst_ep,
                            offset: 0,
                            inflight: 0,
                            acked: 0,
                            recv_id: None,
                            completer: Some(completer),
                        },
                    );
                    id
                };
                self.work.fetch_add(1, Ordering::Release);
                mpfa_obs::global_counters()
                    .rndv_started
                    .fetch_add(1, Ordering::Relaxed);
                mpfa_obs::record(|| mpfa_obs::EventKind::RndvRts {
                    send_id,
                    src: self.ep as u32,
                    dst: dst_ep as u32,
                    total: n as u64,
                });
                self.port.send(
                    self.ep,
                    dst_ep,
                    WireMsg::Rts {
                        hdr,
                        send_id,
                        total: n,
                    },
                    0,
                );
                req
            }
        }
    }

    /// Nonblocking byte receive on context `ctx` from `(src, tag)`
    /// (wildcards allowed). The payload lands in the returned slot when the
    /// request completes.
    pub fn irecv_bytes(
        &self,
        ctx: u64,
        src: i32,
        tag: i32,
        capacity: usize,
    ) -> (Request, RecvSlot) {
        let (req, completer) = Request::pair(&self.stream);
        let slot = RecvSlot::new();
        let recv = PostedRecv {
            src,
            tag,
            capacity,
            slot: slot.clone(),
            completer,
        };

        let matched = {
            let mut st = self.state.lock();
            st.matching.entry(ctx).or_default().post_recv(recv)
        };
        if let Some((recv, unexpected)) = matched {
            self.deliver_unexpected(recv, unexpected);
        }
        (req, slot)
    }

    /// `MPI_Iprobe` on context `ctx`: peek `(src, tag, bytes)` of a
    /// matching unexpected message.
    pub fn iprobe(&self, ctx: u64, src: i32, tag: i32) -> Option<(i32, i32, usize)> {
        let st = self.state.lock();
        st.matching
            .get(&ctx)
            .and_then(|m| m.probe_unexpected(src, tag))
    }

    // ---------------------------------------------------------------
    // Progress side (called from subsystem hooks, under the stream lock)
    // ---------------------------------------------------------------

    /// Process up to `batch` arrived network-path packets. Returns true if
    /// anything was processed.
    ///
    /// Arrived packets are drained from the fabric heap in one lock hold
    /// (batched), then processed from the caller-local buffer — senders
    /// pushing new packets contend with one short drain instead of one
    /// lock acquisition per packet. Per-sender ordering is safe because
    /// hooks run under the stream's engine lock: only one thread processes
    /// this VCI's packets at a time.
    pub fn poll_net(&self, batch: usize) -> bool {
        // Pump transport machinery first (flush TX queues, read sockets,
        // drive reconnects); a no-op returning false on the simulated
        // fabric.
        let pumped = self.port.progress();
        let mut arrived = Vec::new();
        self.port.poll(self.ep, Path::Net, batch, &mut arrived);
        let any = !arrived.is_empty();
        for env in arrived {
            self.process(env.src, env.msg);
        }
        any || pumped
    }

    /// Process up to `batch` arrived shmem-path packets; see
    /// [`Vci::poll_net`].
    pub fn poll_shmem(&self, batch: usize) -> bool {
        let mut arrived = Vec::new();
        self.port.poll(self.ep, Path::Shmem, batch, &mut arrived);
        let any = !arrived.is_empty();
        for env in arrived {
            self.process(env.src, env.msg);
        }
        any
    }

    /// Sweep eager TX completions (the sender-side wait block of
    /// Figure 1(b)) and pump ready partitions of active partitioned
    /// rounds into the wire. Returns true if any send completed or any
    /// partition data moved.
    pub fn sweep_tx(&self) -> bool {
        let pumped = self.pump_persist();
        if self.work.load(Ordering::Acquire) == 0 {
            return pumped;
        }
        let mut completed = Vec::new();
        {
            let mut st = self.state.lock();
            let mut i = 0;
            while i < st.tx_pending.len() {
                if st.tx_pending[i].tx.is_done() {
                    completed.push(st.tx_pending.swap_remove(i));
                } else {
                    i += 1;
                }
            }
        }
        let n = completed.len();
        for tx in completed {
            // A failed handle also reports done (so waits terminate);
            // distinguish delivery failure from success here.
            if tx.tx.is_failed() {
                tx.completer.fail(RequestError::PeerFailed { rank: -1 });
            } else {
                tx.completer.complete(tx.status);
            }
        }
        if n > 0 {
            self.work.fetch_sub(n, Ordering::Release);
        }
        n > 0 || pumped
    }

    // ---------------------------------------------------------------
    // Fault path (called by the resilience sweep)
    // ---------------------------------------------------------------

    /// Fail every in-flight send whose destination endpoint `dead_ep`
    /// accepts — pending eager TX entries and rendezvous sends — plus
    /// rendezvous receives whose *reply* endpoint is dead (their
    /// remaining chunks can never arrive). Each affected request
    /// completes with `err`. Returns how many operations were failed.
    pub fn fail_sends_to(&self, dead_ep: &dyn Fn(usize) -> bool, err: RequestError) -> usize {
        let mut failed_completers: Vec<Completer> = Vec::new();
        let mut removed_work = 0usize;
        {
            let mut st = self.state.lock();
            let mut i = 0;
            while i < st.tx_pending.len() {
                if dead_ep(st.tx_pending[i].dst_ep) {
                    let tx = st.tx_pending.swap_remove(i);
                    failed_completers.push(tx.completer);
                    removed_work += 1;
                } else {
                    i += 1;
                }
            }
            let dead_sends: Vec<u64> = st
                .sends
                .iter()
                .filter(|(_, s)| dead_ep(s.dst_ep))
                .map(|(id, _)| *id)
                .collect();
            for id in dead_sends {
                if let Some(send) = st.sends.remove(&id) {
                    failed_completers.extend(send.completer);
                    removed_work += 1;
                }
            }
            let dead_recvs: Vec<u64> = st
                .recvs
                .iter()
                .filter(|(_, r)| dead_ep(r.reply_ep))
                .map(|(id, _)| *id)
                .collect();
            for id in dead_recvs {
                if let Some(recv) = st.recvs.remove(&id) {
                    failed_completers.extend(recv.completer);
                    removed_work += 1;
                }
            }
        }
        if removed_work > 0 {
            self.work.fetch_sub(removed_work, Ordering::Release);
        }
        let n = failed_completers.len();
        for c in failed_completers {
            c.fail(err);
        }
        n
    }

    /// Fail every posted (not yet matched) receive on context `ctx`
    /// whose `(src, tag)` the predicate accepts. Wildcard receives carry
    /// `ANY_SOURCE` / `ANY_TAG` into the predicate unchanged, so a
    /// `src == dead_rank` predicate leaves them posted. Returns how many
    /// receives were failed.
    pub fn fail_posted_recvs(
        &self,
        ctx: u64,
        pred: &dyn Fn(i32, i32) -> bool,
        err: RequestError,
    ) -> usize {
        let drained = {
            let mut st = self.state.lock();
            match st.matching.get_mut(&ctx) {
                Some(ms) => ms.drain_posted(pred),
                None => return 0,
            }
        };
        let n = drained.len();
        for recv in drained {
            recv.completer.fail(err);
        }
        n
    }

    /// Handle one wire message. `from_ep` is the sender's wire endpoint.
    fn process(&self, from_ep: usize, msg: WireMsg) {
        match msg {
            WireMsg::Eager { hdr, data } => {
                // Match and (if unmatched) enqueue under ONE lock
                // acquisition: releasing between the two would let a
                // concurrent irecv slip into the posted queue and leave
                // this message stranded in the unexpected queue.
                let matched = {
                    let mut st = self.state.lock();
                    let ms = st.matching.entry(hdr.context_id).or_default();
                    let hit = ms.match_incoming(hdr.src_rank, hdr.tag);
                    if hit.is_none() {
                        ms.push_unexpected(Unexpected::Eager {
                            src: hdr.src_rank,
                            tag: hdr.tag,
                            data,
                        });
                        None
                    } else {
                        hit.map(|recv| (recv, data))
                    }
                };
                if let Some((recv, data)) = matched {
                    Self::complete_eager_recv(recv, hdr.src_rank, hdr.tag, data);
                }
            }
            WireMsg::Rts {
                hdr,
                send_id,
                total,
            } => {
                let matched = {
                    let mut st = self.state.lock();
                    let ms = st.matching.entry(hdr.context_id).or_default();
                    match ms.match_incoming(hdr.src_rank, hdr.tag) {
                        Some(recv) => Some(recv),
                        None => {
                            ms.push_unexpected(Unexpected::Rts {
                                src: hdr.src_rank,
                                tag: hdr.tag,
                                send_id,
                                total,
                                reply_ep: from_ep,
                            });
                            None
                        }
                    }
                };
                if let Some(recv) = matched {
                    self.start_rndv_recv(recv, hdr.src_rank, hdr.tag, send_id, total, from_ep);
                }
            }
            WireMsg::Cts { send_id, recv_id } => {
                let mut st = self.state.lock();
                if let Some(send) = st.sends.get_mut(&send_id) {
                    mpfa_obs::global_counters()
                        .rndv_granted
                        .fetch_add(1, Ordering::Relaxed);
                    mpfa_obs::record(|| mpfa_obs::EventKind::RndvCts { send_id, recv_id });
                    send.recv_id = Some(recv_id);
                    Self::pump_chunks(&*self.port, self.ep, &self.proto, send);
                }
            }
            WireMsg::Data {
                recv_id,
                offset,
                data,
            } => {
                mpfa_obs::record(|| mpfa_obs::EventKind::RndvData {
                    recv_id,
                    offset: offset as u64,
                    bytes: data.len().min(u32::MAX as usize) as u32,
                });
                let done = {
                    let mut st = self.state.lock();
                    let Some(recv) = st.recvs.get_mut(&recv_id) else {
                        return;
                    };
                    let dlen = data.len();
                    if offset == 0 && dlen == recv.total {
                        // Whole payload in one chunk: keep the delivered
                        // view instead of copying it out (zero-copy
                        // single-chunk rendezvous).
                        recv.slot.set_bytes(data);
                    } else {
                        recv.slot.write_at(recv.total, offset, &data);
                    }
                    recv.received += dlen;
                    // Flow-control credit back to the sender.
                    self.port.send(
                        self.ep,
                        recv.reply_ep,
                        WireMsg::DataAck {
                            send_id: recv.send_id,
                        },
                        0,
                    );
                    if recv.received >= recv.total {
                        st.recvs.remove(&recv_id)
                    } else {
                        None
                    }
                };
                if let Some(recv) = done {
                    self.work.fetch_sub(1, Ordering::Release);
                    mpfa_obs::record(|| mpfa_obs::EventKind::RndvDone {
                        id: recv_id,
                        bytes: recv.total as u64,
                        sender: false,
                    });
                    if let Some(completer) = recv.completer {
                        completer.complete(Status {
                            source: recv.src_rank,
                            tag: recv.tag,
                            bytes: recv.total,
                            cancelled: false,
                        });
                    }
                }
            }
            WireMsg::DataAck { send_id } => {
                let done = {
                    let mut st = self.state.lock();
                    let Some(send) = st.sends.get_mut(&send_id) else {
                        return;
                    };
                    send.inflight -= 1;
                    send.acked += 1;
                    Self::pump_chunks(&*self.port, self.ep, &self.proto, send);
                    let total_chunks = self.proto.chunks_of(send.data.len());
                    if send.acked >= total_chunks {
                        st.sends.remove(&send_id)
                    } else {
                        None
                    }
                };
                if let Some(send) = done {
                    self.work.fetch_sub(1, Ordering::Release);
                    mpfa_obs::global_counters()
                        .rndv_completed
                        .fetch_add(1, Ordering::Relaxed);
                    mpfa_obs::record(|| mpfa_obs::EventKind::RndvDone {
                        id: send_id,
                        bytes: send.data.len() as u64,
                        sender: true,
                    });
                    if let Some(completer) = send.completer {
                        completer.complete(Status {
                            source: -1,
                            tag: -1,
                            bytes: send.data.len(),
                            cancelled: false,
                        });
                    }
                }
            }
            WireMsg::PersistBind { key, slot } => {
                // Receiver announced its slot: record the binding. The
                // entry may not exist yet if the bind raced ahead of
                // `send_init` registering interest; create it — the
                // destination endpoint is where the bind came from,
                // which is exactly where fires must go.
                let pkey = PersistKey {
                    ctx: key.context_id,
                    src_rank: key.src_rank,
                    tag: key.tag,
                };
                let mut st = self.state.lock();
                let b = st.persist_bindings.entry(pkey).or_insert(PersistBinding {
                    dst_ep: from_ep,
                    slot: None,
                    revoked: false,
                    claimed: false,
                });
                b.slot = Some(slot);
            }
            WireMsg::Refire { slot, gen: _, data } => {
                // Slot-addressed eager fire: no tag matching. Complete
                // the armed round directly, or queue FIFO for the round
                // the receiver hasn't started yet.
                let completed = {
                    let mut st = self.state.lock();
                    let Some(ps) = st.persist_slots.get_mut(&slot) else {
                        // Slot revoked/freed while the fire was in
                        // flight; the sender's next start takes the
                        // one-shot fallback.
                        return;
                    };
                    match ps.armed.take() {
                        Some(armed) => {
                            let SlotKind::Plain { capacity } = ps.kind else {
                                panic!("eager re-fire into a partitioned slot");
                            };
                            assert!(
                                data.len() <= capacity,
                                "message truncation: {} bytes into {capacity}-byte \
                                 persistent receive (src {}, tag {}) — fatal under \
                                 MPI_ERRORS_ARE_FATAL semantics",
                                data.len(),
                                ps.key.src_rank,
                                ps.key.tag,
                            );
                            let bytes = data.len();
                            armed.slot.set_bytes(data);
                            Some((
                                armed.completer,
                                Status {
                                    source: ps.key.src_rank,
                                    tag: ps.key.tag,
                                    bytes,
                                    cancelled: false,
                                },
                            ))
                        }
                        None => {
                            ps.pending.push_back(PersistArrival::Eager { data });
                            None
                        }
                    }
                };
                if let Some((completer, status)) = completed {
                    completer.complete(status);
                }
            }
            WireMsg::RefireRts {
                slot,
                gen: _,
                send_id,
                total,
            } => {
                // Slot-addressed rendezvous fire: the armed round (or a
                // later arm) replies with a standard CTS and the
                // existing chunked Data/DataAck pipeline finishes the
                // transfer — only the *match* was skipped.
                let armed = {
                    let mut st = self.state.lock();
                    let Some(ps) = st.persist_slots.get_mut(&slot) else {
                        return;
                    };
                    match ps.armed.take() {
                        Some(armed) => {
                            let SlotKind::Plain { capacity } = ps.kind else {
                                panic!("rendezvous re-fire into a partitioned slot");
                            };
                            Some((armed, ps.key, capacity))
                        }
                        None => {
                            ps.pending.push_back(PersistArrival::Rts {
                                send_id,
                                total,
                                from_ep,
                            });
                            None
                        }
                    }
                };
                if let Some((armed, key, capacity)) = armed {
                    self.persist_rndv_recv(armed, key, capacity, send_id, total, from_ep);
                }
            }
            WireMsg::PartData {
                slot,
                offset,
                part,
                data,
            } => {
                let completed = {
                    let mut st = self.state.lock();
                    let Some(ps) = st.persist_slots.get_mut(&slot) else {
                        return;
                    };
                    match ps.armed.as_mut() {
                        Some(_) => Self::apply_part_chunk(ps, offset, part, data),
                        None => {
                            // Frames of the next generation arriving
                            // before its `start`; FIFO order keeps them
                            // behind any earlier queued round.
                            ps.pending
                                .push_back(PersistArrival::Part { offset, part, data });
                            None
                        }
                    }
                };
                if let Some((completer, status)) = completed {
                    completer.complete(status);
                }
            }
        }
    }

    /// Deliver an unexpected message to a freshly posted receive.
    fn deliver_unexpected(&self, recv: PostedRecv, unexpected: Unexpected) {
        match unexpected {
            Unexpected::Eager { src, tag, data } => {
                Self::complete_eager_recv(recv, src, tag, data);
            }
            Unexpected::Rts {
                src,
                tag,
                send_id,
                total,
                reply_ep,
            } => {
                self.start_rndv_recv(recv, src, tag, send_id, total, reply_ep);
            }
        }
    }

    /// Fill a matched receive from a complete eager payload. The view is
    /// handed through uncopied — on a shared-memory backend the receive
    /// completes pointing into the ring.
    fn complete_eager_recv(recv: PostedRecv, src: i32, tag: i32, data: MpfaBytes) {
        assert!(
            data.len() <= recv.capacity,
            "message truncation: {} bytes into {}-byte receive (src {src}, tag {tag}) — \
             fatal under MPI_ERRORS_ARE_FATAL semantics",
            data.len(),
            recv.capacity,
        );
        let bytes = data.len();
        recv.slot.set_bytes(data);
        recv.completer.complete(Status {
            source: src,
            tag,
            bytes,
            cancelled: false,
        });
    }

    /// Begin the receiver half of a rendezvous transfer: register state and
    /// reply CTS.
    fn start_rndv_recv(
        &self,
        recv: PostedRecv,
        src: i32,
        tag: i32,
        send_id: u64,
        total: usize,
        reply_ep: usize,
    ) {
        assert!(
            total <= recv.capacity,
            "message truncation: {} bytes into {}-byte receive (src {src}, tag {tag}) — \
             fatal under MPI_ERRORS_ARE_FATAL semantics",
            total,
            recv.capacity,
        );
        let recv_id = {
            let mut st = self.state.lock();
            let id = st.next_id;
            st.next_id += 1;
            st.recvs.insert(
                id,
                RndvRecv {
                    slot: recv.slot,
                    total,
                    received: 0,
                    src_rank: src,
                    tag,
                    send_id,
                    reply_ep,
                    completer: Some(recv.completer),
                },
            );
            id
        };
        self.work.fetch_add(1, Ordering::Release);
        self.port
            .send(self.ep, reply_ep, WireMsg::Cts { send_id, recv_id }, 0);
    }

    /// Inject chunks up to the pipeline depth.
    fn pump_chunks(
        port: &dyn Transport<WireMsg>,
        src_ep: usize,
        proto: &ProtoConfig,
        send: &mut RndvSend,
    ) {
        let Some(recv_id) = send.recv_id else { return };
        let total = send.data.len();
        while send.inflight < proto.depth && send.offset < total {
            let end = (send.offset + proto.chunk).min(total);
            // Chunks are slices of the payload view: no per-chunk copy.
            let chunk = send.data.slice(send.offset..end);
            let len = chunk.len();
            port.send(
                src_ep,
                send.dst_ep,
                WireMsg::Data {
                    recv_id,
                    offset: send.offset,
                    data: chunk,
                },
                len,
            );
            send.offset = end;
            send.inflight += 1;
        }
    }

    // ---------------------------------------------------------------
    // Persistent operations: pre-matched re-fire descriptors
    // ---------------------------------------------------------------

    /// Receiver half of persistent init: pin a matching-bucket slot for
    /// `key`, announce it to the sender at `sender_ep`, and return the
    /// slot id. Returns `None` if `key` is already bound (two
    /// persistent receives on the same `(comm, src, tag)` would be
    /// ambiguous to slot-address).
    pub(crate) fn persist_recv_init(
        &self,
        key: PersistKey,
        capacity: usize,
        sender_ep: usize,
    ) -> Option<u64> {
        self.persist_init_slot(key, SlotKind::Plain { capacity }, sender_ep)
    }

    /// Receiver half of partitioned init: like
    /// [`Vci::persist_recv_init`] but with per-partition arrival
    /// accounting. Returns the slot id and the shared `parrived` flags.
    pub(crate) fn persist_precv_init(
        &self,
        key: PersistKey,
        total: usize,
        partitions: usize,
        sender_ep: usize,
    ) -> Option<(u64, Arc<PartFlags>)> {
        let arrived = PartFlags::new(partitions);
        let kind = SlotKind::Part {
            total,
            partitions,
            arrived: arrived.clone(),
        };
        self.persist_init_slot(key, kind, sender_ep)
            .map(|id| (id, arrived))
    }

    fn persist_init_slot(&self, key: PersistKey, kind: SlotKind, sender_ep: usize) -> Option<u64> {
        let slot_id = {
            let mut st = self.state.lock();
            if let Some(&id) = st.persist_keys.get(&key) {
                // The key had a descriptor before. Its slot is kept
                // alive (the sender's binding still addresses it); a
                // second live descriptor is ambiguous, but a freed one
                // is simply re-owned — no second handshake, and fires
                // queued in the interim deliver like unexpected
                // messages.
                let ps = st.persist_slots.get_mut(&id)?;
                if ps.owned {
                    return None;
                }
                ps.owned = true;
                ps.kind = kind;
                ps.sender_ep = sender_ep;
                ps.armed = None;
                return Some(id);
            }
            let id = st.next_id;
            st.next_id += 1;
            st.persist_keys.insert(key, id);
            st.persist_slots.insert(
                id,
                PersistSlot {
                    key,
                    sender_ep,
                    kind,
                    pending: VecDeque::new(),
                    armed: None,
                    owned: true,
                },
            );
            id
        };
        // The bind handshake: from here on the sender addresses this
        // pair by slot id and the matcher never sees it again.
        self.port.send(
            self.ep,
            sender_ep,
            WireMsg::PersistBind {
                key: MsgHeader {
                    context_id: key.ctx,
                    src_rank: key.src_rank,
                    tag: key.tag,
                },
                slot: slot_id,
            },
            0,
        );
        Some(slot_id)
    }

    /// Disown a receiver-side slot (persistent request freed). An armed
    /// round's completer is dropped, which cancels its request. The slot
    /// itself stays alive — the sender's binding still addresses it, so
    /// late fires queue (unexpected-message semantics) until a new
    /// descriptor re-owns the key. Only faults remove slots for real.
    pub(crate) fn persist_free_slot(&self, slot_id: u64) {
        let mut st = self.state.lock();
        if let Some(ps) = st.persist_slots.get_mut(&slot_id) {
            ps.owned = false;
            ps.armed = None;
        }
    }

    /// Sender half of persistent init: claim the binding for `key` (the
    /// bind may already have arrived — the entry is shared either way).
    /// Returns false when another live descriptor already owns the key.
    pub(crate) fn persist_send_init(&self, key: PersistKey, dst_ep: usize) -> bool {
        let mut st = self.state.lock();
        let b = st.persist_bindings.entry(key).or_insert(PersistBinding {
            dst_ep,
            slot: None,
            revoked: false,
            claimed: false,
        });
        if b.claimed {
            return false;
        }
        b.claimed = true;
        true
    }

    /// Sender-side binding state for `key`.
    pub(crate) fn persist_binding(&self, key: &PersistKey) -> BindState {
        match self.state.lock().persist_bindings.get(key) {
            None => BindState::Unbound,
            Some(b) if b.revoked => BindState::Revoked,
            Some(b) => b.slot.map(BindState::Bound).unwrap_or(BindState::Unbound),
        }
    }

    /// Release a sender-side binding claim (persistent request freed).
    /// The bound slot is retained so a later re-init of the same key
    /// finds it without a fresh handshake.
    pub(crate) fn persist_free_binding(&self, key: &PersistKey) {
        if let Some(b) = self.state.lock().persist_bindings.get_mut(key) {
            b.claimed = false;
        }
    }

    /// Fire one re-fire generation at a bound slot: the persistent fast
    /// path. Mode selection matches [`Vci::isend_bytes`] (buffered /
    /// eager / rendezvous with the eager-hint promotion), but the wire
    /// carries slot-addressed [`WireMsg::Refire`] / [`WireMsg::RefireRts`]
    /// frames that bypass tag matching at the receiver.
    pub(crate) fn persist_fire(
        &self,
        dst_ep: usize,
        slot: u64,
        gen: u64,
        bytes: MpfaBytes,
    ) -> Request {
        mpfa_obs::global_counters()
            .persist_refires
            .fetch_add(1, Ordering::Relaxed);
        let n = bytes.len();
        let mut mode = self.proto.mode_for(n);
        if mode == SendMode::Rendezvous {
            if let Some(max) = self.port.eager_hint() {
                if n <= max {
                    mode = SendMode::Eager;
                }
            }
        }
        match mode {
            SendMode::Buffered => {
                let tx = self.port.send(
                    self.ep,
                    dst_ep,
                    WireMsg::Refire {
                        slot,
                        gen,
                        data: bytes,
                    },
                    n,
                );
                if tx.is_failed() {
                    return Request::failed(&self.stream, RequestError::PeerFailed { rank: -1 });
                }
                Request::completed(
                    &self.stream,
                    Status {
                        source: -1,
                        tag: -1,
                        bytes: n,
                        cancelled: false,
                    },
                )
            }
            SendMode::Eager => {
                let (req, completer) = Request::pair(&self.stream);
                let tx = self.port.send(
                    self.ep,
                    dst_ep,
                    WireMsg::Refire {
                        slot,
                        gen,
                        data: bytes,
                    },
                    n,
                );
                let mut st = self.state.lock();
                st.tx_pending.push(TxPending {
                    tx,
                    dst_ep,
                    completer,
                    status: Status {
                        source: -1,
                        tag: -1,
                        bytes: n,
                        cancelled: false,
                    },
                });
                drop(st);
                self.work.fetch_add(1, Ordering::Release);
                req
            }
            SendMode::Rendezvous => {
                let (req, completer) = Request::pair(&self.stream);
                let send_id = {
                    let mut st = self.state.lock();
                    let id = st.next_id;
                    st.next_id += 1;
                    st.sends.insert(
                        id,
                        RndvSend {
                            data: bytes,
                            dst_ep,
                            offset: 0,
                            inflight: 0,
                            acked: 0,
                            recv_id: None,
                            completer: Some(completer),
                        },
                    );
                    id
                };
                self.work.fetch_add(1, Ordering::Release);
                mpfa_obs::global_counters()
                    .rndv_started
                    .fetch_add(1, Ordering::Relaxed);
                self.port.send(
                    self.ep,
                    dst_ep,
                    WireMsg::RefireRts {
                        slot,
                        gen,
                        send_id,
                        total: n,
                    },
                    0,
                );
                req
            }
        }
    }

    /// Arm the next re-fire round of slot `slot_id`: hand the engine a
    /// fresh request + landing slot. If a fire for this round already
    /// arrived (queued FIFO), it completes — possibly immediately —
    /// without the round ever being visibly armed. Returns `None` when
    /// the slot was invalidated (comm revoke / peer failure); the
    /// caller must take the one-shot fallback.
    pub(crate) fn persist_arm(&self, slot_id: u64) -> Option<(Request, RecvSlot)> {
        let (req, completer) = Request::pair(&self.stream);
        let rslot = RecvSlot::new();

        enum After {
            None,
            Complete(Completer, Status),
            Rndv {
                armed: ArmedRound,
                key: PersistKey,
                capacity: usize,
                send_id: u64,
                total: usize,
                from_ep: usize,
            },
        }
        let mut after = After::None;
        {
            let mut st = self.state.lock();
            let ps = st.persist_slots.get_mut(&slot_id)?;
            assert!(
                ps.armed.is_none(),
                "persistent round started while the previous round is still armed"
            );
            let part_remaining: Vec<usize> = match &ps.kind {
                SlotKind::Plain { .. } => Vec::new(),
                SlotKind::Part {
                    total,
                    partitions,
                    arrived,
                } => {
                    arrived.reset();
                    let psize = total.div_ceil((*partitions).max(1));
                    let remaining: Vec<usize> = (0..*partitions)
                        .map(|p| {
                            let lo = (p * psize).min(*total);
                            let hi = ((p + 1) * psize).min(*total);
                            hi - lo
                        })
                        .collect();
                    // Zero-byte partitions have nothing in flight: they
                    // are arrived from the instant the round starts.
                    for (p, rem) in remaining.iter().enumerate() {
                        if *rem == 0 {
                            arrived.set(p);
                        }
                    }
                    remaining
                }
            };
            ps.armed = Some(ArmedRound {
                slot: rslot.clone(),
                completer,
                received: 0,
                part_remaining,
            });
            // Drain fires that beat this arm (FIFO: the front entry is
            // exactly this round's, earlier rounds having consumed
            // theirs).
            while ps.armed.is_some() {
                let Some(arrival) = ps.pending.pop_front() else {
                    break;
                };
                match arrival {
                    PersistArrival::Eager { data } => {
                        let SlotKind::Plain { capacity } = ps.kind else {
                            panic!("eager re-fire queued on a partitioned slot");
                        };
                        assert!(
                            data.len() <= capacity,
                            "message truncation: {} bytes into {capacity}-byte \
                             persistent receive (src {}, tag {}) — fatal under \
                             MPI_ERRORS_ARE_FATAL semantics",
                            data.len(),
                            ps.key.src_rank,
                            ps.key.tag,
                        );
                        let armed = ps.armed.take().unwrap();
                        let bytes = data.len();
                        armed.slot.set_bytes(data);
                        after = After::Complete(
                            armed.completer,
                            Status {
                                source: ps.key.src_rank,
                                tag: ps.key.tag,
                                bytes,
                                cancelled: false,
                            },
                        );
                    }
                    PersistArrival::Rts {
                        send_id,
                        total,
                        from_ep,
                    } => {
                        let SlotKind::Plain { capacity } = ps.kind else {
                            panic!("rendezvous re-fire queued on a partitioned slot");
                        };
                        let armed = ps.armed.take().unwrap();
                        after = After::Rndv {
                            armed,
                            key: ps.key,
                            capacity,
                            send_id,
                            total,
                            from_ep,
                        };
                    }
                    PersistArrival::Part { offset, part, data } => {
                        if let Some((c, s)) = Self::apply_part_chunk(ps, offset, part, data) {
                            after = After::Complete(c, s);
                        }
                    }
                }
            }
        }
        match after {
            After::None => {}
            After::Complete(c, s) => c.complete(s),
            After::Rndv {
                armed,
                key,
                capacity,
                send_id,
                total,
                from_ep,
            } => {
                self.persist_rndv_recv(armed, key, capacity, send_id, total, from_ep);
            }
        }
        Some((req, rslot))
    }

    /// Begin the receiver half of a slot-addressed rendezvous re-fire:
    /// register standard rendezvous state and reply CTS. From the CTS
    /// on, the transfer is indistinguishable from a one-shot rendezvous
    /// (same chunked pipeline, same flow-control credits).
    fn persist_rndv_recv(
        &self,
        armed: ArmedRound,
        key: PersistKey,
        capacity: usize,
        send_id: u64,
        total: usize,
        from_ep: usize,
    ) {
        assert!(
            total <= capacity,
            "message truncation: {total} bytes into {capacity}-byte persistent \
             receive (src {}, tag {}) — fatal under MPI_ERRORS_ARE_FATAL semantics",
            key.src_rank,
            key.tag,
        );
        let recv_id = {
            let mut st = self.state.lock();
            let id = st.next_id;
            st.next_id += 1;
            st.recvs.insert(
                id,
                RndvRecv {
                    slot: armed.slot,
                    total,
                    received: 0,
                    src_rank: key.src_rank,
                    tag: key.tag,
                    send_id,
                    reply_ep: from_ep,
                    completer: Some(armed.completer),
                },
            );
            id
        };
        self.work.fetch_add(1, Ordering::Release);
        self.port
            .send(self.ep, from_ep, WireMsg::Cts { send_id, recv_id }, 0);
    }

    /// Land one partition chunk in the armed round of a partitioned
    /// slot. Returns the round's completion if this chunk finished it.
    fn apply_part_chunk(
        ps: &mut PersistSlot,
        offset: usize,
        part: u32,
        data: MpfaBytes,
    ) -> Option<(Completer, Status)> {
        let (total, arrived) = match &ps.kind {
            SlotKind::Part { total, arrived, .. } => (*total, arrived.clone()),
            SlotKind::Plain { .. } => panic!("partition data on a plain persistent slot"),
        };
        let armed = ps.armed.as_mut().expect("partition chunk on unarmed slot");
        let dlen = data.len();
        assert!(
            offset + dlen <= total,
            "message truncation: partition chunk [{offset}, {}) overruns {total}-byte \
             partitioned receive (src {}, tag {}) — fatal under MPI_ERRORS_ARE_FATAL \
             semantics",
            offset + dlen,
            ps.key.src_rank,
            ps.key.tag,
        );
        if offset == 0 && dlen == total {
            // Whole round in one frame: keep the delivered view
            // (zero-copy single-chunk partitioned transfer).
            armed.slot.set_bytes(data);
        } else {
            armed.slot.write_at(total, offset, &data);
        }
        armed.received += dlen;
        let p = part as usize;
        if let Some(rem) = armed.part_remaining.get_mut(p) {
            *rem = rem.saturating_sub(dlen);
            if *rem == 0 {
                arrived.set(p);
            }
        }
        if armed.received >= total {
            let armed = ps.armed.take().unwrap();
            Some((
                armed.completer,
                Status {
                    source: ps.key.src_rank,
                    tag: ps.key.tag,
                    bytes: total,
                    cancelled: false,
                },
            ))
        } else {
            None
        }
    }

    /// Start one partitioned send round against a bound slot. The round
    /// sends nothing until partitions are marked ready; the progress
    /// sweep feeds ready partitions into the wire. Returns the round id
    /// (for `pready`) and the request completing when every partition
    /// has been handed to the transport.
    pub(crate) fn persist_part_start(
        &self,
        ctx: u64,
        dst_ep: usize,
        slot: u64,
        data: MpfaBytes,
        partitions: usize,
    ) -> (u64, Request) {
        mpfa_obs::global_counters()
            .persist_refires
            .fetch_add(1, Ordering::Relaxed);
        let (req, completer) = Request::pair(&self.stream);
        let total = data.len();
        let psize = total.div_ceil(partitions.max(1));
        let id = {
            let mut st = self.state.lock();
            let id = st.next_id;
            st.next_id += 1;
            st.part_rounds.insert(
                id,
                PartRound {
                    ctx,
                    slot,
                    dst_ep,
                    data,
                    psize,
                    state: vec![PartState::Unready; partitions],
                    sent: 0,
                    started_at: wtime(),
                    completer: Some(completer),
                },
            );
            id
        };
        self.work.fetch_add(1, Ordering::Release);
        (id, req)
    }

    /// `MPI_Pready_range` on an active round: mark partitions
    /// `[lo, hi)` ready for the wire. Callable from any thread (compute
    /// threads overlapping with the progress stream). Returns how many
    /// partitions transitioned.
    pub(crate) fn persist_pready(&self, round: u64, lo: usize, hi: usize) -> usize {
        let n = {
            let mut st = self.state.lock();
            let Some(r) = st.part_rounds.get_mut(&round) else {
                return 0;
            };
            let hi = hi.min(r.state.len());
            let mut n = 0;
            for p in lo..hi {
                if r.state[p] == PartState::Unready {
                    r.state[p] = PartState::Ready;
                    n += 1;
                }
            }
            n
        };
        if n > 0 {
            mpfa_obs::global_counters()
                .partitions_ready
                .fetch_add(n as u64, Ordering::Relaxed);
        }
        n
    }

    /// Feed ready partitions of active partitioned rounds into the wire
    /// (chunked within partition boundaries, slices of the round's
    /// payload view — no copies), complete rounds whose partitions have
    /// all been sent, and re-assert the unready-partition stall gauge
    /// the doctor reads. Returns true if any data moved.
    fn pump_persist(&self) -> bool {
        let clear_gauge = |vci: &Vci| {
            if vci.stall_asserted.swap(false, Ordering::AcqRel) {
                let c = mpfa_obs::global_counters();
                c.persist_part_stalled.store(0, Ordering::Relaxed);
                c.persist_part_stalled_ms.store(0, Ordering::Relaxed);
            }
        };
        if self.work.load(Ordering::Acquire) == 0 {
            clear_gauge(self);
            return false;
        }
        let now = wtime();
        let mut completed: Vec<(Completer, usize)> = Vec::new();
        let mut oldest_stall: Option<(f64, usize)> = None;
        let mut any = false;
        {
            let mut st = self.state.lock();
            let ids: Vec<u64> = st.part_rounds.keys().copied().collect();
            for id in ids {
                let (done, unready, started_at) = {
                    let r = st.part_rounds.get_mut(&id).unwrap();
                    for p in 0..r.state.len() {
                        if r.state[p] != PartState::Ready {
                            continue;
                        }
                        let lo = (p * r.psize).min(r.data.len());
                        let hi = ((p + 1) * r.psize).min(r.data.len());
                        let mut off = lo;
                        while off < hi {
                            let end = (off + self.proto.chunk).min(hi);
                            let chunk = r.data.slice(off..end);
                            let len = chunk.len();
                            self.port.send(
                                self.ep,
                                r.dst_ep,
                                WireMsg::PartData {
                                    slot: r.slot,
                                    offset: off,
                                    part: p as u32,
                                    data: chunk,
                                },
                                len,
                            );
                            off = end;
                        }
                        r.state[p] = PartState::Sent;
                        r.sent += 1;
                        any = true;
                    }
                    let unready = r.state.iter().filter(|s| **s == PartState::Unready).count();
                    (r.sent == r.state.len(), unready, r.started_at)
                };
                if done {
                    let r = st.part_rounds.remove(&id).unwrap();
                    let bytes = r.data.len();
                    if let Some(c) = r.completer {
                        completed.push((c, bytes));
                    }
                } else if unready > 0 {
                    let older = oldest_stall.is_none_or(|(t, _)| started_at < t);
                    if older {
                        oldest_stall = Some((started_at, unready));
                    }
                }
            }
        }
        match oldest_stall {
            Some((t0, parts)) => {
                let c = mpfa_obs::global_counters();
                c.persist_part_stalled
                    .store(parts as u64, Ordering::Relaxed);
                c.persist_part_stalled_ms
                    .store(((now - t0).max(0.0) * 1e3) as u64, Ordering::Relaxed);
                self.stall_asserted.store(true, Ordering::Release);
            }
            None => clear_gauge(self),
        }
        let n = completed.len();
        for (completer, bytes) in completed {
            completer.complete(Status {
                source: -1,
                tag: -1,
                bytes,
                cancelled: false,
            });
        }
        if n > 0 {
            self.work.fetch_sub(n, Ordering::Release);
        }
        any || n > 0
    }

    /// Invalidate persistent state touched by a fault: bindings whose
    /// destination endpoint died (or whose comm context was revoked)
    /// flip to revoked — the next `start` takes the one-shot fallback —
    /// and receiver slots / partitioned rounds against dead peers fail
    /// their in-flight round with `err`. Returns how many in-flight
    /// rounds were failed.
    pub(crate) fn fail_persist(
        &self,
        dead_ep: &dyn Fn(usize) -> bool,
        ctx: Option<u64>,
        err: RequestError,
    ) -> usize {
        let hit_ctx = |c: u64| ctx == Some(c);
        let mut failed: Vec<Completer> = Vec::new();
        let mut removed_work = 0usize;
        {
            let mut st = self.state.lock();
            for (key, b) in st.persist_bindings.iter_mut() {
                if dead_ep(b.dst_ep) || hit_ctx(key.ctx) {
                    b.revoked = true;
                }
            }
            let dead_slots: Vec<u64> = st
                .persist_slots
                .iter()
                .filter(|(_, s)| dead_ep(s.sender_ep) || hit_ctx(s.key.ctx))
                .map(|(id, _)| *id)
                .collect();
            for id in dead_slots {
                if let Some(mut s) = st.persist_slots.remove(&id) {
                    st.persist_keys.remove(&s.key);
                    if let Some(armed) = s.armed.take() {
                        failed.push(armed.completer);
                    }
                }
            }
            let dead_rounds: Vec<u64> = st
                .part_rounds
                .iter()
                .filter(|(_, r)| dead_ep(r.dst_ep) || hit_ctx(r.ctx))
                .map(|(id, _)| *id)
                .collect();
            for id in dead_rounds {
                if let Some(mut r) = st.part_rounds.remove(&id) {
                    if let Some(c) = r.completer.take() {
                        failed.push(c);
                    }
                    removed_work += 1;
                }
            }
        }
        if removed_work > 0 {
            self.work.fetch_sub(removed_work, Ordering::Release);
        }
        let n = failed.len();
        for c in failed {
            c.fail(err);
        }
        n
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpfa_fabric::{Fabric, FabricConfig};

    fn pair(proto: ProtoConfig) -> (Arc<Vci>, Arc<Vci>, Stream, Stream) {
        let fabric: Fabric<WireMsg> = Fabric::new(FabricConfig::instant(2));
        let s0 = Stream::create();
        let s1 = Stream::create();
        let v0 = Vci::new(fabric.endpoint(0), s0.clone(), proto);
        let v1 = Vci::new(fabric.endpoint(1), s1.clone(), proto);
        (v0, v1, s0, s1)
    }

    fn hdr(src_rank: i32, tag: i32) -> MsgHeader {
        MsgHeader {
            context_id: 1,
            src_rank,
            tag,
        }
    }

    /// Drive both VCIs until `cond` (test-only mini progress loop).
    fn drive(v0: &Vci, v1: &Vci, mut cond: impl FnMut() -> bool) {
        for _ in 0..100_000 {
            if cond() {
                return;
            }
            v0.poll_net(16);
            v0.poll_shmem(16);
            v0.sweep_tx();
            v1.poll_net(16);
            v1.poll_shmem(16);
            v1.sweep_tx();
        }
        panic!("drive() did not converge");
    }

    #[test]
    fn buffered_send_completes_immediately() {
        let (v0, v1, _s0, _s1) = pair(ProtoConfig::default());
        let req = v0.isend_bytes(1, hdr(0, 7), vec![1, 2, 3]);
        assert!(req.is_complete(), "lightweight send is born complete");
        let (rreq, slot) = v1.irecv_bytes(1, 0, 7, 1024);
        drive(&v0, &v1, || rreq.is_complete());
        assert_eq!(slot.take(), vec![1, 2, 3]);
        let st = rreq.status().unwrap();
        assert_eq!((st.source, st.tag, st.bytes), (0, 7, 3));
    }

    #[test]
    fn eager_send_waits_for_tx() {
        let proto = ProtoConfig {
            buffered_max: 0,
            ..ProtoConfig::default()
        };
        let (v0, v1, _s0, _s1) = pair(proto);
        let req = v0.isend_bytes(1, hdr(0, 1), vec![9; 1000]);
        // Instant fabric: TX completes at once, but only a sweep observes it.
        assert!(!req.is_complete());
        drive(&v0, &v1, || req.is_complete());
        // Receiver still gets the payload (it was unexpected).
        let (rreq, slot) = v1.irecv_bytes(1, 0, 1, 4096);
        drive(&v0, &v1, || rreq.is_complete());
        assert_eq!(slot.take(), vec![9; 1000]);
    }

    #[test]
    fn rendezvous_roundtrip_expected() {
        let proto = ProtoConfig {
            buffered_max: 4,
            eager_max: 8,
            chunk: 16,
            depth: 2,
        };
        let (v0, v1, _s0, _s1) = pair(proto);
        let payload: Vec<u8> = (0..=255).cycle().take(100).map(|b: u8| b).collect();
        // Receive posted FIRST (expected path, Figure 1(f)).
        let (rreq, slot) = v1.irecv_bytes(1, 0, 3, 4096);
        let sreq = v0.isend_bytes(1, hdr(0, 3), payload.clone());
        drive(&v0, &v1, || rreq.is_complete() && sreq.is_complete());
        assert_eq!(slot.take(), payload);
        assert_eq!(v0.protocol_work(), 0);
        assert_eq!(v1.protocol_work(), 0);
    }

    #[test]
    fn rendezvous_roundtrip_unexpected() {
        let proto = ProtoConfig {
            buffered_max: 4,
            eager_max: 8,
            chunk: 32,
            depth: 1,
        };
        let (v0, v1, _s0, _s1) = pair(proto);
        let payload = vec![0x5A; 200];
        // Send first: RTS lands unexpected; CTS deferred until post.
        let sreq = v0.isend_bytes(1, hdr(0, 3), payload.clone());
        // Let the RTS arrive and sit.
        drive(&v0, &v1, || v1.iprobe(1, 0, 3).is_some());
        assert!(!sreq.is_complete());
        let (rreq, slot) = v1.irecv_bytes(1, 0, 3, 4096);
        drive(&v0, &v1, || rreq.is_complete() && sreq.is_complete());
        assert_eq!(slot.take(), payload);
    }

    #[test]
    fn pipeline_chunks_with_bounded_depth() {
        let proto = ProtoConfig {
            buffered_max: 0,
            eager_max: 8,
            chunk: 10,
            depth: 2,
        };
        let (v0, v1, _s0, _s1) = pair(proto);
        let payload: Vec<u8> = (0..95).collect(); // 10 chunks
        let (rreq, slot) = v1.irecv_bytes(1, 0, 3, 4096);
        let sreq = v0.isend_bytes(1, hdr(0, 3), payload.clone());
        drive(&v0, &v1, || rreq.is_complete() && sreq.is_complete());
        assert_eq!(slot.take(), payload);
        let st = rreq.status().unwrap();
        assert_eq!(st.bytes, 95);
    }

    #[test]
    fn wildcard_receive_matches_rendezvous() {
        let proto = ProtoConfig {
            buffered_max: 0,
            eager_max: 0,
            chunk: 64,
            depth: 4,
        };
        let (v0, v1, _s0, _s1) = pair(proto);
        let (rreq, slot) = v1.irecv_bytes(
            1,
            crate::matching::ANY_SOURCE,
            crate::matching::ANY_TAG,
            4096,
        );
        let sreq = v0.isend_bytes(1, hdr(0, 42), vec![7; 50]);
        drive(&v0, &v1, || rreq.is_complete() && sreq.is_complete());
        let st = rreq.status().unwrap();
        assert_eq!((st.source, st.tag, st.bytes), (0, 42, 50));
        assert_eq!(slot.take(), vec![7; 50]);
    }

    #[test]
    fn mode_override_forces_rendezvous_for_small_payload() {
        let (v0, v1, _s0, _s1) = pair(ProtoConfig::default());
        // 3 bytes would normally be a buffered send; force rendezvous.
        let sreq = v0.isend_bytes_mode(1, hdr(0, 5), vec![1, 2, 3], SendMode::Rendezvous);
        assert!(!sreq.is_complete(), "rendezvous cannot complete pre-CTS");
        assert_eq!(v0.protocol_work(), 1);
        let (rreq, slot) = v1.irecv_bytes(1, 0, 5, 64);
        drive(&v0, &v1, || rreq.is_complete() && sreq.is_complete());
        assert_eq!(slot.take(), vec![1, 2, 3]);
    }

    #[test]
    fn mode_override_forces_buffered_for_large_payload() {
        let (v0, v1, _s0, _s1) = pair(ProtoConfig::default());
        // 100 KB would normally be rendezvous; force buffered (a
        // zero-copy-unsafe choice in C, harmless here since we copy).
        let sreq = v0.isend_bytes_mode(1, hdr(0, 6), vec![7; 100_000], SendMode::Buffered);
        assert!(sreq.is_complete(), "buffered send is born complete");
        let (rreq, slot) = v1.irecv_bytes(1, 0, 6, 200_000);
        drive(&v0, &v1, || rreq.is_complete());
        assert_eq!(slot.take().len(), 100_000);
    }

    #[test]
    fn iprobe_sees_unexpected_eager() {
        let (v0, v1, _s0, _s1) = pair(ProtoConfig::default());
        assert!(v1.iprobe(1, 0, 9).is_none());
        v0.isend_bytes(1, hdr(0, 9), vec![1; 20]);
        drive(&v0, &v1, || v1.iprobe(1, 0, 9).is_some());
        assert_eq!(v1.iprobe(1, 0, 9), Some((0, 9, 20)));
    }

    #[test]
    #[should_panic(expected = "truncation")]
    fn truncation_is_fatal() {
        let (v0, v1, _s0, _s1) = pair(ProtoConfig::default());
        let (_rreq, _slot) = v1.irecv_bytes(1, 0, 9, 4);
        v0.isend_bytes(1, hdr(0, 9), vec![1; 20]);
        // The panic fires inside packet processing.
        for _ in 0..100_000 {
            v1.poll_net(16);
            v1.poll_shmem(16);
        }
    }

    #[test]
    fn many_interleaved_messages_keep_order() {
        let proto = ProtoConfig {
            buffered_max: 64,
            eager_max: 64,
            chunk: 64,
            depth: 2,
        };
        let (v0, v1, _s0, _s1) = pair(proto);
        let n = 50;
        let mut rreqs = Vec::new();
        for _ in 0..n {
            rreqs.push(v1.irecv_bytes(1, 0, 5, 4096));
        }
        for i in 0..n {
            v0.isend_bytes(1, hdr(0, 5), vec![i as u8; 8]);
        }
        drive(&v0, &v1, || rreqs.iter().all(|(r, _)| r.is_complete()));
        for (i, (_, slot)) in rreqs.iter().enumerate() {
            assert_eq!(
                slot.take(),
                vec![i as u8; 8],
                "message order violated at {i}"
            );
        }
    }

    #[test]
    fn fail_sends_to_drains_rendezvous_and_tx() {
        let proto = ProtoConfig {
            buffered_max: 0,
            eager_max: 8,
            chunk: 16,
            depth: 2,
        };
        let (v0, _v1, _s0, _s1) = pair(proto);
        // Rendezvous send with no receiver: RTS out, stuck pre-CTS.
        let big = v0.isend_bytes(1, hdr(0, 3), vec![1; 100]);
        // Eager send: TX pending until a sweep (instant fabric, so it
        // would succeed — fail it before sweeping).
        let small = v0.isend_bytes(1, hdr(0, 4), vec![1; 4]);
        assert!(!big.is_complete() && !small.is_complete());
        let n = v0.fail_sends_to(&|ep| ep == 1, RequestError::PeerFailed { rank: 1 });
        assert_eq!(n, 2);
        assert!(big.is_complete() && small.is_complete());
        assert_eq!(big.error(), Some(RequestError::PeerFailed { rank: 1 }));
        assert_eq!(small.error(), Some(RequestError::PeerFailed { rank: 1 }));
        assert_eq!(v0.protocol_work(), 0);
        // Idempotent: nothing left to fail.
        assert_eq!(
            v0.fail_sends_to(&|_| true, RequestError::PeerFailed { rank: 1 }),
            0
        );
    }

    #[test]
    fn fail_posted_recvs_spares_other_sources() {
        let (_v0, v1, _s0, _s1) = pair(ProtoConfig::default());
        let (dead, _slot_d) = v1.irecv_bytes(1, 0, 7, 64);
        let (live, _slot_l) = v1.irecv_bytes(1, 1, 7, 64);
        let (wild, _slot_w) = v1.irecv_bytes(1, crate::matching::ANY_SOURCE, 7, 64);
        let n = v1.fail_posted_recvs(1, &|src, _| src == 0, RequestError::PeerFailed { rank: 0 });
        assert_eq!(n, 1);
        assert!(dead.is_complete());
        assert_eq!(dead.error(), Some(RequestError::PeerFailed { rank: 0 }));
        assert!(!live.is_complete());
        assert!(!wild.is_complete(), "wildcard receives are not failed");
        // Unknown context: no-op.
        assert_eq!(
            v1.fail_posted_recvs(99, &|_, _| true, RequestError::Revoked),
            0
        );
    }

    #[test]
    fn distinct_contexts_do_not_cross_match() {
        let (v0, v1, _s0, _s1) = pair(ProtoConfig::default());
        let (r_ctx2, slot2) = v1.irecv_bytes(2, 0, 5, 64);
        v0.isend_bytes(
            1,
            MsgHeader {
                context_id: 1,
                src_rank: 0,
                tag: 5,
            },
            vec![1],
        );
        // ctx 1 message must NOT complete the ctx 2 receive.
        for _ in 0..1000 {
            v1.poll_net(16);
            v1.poll_shmem(16);
        }
        assert!(!r_ctx2.is_complete());
        assert_eq!(v1.iprobe(1, 0, 5), Some((0, 5, 1)));
        // Now the right context.
        v0.isend_bytes(
            1,
            MsgHeader {
                context_id: 2,
                src_rank: 0,
                tag: 5,
            },
            vec![2],
        );
        let v0r = &v0;
        let v1r = &v1;
        drive(v0r, v1r, || r_ctx2.is_complete());
        assert_eq!(slot2.take(), vec![2]);
    }
}

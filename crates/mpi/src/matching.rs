//! The tag-matching engine: posted-receive and unexpected-message queues
//! for one communicator context.
//!
//! Classic MPI matching rules: an incoming message `(src, tag)` matches the
//! *first* posted receive (in post order) whose source and tag fields equal
//! the message's or are wildcards; a posted receive matches the *first*
//! compatible unexpected message (in arrival order). Per-sender FIFO is
//! inherited from the fabric's per-channel FIFO delivery.

use std::collections::VecDeque;
use std::sync::Arc;

use mpfa_core::sync::Mutex;
use mpfa_core::Completer;

/// Wildcard source (`MPI_ANY_SOURCE`).
pub const ANY_SOURCE: i32 = -1;
/// Wildcard tag (`MPI_ANY_TAG`).
pub const ANY_TAG: i32 = -1;

/// Destination buffer of an in-progress receive, shared between the posting
/// context and the progress hooks that fill it.
#[derive(Clone, Default)]
pub struct RecvSlot {
    data: Arc<Mutex<Vec<u8>>>,
}

impl RecvSlot {
    /// An empty slot.
    pub fn new() -> RecvSlot {
        RecvSlot::default()
    }

    /// Replace the slot contents wholesale (eager path).
    pub fn set(&self, bytes: Vec<u8>) {
        *self.data.lock() = bytes;
    }

    /// Ensure capacity `total` and copy `bytes` at `offset` (rendezvous
    /// chunk path).
    pub fn write_at(&self, total: usize, offset: usize, bytes: &[u8]) {
        let mut data = self.data.lock();
        if data.len() < total {
            data.resize(total, 0);
        }
        data[offset..offset + bytes.len()].copy_from_slice(bytes);
    }

    /// Take the accumulated bytes out of the slot.
    pub fn take(&self) -> Vec<u8> {
        std::mem::take(&mut *self.data.lock())
    }

    /// Current byte length.
    pub fn len(&self) -> usize {
        self.data.lock().len()
    }

    /// True if nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// A receive posted by the application, waiting in the matching engine.
pub struct PostedRecv {
    /// Requested source (communicator rank) or [`ANY_SOURCE`].
    pub src: i32,
    /// Requested tag or [`ANY_TAG`].
    pub tag: i32,
    /// Receive capacity in bytes; larger incoming messages are a
    /// truncation error (fatal, as under `MPI_ERRORS_ARE_FATAL`).
    pub capacity: usize,
    /// Where the payload lands.
    pub slot: RecvSlot,
    /// Completes the application's request.
    pub completer: Completer,
}

impl PostedRecv {
    fn matches(&self, src: i32, tag: i32) -> bool {
        (self.src == ANY_SOURCE || self.src == src) && (self.tag == ANY_TAG || self.tag == tag)
    }
}

/// A message that arrived before its receive was posted.
pub enum Unexpected {
    /// A complete eager payload (Figure 1(d): "eager unexpected receive").
    Eager {
        /// Sender's communicator rank.
        src: i32,
        /// Message tag.
        tag: i32,
        /// Full payload.
        data: Vec<u8>,
    },
    /// A rendezvous announcement whose CTS we must defer until a receive
    /// is posted.
    Rts {
        /// Sender's communicator rank.
        src: i32,
        /// Message tag.
        tag: i32,
        /// Sender-side request id (echoed in the CTS).
        send_id: u64,
        /// Total transfer size.
        total: usize,
        /// Wire endpoint index to send the CTS to.
        reply_ep: usize,
    },
}

impl Unexpected {
    /// Sender rank of the pending message.
    pub fn src(&self) -> i32 {
        match self {
            Unexpected::Eager { src, .. } | Unexpected::Rts { src, .. } => *src,
        }
    }

    /// Tag of the pending message.
    pub fn tag(&self) -> i32 {
        match self {
            Unexpected::Eager { tag, .. } | Unexpected::Rts { tag, .. } => *tag,
        }
    }

    /// Payload size of the pending message.
    pub fn bytes(&self) -> usize {
        match self {
            Unexpected::Eager { data, .. } => data.len(),
            Unexpected::Rts { total, .. } => *total,
        }
    }

    fn matched_by(&self, recv: &PostedRecv) -> bool {
        recv.matches(self.src(), self.tag())
    }
}

/// Matching state of one communicator context.
#[derive(Default)]
pub struct MatchState {
    posted: VecDeque<PostedRecv>,
    unexpected: VecDeque<Unexpected>,
}

impl MatchState {
    /// Fresh, empty state.
    pub fn new() -> MatchState {
        MatchState::default()
    }

    /// Try to satisfy `recv` from the unexpected queue. If an unexpected
    /// message matches, it is removed and returned with the receive;
    /// otherwise the receive is enqueued.
    pub fn post_recv(&mut self, recv: PostedRecv) -> Option<(PostedRecv, Unexpected)> {
        if let Some(pos) = self.unexpected.iter().position(|u| u.matched_by(&recv)) {
            let unexpected = self.unexpected.remove(pos).expect("position valid");
            Some((recv, unexpected))
        } else {
            self.posted.push_back(recv);
            None
        }
    }

    /// Try to match an incoming message against the posted queue. The
    /// first matching receive (post order) is removed and returned.
    pub fn match_incoming(&mut self, src: i32, tag: i32) -> Option<PostedRecv> {
        let pos = self.posted.iter().position(|r| r.matches(src, tag))?;
        self.posted.remove(pos)
    }

    /// Queue a message that matched nothing.
    pub fn push_unexpected(&mut self, msg: Unexpected) {
        use std::sync::atomic::Ordering;
        mpfa_obs::global_counters()
            .unexpected_msgs
            .fetch_add(1, Ordering::Relaxed);
        mpfa_obs::record(|| {
            let (src, tag) = match &msg {
                Unexpected::Eager { src, tag, .. } => (*src, *tag),
                Unexpected::Rts { src, tag, .. } => (*src, *tag),
            };
            mpfa_obs::EventKind::UnexpectedMsg {
                src: src as u32,
                tag: tag as i64,
            }
        });
        self.unexpected.push_back(msg);
    }

    /// Number of posted receives waiting.
    pub fn posted_len(&self) -> usize {
        self.posted.len()
    }

    /// Number of unexpected messages waiting.
    pub fn unexpected_len(&self) -> usize {
        self.unexpected.len()
    }

    /// Peek for a matching unexpected message (probe semantics) using the
    /// wildcard-aware predicate. Returns `(src, tag, bytes)`.
    pub fn probe_unexpected(&self, src: i32, tag: i32) -> Option<(i32, i32, usize)> {
        self.unexpected
            .iter()
            .find(|u| (src == ANY_SOURCE || src == u.src()) && (tag == ANY_TAG || tag == u.tag()))
            .map(|u| (u.src(), u.tag(), u.bytes()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpfa_core::{Request, Stream};

    fn posted(src: i32, tag: i32) -> (PostedRecv, Request) {
        let stream = Stream::create();
        let (req, completer) = Request::pair(&stream);
        (
            PostedRecv {
                src,
                tag,
                capacity: 1 << 20,
                slot: RecvSlot::new(),
                completer,
            },
            req,
        )
    }

    fn eager(src: i32, tag: i32, n: usize) -> Unexpected {
        Unexpected::Eager {
            src,
            tag,
            data: vec![0xAB; n],
        }
    }

    #[test]
    fn recv_slot_roundtrip() {
        let slot = RecvSlot::new();
        assert!(slot.is_empty());
        slot.set(vec![1, 2, 3]);
        assert_eq!(slot.len(), 3);
        assert_eq!(slot.take(), vec![1, 2, 3]);
        assert!(slot.is_empty());
    }

    #[test]
    fn recv_slot_chunked_assembly() {
        let slot = RecvSlot::new();
        slot.write_at(6, 3, &[4, 5, 6]);
        slot.write_at(6, 0, &[1, 2, 3]);
        assert_eq!(slot.take(), vec![1, 2, 3, 4, 5, 6]);
    }

    #[test]
    fn exact_match_prefers_first_posted() {
        let mut m = MatchState::new();
        let (r1, _q1) = posted(0, 5);
        let (r2, _q2) = posted(0, 5);
        m.post_recv(r1);
        m.post_recv(r2);
        assert_eq!(m.posted_len(), 2);
        let hit = m.match_incoming(0, 5).expect("match");
        // First posted wins; the remaining one is the second.
        assert_eq!(m.posted_len(), 1);
        drop(hit);
    }

    #[test]
    fn wildcard_source_and_tag() {
        let mut m = MatchState::new();
        let (r, _q) = posted(ANY_SOURCE, ANY_TAG);
        m.post_recv(r);
        assert!(m.match_incoming(3, 17).is_some());
        assert!(m.match_incoming(3, 17).is_none());
    }

    #[test]
    fn no_match_on_wrong_tag() {
        let mut m = MatchState::new();
        let (r, _q) = posted(0, 5);
        m.post_recv(r);
        assert!(m.match_incoming(0, 6).is_none());
        assert_eq!(m.posted_len(), 1);
    }

    #[test]
    fn unexpected_consumed_by_matching_post() {
        let mut m = MatchState::new();
        m.push_unexpected(eager(2, 9, 16));
        let (r, _q) = posted(2, 9);
        let (recv, unexp) = m.post_recv(r).expect("should match unexpected");
        assert_eq!(unexp.src(), 2);
        assert_eq!(unexp.bytes(), 16);
        assert_eq!(m.unexpected_len(), 0);
        drop(recv);
    }

    #[test]
    fn unexpected_fifo_order_for_wildcards() {
        let mut m = MatchState::new();
        m.push_unexpected(eager(1, 7, 4));
        m.push_unexpected(eager(2, 7, 8));
        let (r, _q) = posted(ANY_SOURCE, 7);
        let (_recv, unexp) = m.post_recv(r).unwrap();
        assert_eq!(unexp.src(), 1, "earliest unexpected must match first");
        assert_eq!(m.unexpected_len(), 1);
    }

    #[test]
    fn non_matching_unexpected_skipped() {
        let mut m = MatchState::new();
        m.push_unexpected(eager(1, 7, 4));
        m.push_unexpected(eager(1, 8, 4));
        let (r, _q) = posted(1, 8);
        let (_recv, unexp) = m.post_recv(r).unwrap();
        assert_eq!(unexp.tag(), 8);
        assert_eq!(m.unexpected_len(), 1);
    }

    #[test]
    fn rts_unexpected_carries_protocol_fields() {
        let mut m = MatchState::new();
        m.push_unexpected(Unexpected::Rts {
            src: 4,
            tag: 2,
            send_id: 77,
            total: 1 << 20,
            reply_ep: 12,
        });
        let (r, _q) = posted(4, ANY_TAG);
        let (_recv, unexp) = m.post_recv(r).unwrap();
        match unexp {
            Unexpected::Rts {
                send_id,
                total,
                reply_ep,
                ..
            } => {
                assert_eq!(send_id, 77);
                assert_eq!(total, 1 << 20);
                assert_eq!(reply_ep, 12);
            }
            Unexpected::Eager { .. } => panic!("wrong variant"),
        }
    }

    #[test]
    fn probe_peeks_without_consuming() {
        let mut m = MatchState::new();
        assert!(m.probe_unexpected(ANY_SOURCE, ANY_TAG).is_none());
        m.push_unexpected(eager(3, 11, 24));
        assert_eq!(m.probe_unexpected(3, 11), Some((3, 11, 24)));
        assert_eq!(m.probe_unexpected(ANY_SOURCE, ANY_TAG), Some((3, 11, 24)));
        assert!(m.probe_unexpected(2, 11).is_none());
        assert_eq!(m.unexpected_len(), 1);
    }

    #[test]
    fn wildcard_post_vs_specific_post_ordering() {
        // A specific receive posted first must win over a later wildcard.
        let mut m = MatchState::new();
        let (specific, sq) = posted(1, 1);
        let (wild, wq) = posted(ANY_SOURCE, ANY_TAG);
        m.post_recv(specific);
        m.post_recv(wild);
        let hit = m.match_incoming(1, 1).unwrap();
        hit.completer.complete_empty();
        assert!(sq.is_complete());
        assert!(!wq.is_complete());
    }
}

//! The tag-matching engine: posted-receive and unexpected-message queues
//! for one communicator context.
//!
//! Classic MPI matching rules: an incoming message `(src, tag)` matches the
//! *first* posted receive (in post order) whose source and tag fields equal
//! the message's or are wildcards; a posted receive matches the *first*
//! compatible unexpected message (in arrival order). Per-sender FIFO is
//! inherited from the fabric's per-channel FIFO delivery.
//!
//! # Data structure
//!
//! [`MatchState`] buckets both queues by exact `(src, tag)` key, the way
//! MPICH's CH4 buckets matching queues per source to escape the classic
//! O(posted + unexpected) linear scan. Receives that use `ANY_SOURCE` or
//! `ANY_TAG` go to an ordered wildcard side-queue instead. Every entry is
//! stamped with a monotonically increasing sequence number at insertion,
//! and a match always takes the *lowest-sequence* compatible entry, so the
//! observable match order is exactly the historical post/arrival order even
//! when a wildcard and an exact receive both qualify. The common exact-match
//! case is an O(1) hash lookup; wildcard traffic pays O(wildcard queue) on
//! the posted side and O(active buckets) on the unexpected side.
//!
//! [`LinearMatchState`] preserves the original two-`VecDeque` linear-scan
//! implementation verbatim as the executable specification; the
//! `match_equivalence` property suite drives both on random interleavings
//! and requires identical observable behavior.

use std::collections::{HashMap, VecDeque};
use std::sync::Arc;

use mpfa_core::sync::Mutex;
use mpfa_core::Completer;
use mpfa_transport::MpfaBytes;

/// Wildcard source (`MPI_ANY_SOURCE`).
pub const ANY_SOURCE: i32 = -1;
/// Wildcard tag (`MPI_ANY_TAG`).
pub const ANY_TAG: i32 = -1;

/// What a [`RecvSlot`] currently holds. Single-frame payloads (eager, or
/// a one-chunk rendezvous) stay as the refcounted view the transport
/// delivered — on a shared-memory backend that is a window into the ring
/// itself, released when the view drops. Chunked reassembly needs an
/// owned buffer to scatter into.
#[derive(Default)]
enum SlotData {
    #[default]
    Empty,
    Owned(Vec<u8>),
    View(MpfaBytes),
}

impl SlotData {
    fn len(&self) -> usize {
        match self {
            SlotData::Empty => 0,
            SlotData::Owned(v) => v.len(),
            SlotData::View(b) => b.len(),
        }
    }
}

/// Destination buffer of an in-progress receive, shared between the posting
/// context and the progress hooks that fill it.
#[derive(Clone, Default)]
pub struct RecvSlot {
    data: Arc<Mutex<SlotData>>,
}

impl RecvSlot {
    /// An empty slot.
    pub fn new() -> RecvSlot {
        RecvSlot::default()
    }

    /// Replace the slot contents wholesale with an owned buffer.
    pub fn set(&self, bytes: Vec<u8>) {
        *self.data.lock() = SlotData::Owned(bytes);
    }

    /// Replace the slot contents wholesale with a payload view, without
    /// copying (the zero-copy eager landing).
    pub fn set_bytes(&self, bytes: MpfaBytes) {
        *self.data.lock() = SlotData::View(bytes);
    }

    /// Ensure capacity `total` and copy `bytes` at `offset` (rendezvous
    /// chunk reassembly — necessarily a copy, counted as such).
    pub fn write_at(&self, total: usize, offset: usize, bytes: &[u8]) {
        use std::sync::atomic::Ordering;
        let mut data = self.data.lock();
        // Reassembly scatters into an owned buffer; a view that somehow
        // got here first (protocol bug) would be silently aliased, so
        // flatten it defensively.
        if let SlotData::View(view) = &*data {
            *data = SlotData::Owned(view.to_vec());
        }
        if let SlotData::Empty = &*data {
            *data = SlotData::Owned(Vec::new());
        }
        let SlotData::Owned(buf) = &mut *data else {
            unreachable!("slot flattened to owned above");
        };
        if buf.len() < total {
            buf.resize(total, 0);
        }
        buf[offset..offset + bytes.len()].copy_from_slice(bytes);
        mpfa_obs::global_counters()
            .bytes_copied
            .fetch_add(bytes.len() as u64, Ordering::Relaxed);
    }

    /// Take the accumulated bytes out of the slot as an owned vector.
    /// Flattening a view costs one (counted) copy; callers that can keep
    /// the payload as a slice use [`RecvSlot::take_bytes`] instead.
    pub fn take(&self) -> Vec<u8> {
        use std::sync::atomic::Ordering;
        match std::mem::take(&mut *self.data.lock()) {
            SlotData::Empty => Vec::new(),
            SlotData::Owned(v) => v,
            SlotData::View(b) => {
                mpfa_obs::global_counters()
                    .bytes_copied
                    .fetch_add(b.len() as u64, Ordering::Relaxed);
                b.to_vec()
            }
        }
    }

    /// Take the accumulated bytes out of the slot without copying: a
    /// delivered view passes through as-is, an owned buffer is moved
    /// into a view.
    pub fn take_bytes(&self) -> MpfaBytes {
        match std::mem::take(&mut *self.data.lock()) {
            SlotData::Empty => MpfaBytes::empty(),
            SlotData::Owned(v) => MpfaBytes::from(v),
            SlotData::View(b) => b,
        }
    }

    /// Current byte length.
    pub fn len(&self) -> usize {
        self.data.lock().len()
    }

    /// True if nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// A receive posted by the application, waiting in the matching engine.
pub struct PostedRecv {
    /// Requested source (communicator rank) or [`ANY_SOURCE`].
    pub src: i32,
    /// Requested tag or [`ANY_TAG`].
    pub tag: i32,
    /// Receive capacity in bytes; larger incoming messages are a
    /// truncation error (fatal, as under `MPI_ERRORS_ARE_FATAL`).
    pub capacity: usize,
    /// Where the payload lands.
    pub slot: RecvSlot,
    /// Completes the application's request.
    pub completer: Completer,
}

impl PostedRecv {
    fn matches(&self, src: i32, tag: i32) -> bool {
        (self.src == ANY_SOURCE || self.src == src) && (self.tag == ANY_TAG || self.tag == tag)
    }

    /// True if either field is a wildcard (routes to the wildcard
    /// side-queue instead of an exact bucket).
    fn is_wild(&self) -> bool {
        self.src == ANY_SOURCE || self.tag == ANY_TAG
    }
}

/// A message that arrived before its receive was posted.
pub enum Unexpected {
    /// A complete eager payload (Figure 1(d): "eager unexpected receive").
    Eager {
        /// Sender's communicator rank.
        src: i32,
        /// Message tag.
        tag: i32,
        /// Full payload, still the view the transport delivered (on a
        /// shared-memory backend: a window into the ring, held until a
        /// matching receive consumes it).
        data: MpfaBytes,
    },
    /// A rendezvous announcement whose CTS we must defer until a receive
    /// is posted.
    Rts {
        /// Sender's communicator rank.
        src: i32,
        /// Message tag.
        tag: i32,
        /// Sender-side request id (echoed in the CTS).
        send_id: u64,
        /// Total transfer size.
        total: usize,
        /// Wire endpoint index to send the CTS to.
        reply_ep: usize,
    },
}

impl Unexpected {
    /// Sender rank of the pending message.
    pub fn src(&self) -> i32 {
        match self {
            Unexpected::Eager { src, .. } | Unexpected::Rts { src, .. } => *src,
        }
    }

    /// Tag of the pending message.
    pub fn tag(&self) -> i32 {
        match self {
            Unexpected::Eager { tag, .. } | Unexpected::Rts { tag, .. } => *tag,
        }
    }

    /// Payload size of the pending message.
    pub fn bytes(&self) -> usize {
        match self {
            Unexpected::Eager { data, .. } => data.len(),
            Unexpected::Rts { total, .. } => *total,
        }
    }

    fn matched_by(&self, recv: &PostedRecv) -> bool {
        recv.matches(self.src(), self.tag())
    }
}

fn record_unexpected_obs(msg: &Unexpected) {
    use std::sync::atomic::Ordering;
    mpfa_obs::global_counters()
        .unexpected_msgs
        .fetch_add(1, Ordering::Relaxed);
    mpfa_obs::record(|| mpfa_obs::EventKind::UnexpectedMsg {
        src: msg.src() as u32,
        tag: msg.tag() as i64,
    });
}

/// An entry stamped with its insertion sequence number. The sequence is
/// what keeps bucketed matching order-equivalent to a single FIFO: all
/// compatible candidates are compared by `seq` and the lowest wins.
struct Stamped<T> {
    seq: u64,
    item: T,
}

/// Matching state of one communicator context (bucketed; see the module
/// docs for the layout and the ordering argument).
#[derive(Default)]
pub struct MatchState {
    /// Next sequence number stamped on an inserted post or arrival.
    next_seq: u64,
    /// Exact-`(src, tag)` posted receives; FIFO (by seq) within a bucket.
    posted_exact: HashMap<(i32, i32), VecDeque<Stamped<PostedRecv>>>,
    /// Posted receives with `ANY_SOURCE` and/or `ANY_TAG`, in post order.
    posted_wild: VecDeque<Stamped<PostedRecv>>,
    /// Total posted receives across buckets + wildcard queue.
    posted_count: usize,
    /// Unexpected messages bucketed by their concrete `(src, tag)`;
    /// FIFO (by seq) within a bucket.
    unexpected: HashMap<(i32, i32), VecDeque<Stamped<Unexpected>>>,
    /// Total unexpected messages across buckets.
    unexpected_count: usize,
}

impl MatchState {
    /// Fresh, empty state.
    pub fn new() -> MatchState {
        MatchState::default()
    }

    fn stamp(&mut self) -> u64 {
        let s = self.next_seq;
        self.next_seq += 1;
        s
    }

    /// Sequence number of the oldest unexpected message matching
    /// `recv`, with the bucket key it lives under.
    fn oldest_unexpected_for(&self, src: i32, tag: i32) -> Option<((i32, i32), u64)> {
        if src != ANY_SOURCE && tag != ANY_TAG {
            // Exact probe: one hash lookup; bucket front is its oldest.
            let key = (src, tag);
            return self
                .unexpected
                .get(&key)
                .and_then(|q| q.front())
                .map(|e| (key, e.seq));
        }
        // Wildcard probe: compare the front (oldest) of every compatible
        // bucket; the arrival order winner is the minimum sequence.
        self.unexpected
            .iter()
            .filter(|((s, t), q)| {
                !q.is_empty() && (src == ANY_SOURCE || src == *s) && (tag == ANY_TAG || tag == *t)
            })
            .filter_map(|(key, q)| q.front().map(|e| (*key, e.seq)))
            .min_by_key(|(_, seq)| *seq)
    }

    fn take_unexpected(&mut self, key: (i32, i32)) -> Unexpected {
        let q = self.unexpected.get_mut(&key).expect("bucket exists");
        let entry = q.pop_front().expect("bucket non-empty");
        if q.is_empty() {
            self.unexpected.remove(&key);
        }
        self.unexpected_count -= 1;
        entry.item
    }

    /// Try to satisfy `recv` from the unexpected queue. If an unexpected
    /// message matches, it is removed and returned with the receive;
    /// otherwise the receive is enqueued.
    pub fn post_recv(&mut self, recv: PostedRecv) -> Option<(PostedRecv, Unexpected)> {
        if let Some((key, _)) = self.oldest_unexpected_for(recv.src, recv.tag) {
            return Some((recv, self.take_unexpected(key)));
        }
        let seq = self.stamp();
        let entry = Stamped { seq, item: recv };
        if entry.item.is_wild() {
            self.posted_wild.push_back(entry);
        } else {
            self.posted_exact
                .entry((entry.item.src, entry.item.tag))
                .or_default()
                .push_back(entry);
        }
        self.posted_count += 1;
        None
    }

    /// Try to match an incoming message against the posted queue. The
    /// first matching receive (post order) is removed and returned.
    pub fn match_incoming(&mut self, src: i32, tag: i32) -> Option<PostedRecv> {
        use std::sync::atomic::Ordering;
        // Oldest exact candidate: front of the (src, tag) bucket.
        let exact_seq = self
            .posted_exact
            .get(&(src, tag))
            .and_then(|q| q.front())
            .map(|e| e.seq);
        // Oldest wildcard candidate: first compatible entry in post order
        // (the queue is seq-sorted, so the first hit is the oldest).
        let wild_pos = self
            .posted_wild
            .iter()
            .position(|e| e.item.matches(src, tag));
        let wild_seq = wild_pos.map(|p| self.posted_wild[p].seq);

        let use_exact = match (exact_seq, wild_seq) {
            (None, None) => return None,
            (Some(_), None) => true,
            (None, Some(_)) => false,
            // Both compatible: post order decides.
            (Some(e), Some(w)) => e < w,
        };
        let counters = mpfa_obs::global_counters();
        let recv = if use_exact {
            counters.match_bucket_hits.fetch_add(1, Ordering::Relaxed);
            let q = self.posted_exact.get_mut(&(src, tag)).expect("bucket");
            let entry = q.pop_front().expect("front checked");
            if q.is_empty() {
                self.posted_exact.remove(&(src, tag));
            }
            entry.item
        } else {
            counters.match_wildcard_hits.fetch_add(1, Ordering::Relaxed);
            self.posted_wild
                .remove(wild_pos.expect("wildcard position"))
                .expect("position valid")
                .item
        };
        self.posted_count -= 1;
        Some(recv)
    }

    /// Queue a message that matched nothing.
    pub fn push_unexpected(&mut self, msg: Unexpected) {
        record_unexpected_obs(&msg);
        let seq = self.stamp();
        let key = (msg.src(), msg.tag());
        self.unexpected
            .entry(key)
            .or_default()
            .push_back(Stamped { seq, item: msg });
        self.unexpected_count += 1;
    }

    /// Number of posted receives waiting.
    pub fn posted_len(&self) -> usize {
        self.posted_count
    }

    /// Number of unexpected messages waiting.
    pub fn unexpected_len(&self) -> usize {
        self.unexpected_count
    }

    /// Peek for a matching unexpected message (probe semantics) using the
    /// wildcard-aware predicate. Returns `(src, tag, bytes)`.
    pub fn probe_unexpected(&self, src: i32, tag: i32) -> Option<(i32, i32, usize)> {
        let (key, _) = self.oldest_unexpected_for(src, tag)?;
        self.unexpected
            .get(&key)
            .and_then(|q| q.front())
            .map(|e| (e.item.src(), e.item.tag(), e.item.bytes()))
    }

    /// Remove every posted receive `pred(src, tag)` accepts and hand the
    /// entries back (the fault path: the caller fails their completers).
    /// Wildcard fields are passed through as-is ([`ANY_SOURCE`] /
    /// [`ANY_TAG`]), so a predicate testing `src == some_rank` naturally
    /// leaves `ANY_SOURCE` receives in place.
    pub fn drain_posted(&mut self, pred: &dyn Fn(i32, i32) -> bool) -> Vec<PostedRecv> {
        let mut out = Vec::new();
        self.posted_exact.retain(|&(src, tag), q| {
            if pred(src, tag) {
                out.extend(q.drain(..).map(|e| e.item));
                false
            } else {
                true
            }
        });
        let mut keep = VecDeque::with_capacity(self.posted_wild.len());
        for e in self.posted_wild.drain(..) {
            if pred(e.item.src, e.item.tag) {
                out.push(e.item);
            } else {
                keep.push_back(e);
            }
        }
        self.posted_wild = keep;
        self.posted_count -= out.len();
        out
    }
}

/// The original linear-scan matching engine, retained verbatim as the
/// executable specification of the MPI matching rules.
///
/// Tests (unit and the `match_equivalence` property suite) drive this and
/// [`MatchState`] on identical operation sequences and assert the
/// observable outcomes are the same. Not used on any production path.
#[derive(Default)]
pub struct LinearMatchState {
    posted: VecDeque<PostedRecv>,
    unexpected: VecDeque<Unexpected>,
}

impl LinearMatchState {
    /// Fresh, empty state.
    pub fn new() -> LinearMatchState {
        LinearMatchState::default()
    }

    /// See [`MatchState::post_recv`].
    pub fn post_recv(&mut self, recv: PostedRecv) -> Option<(PostedRecv, Unexpected)> {
        if let Some(pos) = self.unexpected.iter().position(|u| u.matched_by(&recv)) {
            let unexpected = self.unexpected.remove(pos).expect("position valid");
            Some((recv, unexpected))
        } else {
            self.posted.push_back(recv);
            None
        }
    }

    /// See [`MatchState::match_incoming`].
    pub fn match_incoming(&mut self, src: i32, tag: i32) -> Option<PostedRecv> {
        let pos = self.posted.iter().position(|r| r.matches(src, tag))?;
        self.posted.remove(pos)
    }

    /// See [`MatchState::push_unexpected`] (reference: no obs recording).
    pub fn push_unexpected(&mut self, msg: Unexpected) {
        self.unexpected.push_back(msg);
    }

    /// Number of posted receives waiting.
    pub fn posted_len(&self) -> usize {
        self.posted.len()
    }

    /// Number of unexpected messages waiting.
    pub fn unexpected_len(&self) -> usize {
        self.unexpected.len()
    }

    /// See [`MatchState::probe_unexpected`].
    pub fn probe_unexpected(&self, src: i32, tag: i32) -> Option<(i32, i32, usize)> {
        self.unexpected
            .iter()
            .find(|u| (src == ANY_SOURCE || src == u.src()) && (tag == ANY_TAG || tag == u.tag()))
            .map(|u| (u.src(), u.tag(), u.bytes()))
    }

    /// See [`MatchState::drain_posted`].
    pub fn drain_posted(&mut self, pred: &dyn Fn(i32, i32) -> bool) -> Vec<PostedRecv> {
        let mut out = Vec::new();
        let mut keep = VecDeque::with_capacity(self.posted.len());
        for r in self.posted.drain(..) {
            if pred(r.src, r.tag) {
                out.push(r);
            } else {
                keep.push_back(r);
            }
        }
        self.posted = keep;
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpfa_core::{Request, Stream};

    fn posted(src: i32, tag: i32) -> (PostedRecv, Request) {
        let stream = Stream::create();
        let (req, completer) = Request::pair(&stream);
        (
            PostedRecv {
                src,
                tag,
                capacity: 1 << 20,
                slot: RecvSlot::new(),
                completer,
            },
            req,
        )
    }

    fn eager(src: i32, tag: i32, n: usize) -> Unexpected {
        Unexpected::Eager {
            src,
            tag,
            data: vec![0xAB; n].into(),
        }
    }

    #[test]
    fn recv_slot_roundtrip() {
        let slot = RecvSlot::new();
        assert!(slot.is_empty());
        slot.set(vec![1, 2, 3]);
        assert_eq!(slot.len(), 3);
        assert_eq!(slot.take(), vec![1, 2, 3]);
        assert!(slot.is_empty());
    }

    #[test]
    fn recv_slot_view_passthrough_is_zero_copy() {
        let slot = RecvSlot::new();
        let view = MpfaBytes::from(vec![1u8, 2, 3, 4]);
        let ptr = view.as_ptr();
        slot.set_bytes(view);
        assert_eq!(slot.len(), 4);
        let out = slot.take_bytes();
        assert_eq!(out.as_ptr(), ptr, "view must pass through uncopied");
        assert_eq!(&out[..], &[1, 2, 3, 4]);
        assert!(slot.is_empty());
    }

    #[test]
    fn recv_slot_take_flattens_view_and_counts_copy() {
        let slot = RecvSlot::new();
        slot.set_bytes(MpfaBytes::from(vec![9u8; 100]));
        let before = mpfa_obs::global_counters().snapshot().bytes_copied;
        assert_eq!(slot.take(), vec![9u8; 100]);
        let after = mpfa_obs::global_counters().snapshot().bytes_copied;
        // >= because the counters are process-global and other tests run
        // concurrently.
        assert!(after - before >= 100, "flattening a view is a counted copy");
    }

    #[test]
    fn recv_slot_chunked_assembly() {
        let slot = RecvSlot::new();
        slot.write_at(6, 3, &[4, 5, 6]);
        slot.write_at(6, 0, &[1, 2, 3]);
        assert_eq!(slot.take(), vec![1, 2, 3, 4, 5, 6]);
    }

    #[test]
    fn exact_match_prefers_first_posted() {
        let mut m = MatchState::new();
        let (r1, _q1) = posted(0, 5);
        let (r2, _q2) = posted(0, 5);
        m.post_recv(r1);
        m.post_recv(r2);
        assert_eq!(m.posted_len(), 2);
        let hit = m.match_incoming(0, 5).expect("match");
        // First posted wins; the remaining one is the second.
        assert_eq!(m.posted_len(), 1);
        drop(hit);
    }

    #[test]
    fn wildcard_source_and_tag() {
        let mut m = MatchState::new();
        let (r, _q) = posted(ANY_SOURCE, ANY_TAG);
        m.post_recv(r);
        assert!(m.match_incoming(3, 17).is_some());
        assert!(m.match_incoming(3, 17).is_none());
    }

    #[test]
    fn no_match_on_wrong_tag() {
        let mut m = MatchState::new();
        let (r, _q) = posted(0, 5);
        m.post_recv(r);
        assert!(m.match_incoming(0, 6).is_none());
        assert_eq!(m.posted_len(), 1);
    }

    #[test]
    fn unexpected_consumed_by_matching_post() {
        let mut m = MatchState::new();
        m.push_unexpected(eager(2, 9, 16));
        let (r, _q) = posted(2, 9);
        let (recv, unexp) = m.post_recv(r).expect("should match unexpected");
        assert_eq!(unexp.src(), 2);
        assert_eq!(unexp.bytes(), 16);
        assert_eq!(m.unexpected_len(), 0);
        drop(recv);
    }

    #[test]
    fn unexpected_fifo_order_for_wildcards() {
        let mut m = MatchState::new();
        m.push_unexpected(eager(1, 7, 4));
        m.push_unexpected(eager(2, 7, 8));
        let (r, _q) = posted(ANY_SOURCE, 7);
        let (_recv, unexp) = m.post_recv(r).unwrap();
        assert_eq!(unexp.src(), 1, "earliest unexpected must match first");
        assert_eq!(m.unexpected_len(), 1);
    }

    #[test]
    fn non_matching_unexpected_skipped() {
        let mut m = MatchState::new();
        m.push_unexpected(eager(1, 7, 4));
        m.push_unexpected(eager(1, 8, 4));
        let (r, _q) = posted(1, 8);
        let (_recv, unexp) = m.post_recv(r).unwrap();
        assert_eq!(unexp.tag(), 8);
        assert_eq!(m.unexpected_len(), 1);
    }

    #[test]
    fn rts_unexpected_carries_protocol_fields() {
        let mut m = MatchState::new();
        m.push_unexpected(Unexpected::Rts {
            src: 4,
            tag: 2,
            send_id: 77,
            total: 1 << 20,
            reply_ep: 12,
        });
        let (r, _q) = posted(4, ANY_TAG);
        let (_recv, unexp) = m.post_recv(r).unwrap();
        match unexp {
            Unexpected::Rts {
                send_id,
                total,
                reply_ep,
                ..
            } => {
                assert_eq!(send_id, 77);
                assert_eq!(total, 1 << 20);
                assert_eq!(reply_ep, 12);
            }
            Unexpected::Eager { .. } => panic!("wrong variant"),
        }
    }

    #[test]
    fn probe_peeks_without_consuming() {
        let mut m = MatchState::new();
        assert!(m.probe_unexpected(ANY_SOURCE, ANY_TAG).is_none());
        m.push_unexpected(eager(3, 11, 24));
        assert_eq!(m.probe_unexpected(3, 11), Some((3, 11, 24)));
        assert_eq!(m.probe_unexpected(ANY_SOURCE, ANY_TAG), Some((3, 11, 24)));
        assert!(m.probe_unexpected(2, 11).is_none());
        assert_eq!(m.unexpected_len(), 1);
    }

    #[test]
    fn probe_wildcard_returns_oldest_arrival() {
        let mut m = MatchState::new();
        m.push_unexpected(eager(5, 2, 10));
        m.push_unexpected(eager(1, 9, 20));
        m.push_unexpected(eager(5, 9, 30));
        // Oldest overall.
        assert_eq!(m.probe_unexpected(ANY_SOURCE, ANY_TAG), Some((5, 2, 10)));
        // Oldest with tag 9 is the (1, 9) arrival, not (5, 9).
        assert_eq!(m.probe_unexpected(ANY_SOURCE, 9), Some((1, 9, 20)));
        // Oldest from src 5 with any tag.
        assert_eq!(m.probe_unexpected(5, ANY_TAG), Some((5, 2, 10)));
    }

    #[test]
    fn wildcard_post_vs_specific_post_ordering() {
        // A specific receive posted first must win over a later wildcard.
        let mut m = MatchState::new();
        let (specific, sq) = posted(1, 1);
        let (wild, wq) = posted(ANY_SOURCE, ANY_TAG);
        m.post_recv(specific);
        m.post_recv(wild);
        let hit = m.match_incoming(1, 1).unwrap();
        hit.completer.complete_empty();
        assert!(sq.is_complete());
        assert!(!wq.is_complete());
    }

    #[test]
    fn wildcard_posted_first_beats_later_exact() {
        // The mirror case: an older wildcard must win over a newer exact
        // receive for the same (src, tag).
        let mut m = MatchState::new();
        let (wild, wq) = posted(ANY_SOURCE, ANY_TAG);
        let (specific, sq) = posted(1, 1);
        m.post_recv(wild);
        m.post_recv(specific);
        let hit = m.match_incoming(1, 1).unwrap();
        hit.completer.complete_empty();
        assert!(wq.is_complete());
        assert!(!sq.is_complete());
        // The exact receive is still postable against the next message.
        assert!(m.match_incoming(1, 1).is_some());
        assert_eq!(m.posted_len(), 0);
    }

    #[test]
    fn exact_buckets_do_not_cross_match() {
        let mut m = MatchState::new();
        let (r1, _q1) = posted(1, 1);
        let (r2, _q2) = posted(2, 2);
        m.post_recv(r1);
        m.post_recv(r2);
        assert!(m.match_incoming(2, 1).is_none());
        assert!(m.match_incoming(1, 2).is_none());
        assert!(m.match_incoming(2, 2).is_some());
        assert!(m.match_incoming(1, 1).is_some());
        assert_eq!(m.posted_len(), 0);
    }

    #[test]
    fn counts_stay_consistent_across_bucket_churn() {
        let mut m = MatchState::new();
        for i in 0..10 {
            let (r, _q) = posted(i % 3, i % 2);
            m.post_recv(r);
        }
        assert_eq!(m.posted_len(), 10);
        let mut matched = 0;
        for i in 0..10 {
            if m.match_incoming(i % 3, i % 2).is_some() {
                matched += 1;
            }
        }
        assert_eq!(matched, 10);
        assert_eq!(m.posted_len(), 0);
        for i in 0..6 {
            m.push_unexpected(eager(i % 2, i % 3, 4));
        }
        assert_eq!(m.unexpected_len(), 6);
        for i in 0..6 {
            let (r, _q) = posted(i % 2, i % 3);
            assert!(m.post_recv(r).is_some());
        }
        assert_eq!(m.unexpected_len(), 0);
    }

    #[test]
    fn drain_posted_by_source_spares_wildcards() {
        let mut m = MatchState::new();
        let mut lin = LinearMatchState::new();
        for state in [0, 1] {
            let (r1, q1) = posted(2, 5);
            let (r2, q2) = posted(1, 5);
            let (r3, q3) = posted(ANY_SOURCE, 5);
            let (r4, q4) = posted(2, ANY_TAG);
            if state == 0 {
                m.post_recv(r1);
                m.post_recv(r2);
                m.post_recv(r3);
                m.post_recv(r4);
            } else {
                lin.post_recv(r1);
                lin.post_recv(r2);
                lin.post_recv(r3);
                lin.post_recv(r4);
            }
            let drained = if state == 0 {
                m.drain_posted(&|src, _| src == 2)
            } else {
                lin.drain_posted(&|src, _| src == 2)
            };
            assert_eq!(drained.len(), 2);
            assert!(drained.iter().all(|r| r.src == 2));
            let left = if state == 0 {
                m.posted_len()
            } else {
                lin.posted_len()
            };
            assert_eq!(left, 2, "exact(1,5) and ANY_SOURCE survive");
            drop((q1, q2, q3, q4));
        }
        // Survivors still match.
        assert!(m.match_incoming(1, 5).is_some());
        assert!(m.match_incoming(7, 5).is_some(), "wildcard still posted");
        assert_eq!(m.posted_len(), 0);
    }

    #[test]
    fn linear_reference_agrees_on_basic_cases() {
        let mut lin = LinearMatchState::new();
        let mut fast = MatchState::new();
        lin.push_unexpected(eager(1, 7, 4));
        fast.push_unexpected(eager(1, 7, 4));
        lin.push_unexpected(eager(2, 7, 8));
        fast.push_unexpected(eager(2, 7, 8));
        assert_eq!(
            lin.probe_unexpected(ANY_SOURCE, 7),
            fast.probe_unexpected(ANY_SOURCE, 7)
        );
        let (rl, _ql) = posted(ANY_SOURCE, 7);
        let (rf, _qf) = posted(ANY_SOURCE, 7);
        let ul = lin.post_recv(rl).unwrap().1;
        let uf = fast.post_recv(rf).unwrap().1;
        assert_eq!((ul.src(), ul.tag()), (uf.src(), uf.tag()));
        assert_eq!(lin.unexpected_len(), fast.unexpected_len());
    }
}

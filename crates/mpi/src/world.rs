//! World bootstrap: the in-process equivalent of `mpiexec -n N`.
//!
//! A [`World`] owns the simulated fabric and the cross-rank agreement
//! tables that real MPI implementations realize with out-of-band setup
//! (PMI): context-id allocation, VCI assignment, and the data exchange
//! backing `comm_split`. Being in-process, these are small shared tables;
//! they are used only at communicator-creation time, never on the message
//! path.

use std::collections::HashMap;
use std::sync::Arc;

use mpfa_core::sync::Mutex;
use mpfa_fabric::{Fabric, FabricConfig};
use mpfa_transport::bootstrap::{self, BootEnv};
use mpfa_transport::{sim_rank_views, SharedTransport, TransportKind, WireOpts};

use crate::error::{MpiError, MpiResult};
use crate::proc::Proc;
use crate::protocol::ProtoConfig;
use crate::wire::WireMsg;

/// Configuration of a world: topology, wire costs, protocol thresholds.
#[derive(Debug, Clone, PartialEq)]
pub struct WorldConfig {
    /// Number of ranks.
    pub ranks: usize,
    /// Ranks per node (same-node traffic takes the shmem path).
    pub node_size: usize,
    /// Cross-node one-way latency, seconds.
    pub inter_latency: f64,
    /// Same-node one-way latency, seconds.
    pub intra_latency: f64,
    /// Cross-node bandwidth, bytes/s (0.0 = infinite).
    pub inter_bandwidth: f64,
    /// Same-node bandwidth, bytes/s (0.0 = infinite).
    pub intra_bandwidth: f64,
    /// Fabric MTU (largest single packet payload).
    pub mtu: usize,
    /// Per-packet latency jitter fraction (see
    /// [`mpfa_fabric::FabricConfig::jitter`]).
    pub jitter: f64,
    /// Point-to-point protocol thresholds.
    pub proto: ProtoConfig,
    /// Virtual communication interfaces per rank (VCI 0 is the default
    /// stream's; each stream communicator takes one more).
    pub max_vcis: usize,
    /// Which packet substrate carries the traffic. [`TransportKind::Sim`]
    /// (the default) is the in-process simulated fabric; the wire kinds
    /// require [`World::launch`] under an `mpfarun`-style environment.
    pub transport: TransportKind,
}

impl WorldConfig {
    /// Instant deterministic fabric, one rank per node.
    pub fn instant(ranks: usize) -> WorldConfig {
        WorldConfig {
            ranks,
            node_size: 1,
            inter_latency: 0.0,
            intra_latency: 0.0,
            inter_bandwidth: 0.0,
            intra_bandwidth: 0.0,
            mtu: usize::MAX,
            jitter: 0.0,
            proto: ProtoConfig::default(),
            max_vcis: 8,
            transport: TransportKind::Sim,
        }
    }

    /// Instant fabric with `node_size` ranks per node.
    pub fn instant_nodes(ranks: usize, node_size: usize) -> WorldConfig {
        WorldConfig {
            node_size,
            ..WorldConfig::instant(ranks)
        }
    }

    /// Cluster-like wire costs (µs latency, GB/s bandwidth), one rank per
    /// node — shaped after the paper's Bebop testbed.
    pub fn cluster(ranks: usize) -> WorldConfig {
        WorldConfig {
            ranks,
            node_size: 1,
            inter_latency: 1.5e-6,
            intra_latency: 0.2e-6,
            inter_bandwidth: 12.0e9,
            intra_bandwidth: 40.0e9,
            mtu: 1 << 22,
            jitter: 0.0,
            proto: ProtoConfig::default(),
            max_vcis: 8,
            transport: TransportKind::Sim,
        }
    }

    /// All ranks on one node (shmem path only).
    pub fn single_node(ranks: usize) -> WorldConfig {
        WorldConfig {
            node_size: ranks.max(1),
            ..WorldConfig::cluster(ranks)
        }
    }

    /// The fabric configuration realizing this world: each rank owns
    /// `max_vcis` consecutive wire endpoints.
    pub(crate) fn fabric_config(&self) -> FabricConfig {
        FabricConfig {
            ranks: self.ranks * self.max_vcis,
            node_size: self.node_size * self.max_vcis,
            inter_latency: self.inter_latency,
            intra_latency: self.intra_latency,
            inter_bandwidth: self.inter_bandwidth,
            intra_bandwidth: self.intra_bandwidth,
            mtu: self.mtu,
            jitter: self.jitter,
        }
    }

    /// Wire endpoint index of `(world_rank, vci)`.
    #[inline]
    pub(crate) fn ep_index(&self, world_rank: usize, vci: usize) -> usize {
        world_rank * self.max_vcis + vci
    }

    /// Validate invariants across every layer this config feeds: protocol
    /// thresholds, the derived fabric configuration, and the VCI count.
    /// Panics with a descriptive message on nonsense configurations
    /// (MPI_ERRORS_ARE_FATAL semantics, like the layers it checks).
    pub fn validate(&self) {
        self.proto.validate();
        self.fabric_config().validate();
        assert!(self.max_vcis >= 1, "need at least one VCI");
    }

    /// Apply the `MPFA_TRANSPORT` environment override, if set. Panics on
    /// an unparseable value — a launcher bug, not a user error.
    pub fn transport_from_env(mut self) -> WorldConfig {
        match TransportKind::from_env() {
            Ok(Some(kind)) => self.transport = kind,
            Ok(None) => {}
            Err(v) => panic!("bad MPFA_TRANSPORT={v} (want sim|tcp|uds|shm)"),
        }
        self
    }
}

/// Context-id / VCI agreement tables.
pub(crate) struct Registry {
    /// `(parent_ctx, child_key) -> child_ctx`; every rank deriving the same
    /// child (same parent, same creation index, same color) gets the same id.
    ctx: HashMap<(u64, u64), u64>,
    next_ctx: u64,
    /// `ctx -> vci`; VCI 0 belongs to default-stream communicators.
    vci: HashMap<u64, usize>,
    next_vci: usize,
}

impl Registry {
    fn new() -> Registry {
        let mut vci = HashMap::new();
        vci.insert(0, 0); // world comm
        Registry {
            ctx: HashMap::new(),
            next_ctx: 1,
            vci,
            next_vci: 1,
        }
    }

    /// Deterministic child-context allocation.
    pub(crate) fn child_ctx(&mut self, parent: u64, key: u64) -> u64 {
        if let Some(&ctx) = self.ctx.get(&(parent, key)) {
            return ctx;
        }
        let ctx = self.next_ctx;
        // Wire contexts are `ctx*2`/`ctx*2+1`; keep even those clear of
        // the reserved control-plane band (resil, flow) by a huge margin.
        assert!(
            ctx < crate::reserved::RESERVED_CTX_FLOOR / 4,
            "communicator context allocation ran into the reserved control band"
        );
        self.next_ctx += 1;
        self.ctx.insert((parent, key), ctx);
        ctx
    }

    /// VCI assignment for a context. `fresh` requests a dedicated VCI
    /// (stream communicators); otherwise the context inherits `inherit`.
    pub(crate) fn vci_for_ctx(
        &mut self,
        ctx: u64,
        fresh: bool,
        inherit: usize,
        max_vcis: usize,
    ) -> MpiResult<usize> {
        if let Some(&v) = self.vci.get(&ctx) {
            return Ok(v);
        }
        let v = if fresh {
            if self.next_vci >= max_vcis {
                return Err(MpiError::Protocol(format!(
                    "out of VCIs: {max_vcis} configured, all in use \
                     (raise WorldConfig::max_vcis)"
                )));
            }
            let v = self.next_vci;
            self.next_vci += 1;
            v
        } else {
            inherit
        };
        self.vci.insert(ctx, v);
        Ok(v)
    }
}

/// One rank's contribution to a split exchange.
type ExchangeValue = Vec<i64>;

struct ExchangeSlot {
    values: Vec<Option<ExchangeValue>>,
    reads: usize,
}

pub(crate) struct WorldInner {
    pub(crate) config: WorldConfig,
    /// The packet substrate every VCI sends and polls through.
    pub(crate) port: SharedTransport<WireMsg>,
    /// Per-rank transport views (in-process sim only): each rank's VCIs
    /// send and poll through its own view, so per-rank liveness
    /// accounting (`dead_peers`, `kill_peer`) attributes correctly —
    /// the same `Transport` surface a wire rank sees. Empty when
    /// distributed (the single local rank owns `port` outright).
    rank_ports: Vec<SharedTransport<WireMsg>>,
    /// The simulated fabric behind `port`, kept for diagnostics; `None`
    /// when the world runs over a real wire.
    sim: Option<Fabric<WireMsg>>,
    /// True when this process holds ONE rank of a multi-process world
    /// (wire transport) rather than all ranks in-process.
    distributed: bool,
    pub(crate) registry: Mutex<Registry>,
    exchanges: Mutex<HashMap<(u64, u64, u8), ExchangeSlot>>,
}

/// Handle to the shared world state. Cheap to clone.
#[derive(Clone)]
pub struct World {
    pub(crate) inner: Arc<WorldInner>,
}

/// What [`World::launch`] booted, depending on the environment.
pub enum Launch {
    /// No launcher environment: every rank lives in this process (the
    /// classic simulation mode; hand each [`Proc`] to its own thread).
    InProcess(Vec<Proc>),
    /// An `mpfarun`-style launcher started N OS processes; this is the
    /// local process's single rank, connected to its peers over the wire.
    Distributed(Proc),
}

impl Launch {
    /// The ranks living in this process (one when distributed).
    pub fn procs(self) -> Vec<Proc> {
        match self {
            Launch::InProcess(procs) => procs,
            Launch::Distributed(proc) => vec![proc],
        }
    }

    /// True when this process holds one rank of a multi-process world.
    pub fn is_distributed(&self) -> bool {
        matches!(self, Launch::Distributed(_))
    }
}

impl World {
    /// Boot a world: build the fabric and return one [`Proc`] per rank.
    ///
    /// Typical use hands each `Proc` to its own OS thread:
    ///
    /// ```
    /// use mpfa_mpi::{World, WorldConfig};
    /// let procs = World::init(WorldConfig::instant(4));
    /// std::thread::scope(|s| {
    ///     for proc in procs {
    ///         s.spawn(move || {
    ///             let comm = proc.world_comm();
    ///             assert_eq!(comm.size(), 4);
    ///         });
    ///     }
    /// });
    /// ```
    pub fn init(config: WorldConfig) -> Vec<Proc> {
        config.validate();
        assert_eq!(
            config.transport,
            TransportKind::Sim,
            "World::init is in-process only; wire transports come up \
             through World::launch under an mpfarun environment"
        );
        let fabric: Fabric<WireMsg> = Fabric::new(config.fabric_config());
        let rank_ports = sim_rank_views::<WireMsg>(fabric.clone(), config.ranks, config.max_vcis);
        let world = World {
            inner: Arc::new(WorldInner {
                port: Arc::new(fabric.clone()),
                rank_ports,
                sim: Some(fabric),
                distributed: false,
                registry: Mutex::new(Registry::new()),
                exchanges: Mutex::new(HashMap::new()),
                config,
            }),
        };
        (0..world.inner.config.ranks)
            .map(|rank| Proc::new(world.clone(), rank))
            .collect()
    }

    /// Boot ONE rank of a multi-process world over an established wire
    /// transport. `rank` is this process's world rank; `port` must span
    /// `ranks * max_vcis` endpoints (what [`bootstrap::establish`] hands
    /// back for `eps_per_rank = max_vcis`).
    ///
    /// Most callers want [`World::launch`], which reads the launcher
    /// environment and runs the bootstrap itself.
    pub fn init_with_transport(
        config: WorldConfig,
        rank: usize,
        port: SharedTransport<WireMsg>,
    ) -> Proc {
        config.validate();
        assert!(rank < config.ranks, "rank {rank} out of range");
        assert_eq!(
            port.endpoints(),
            config.ranks * config.max_vcis,
            "transport endpoint count does not match ranks * max_vcis"
        );
        let world = World {
            inner: Arc::new(WorldInner {
                port,
                rank_ports: Vec::new(),
                sim: None,
                distributed: true,
                registry: Mutex::new(Registry::new()),
                exchanges: Mutex::new(HashMap::new()),
                config,
            }),
        };
        Proc::new(world, rank)
    }

    /// `mpiexec`-style entry point: boot this process's view of the world,
    /// wherever it runs.
    ///
    /// * Under a launcher environment (`MPFA_RANK`/`MPFA_RANKS`/
    ///   `MPFA_PEERS` set, as `mpfarun` does) — run the wire bootstrap and
    ///   return [`Launch::Distributed`] with this process's single rank.
    ///   The launcher's world size and transport kind override the config.
    /// * Otherwise — in-process simulation, [`Launch::InProcess`] with all
    ///   ranks, exactly like [`World::init`].
    ///
    /// Panics if the wire bootstrap fails (rendezvous unreachable, mesh
    /// timeout) — MPI_ERRORS_ARE_FATAL semantics.
    pub fn launch(config: WorldConfig) -> Launch {
        match bootstrap::boot_env() {
            None => Launch::InProcess(World::init(WorldConfig {
                transport: TransportKind::Sim,
                ..config
            })),
            Some(env) => Launch::Distributed(World::launch_distributed(config, &env)),
        }
    }

    fn launch_distributed(config: WorldConfig, env: &BootEnv) -> Proc {
        let config = WorldConfig {
            ranks: env.ranks,
            transport: env.kind,
            ..config
        };
        config.validate();
        let port = bootstrap::establish::<WireMsg>(env, config.max_vcis, WireOpts::from_env())
            .unwrap_or_else(|e| {
                panic!(
                    "wire bootstrap failed for rank {}/{} over {}: {e}",
                    env.rank, env.ranks, env.kind
                )
            });
        World::init_with_transport(config, env.rank, port)
    }

    /// The world configuration.
    pub fn config(&self) -> &WorldConfig {
        &self.inner.config
    }

    /// Number of ranks.
    pub fn size(&self) -> usize {
        self.inner.config.ranks
    }

    /// True when this process holds one rank of a multi-process world.
    pub fn distributed(&self) -> bool {
        self.inner.distributed
    }

    /// The packet substrate carrying this world's traffic.
    pub fn transport(&self) -> SharedTransport<WireMsg> {
        self.inner.port.clone()
    }

    /// The transport surface `rank` sends and polls through: its own
    /// per-rank view of the simulated fabric (liveness attributed to
    /// `rank`), or the wire transport itself when distributed.
    pub fn rank_transport(&self, rank: usize) -> SharedTransport<WireMsg> {
        if self.inner.distributed || self.inner.rank_ports.is_empty() {
            self.inner.port.clone()
        } else {
            self.inner.rank_ports[rank].clone()
        }
    }

    /// Chaos kill switch (in-process sim worlds only): mark `victim` as
    /// dead on every rank's transport view, the in-process analogue of
    /// `mpfarun --kill-rank`. The victim's thread keeps running, but its
    /// sends are refused and every peer's failure detector observes the
    /// death. Returns false when the world is distributed (kill the OS
    /// process instead), single-rank, or `victim` is out of range.
    pub fn chaos_kill(&self, victim: usize) -> bool {
        if self.inner.distributed || victim >= self.inner.rank_ports.len() {
            return false;
        }
        if self.inner.rank_ports.len() < 2 {
            return false;
        }
        let killer = (victim + 1) % self.inner.rank_ports.len();
        self.inner.rank_ports[killer].kill_peer(victim)
    }

    /// Schedule `victim`'s death for process-clock time `at` seconds (in-
    /// process sim worlds only) — the virtual-time form of
    /// [`World::chaos_kill`]. Under deterministic simulation the kill
    /// lands at exactly `at` on the simulated timeline, so the same seed
    /// replays the same death. Returns false when the world is
    /// distributed, single-rank, or `victim` is out of range.
    pub fn chaos_kill_at(&self, victim: usize, at: f64) -> bool {
        if self.inner.distributed
            || victim >= self.inner.rank_ports.len()
            || self.inner.rank_ports.len() < 2
        {
            return false;
        }
        let killer = (victim + 1) % self.inner.rank_ports.len();
        self.inner.rank_ports[killer].schedule_kill(victim, at)
    }

    /// The underlying simulated fabric (diagnostics). `None` when the
    /// world runs over a real wire transport.
    pub fn fabric(&self) -> Option<&Fabric<WireMsg>> {
        self.inner.sim.as_ref()
    }

    /// Blocking all-to-all exchange of small agreement vectors among the
    /// `size` participants of a communicator-creation call. `index` is the
    /// caller's slot. Spin-waits for the peers (they are required to make
    /// the same collective call, per MPI semantics).
    pub(crate) fn exchange(
        &self,
        key: (u64, u64, u8),
        size: usize,
        index: usize,
        value: ExchangeValue,
    ) -> Vec<ExchangeValue> {
        assert!(
            !self.inner.distributed,
            "communicator splits need the in-process exchange table, which a \
             distributed world does not share; split communicators are not \
             yet supported over wire transports"
        );
        let mut deposited = false;
        loop {
            {
                let mut map = self.inner.exchanges.lock();
                let slot = map.entry(key).or_insert_with(|| ExchangeSlot {
                    values: vec![None; size],
                    reads: 0,
                });
                if !deposited {
                    assert!(
                        slot.values[index].is_none(),
                        "duplicate exchange deposit at {key:?}[{index}]"
                    );
                    slot.values[index] = Some(value.clone());
                    deposited = true;
                }
                if slot.values.iter().all(Option::is_some) {
                    let result: Vec<ExchangeValue> = slot
                        .values
                        .iter()
                        .map(|v| v.clone().expect("all some"))
                        .collect();
                    slot.reads += 1;
                    if slot.reads == size {
                        map.remove(&key);
                    }
                    return result;
                }
            }
            std::thread::yield_now();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn init_hands_out_one_proc_per_rank() {
        let procs = World::init(WorldConfig::instant(4));
        assert_eq!(procs.len(), 4);
        for (i, p) in procs.iter().enumerate() {
            assert_eq!(p.rank(), i);
            assert_eq!(p.size(), 4);
        }
    }

    #[test]
    fn registry_child_ctx_is_deterministic() {
        let mut r = Registry::new();
        let a = r.child_ctx(0, 7);
        let b = r.child_ctx(0, 7);
        assert_eq!(a, b);
        let c = r.child_ctx(0, 8);
        assert_ne!(a, c);
        let d = r.child_ctx(a, 7);
        assert_ne!(d, a);
        assert_ne!(d, c);
    }

    #[test]
    fn registry_vci_inherit_and_fresh() {
        let mut r = Registry::new();
        assert_eq!(r.vci_for_ctx(0, false, 0, 4).unwrap(), 0);
        // Child inheriting parent's VCI.
        assert_eq!(r.vci_for_ctx(5, false, 0, 4).unwrap(), 0);
        // Fresh allocations advance.
        assert_eq!(r.vci_for_ctx(6, true, 0, 4).unwrap(), 1);
        assert_eq!(r.vci_for_ctx(7, true, 0, 4).unwrap(), 2);
        // Idempotent.
        assert_eq!(r.vci_for_ctx(6, true, 0, 4).unwrap(), 1);
    }

    #[test]
    fn registry_vci_exhaustion_errors() {
        let mut r = Registry::new();
        assert_eq!(r.vci_for_ctx(1, true, 0, 2).unwrap(), 1);
        assert!(r.vci_for_ctx(2, true, 0, 2).is_err());
    }

    #[test]
    fn exchange_collects_all_contributions() {
        let procs = World::init(WorldConfig::instant(3));
        let world = procs[0].world().clone();
        let worlds: Vec<World> = (0..3).map(|_| world.clone()).collect();
        let results: Vec<Vec<Vec<i64>>> = std::thread::scope(|s| {
            let handles: Vec<_> = worlds
                .into_iter()
                .enumerate()
                .map(|(i, w)| s.spawn(move || w.exchange((0, 0, 0), 3, i, vec![i as i64 * 10])))
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        for r in &results {
            assert_eq!(r, &vec![vec![0], vec![10], vec![20]]);
        }
    }

    #[test]
    #[should_panic(expected = "in-process only")]
    fn init_rejects_wire_transport() {
        let cfg = WorldConfig {
            transport: TransportKind::Tcp,
            ..WorldConfig::instant(2)
        };
        let _ = World::init(cfg);
    }

    #[test]
    fn launch_without_env_is_in_process() {
        // The test environment has no MPFA_RANK, so launch must fall back
        // to the in-process world with every rank local.
        let launch = World::launch(WorldConfig::instant(3));
        assert!(!launch.is_distributed());
        let procs = launch.procs();
        assert_eq!(procs.len(), 3);
        assert!(!procs[0].world().distributed());
        assert!(procs[0].world().fabric().is_some(), "sim keeps the fabric");
    }

    #[test]
    fn init_with_transport_boots_one_rank() {
        use mpfa_transport::loopback_mesh;
        let cfg = WorldConfig {
            max_vcis: 2,
            ..WorldConfig::instant(2)
        };
        let mesh = loopback_mesh::<crate::wire::WireMsg>(
            TransportKind::Tcp,
            2,
            cfg.max_vcis,
            mpfa_transport::WireOpts::default(),
        )
        .unwrap();
        let proc = World::init_with_transport(
            WorldConfig {
                transport: TransportKind::Tcp,
                ..cfg
            },
            1,
            mesh[1].clone(),
        );
        assert_eq!(proc.rank(), 1);
        assert_eq!(proc.size(), 2);
        assert!(proc.world().distributed());
        assert!(proc.world().fabric().is_none(), "no sim fabric on a wire");
    }

    #[test]
    fn config_validate_accepts_presets() {
        WorldConfig::instant(4).validate();
        WorldConfig::cluster(4).validate();
        WorldConfig::single_node(4).validate();
    }

    #[test]
    fn ep_index_layout() {
        let cfg = WorldConfig::instant(4);
        assert_eq!(cfg.ep_index(0, 0), 0);
        assert_eq!(cfg.ep_index(1, 0), 8);
        assert_eq!(cfg.ep_index(1, 3), 11);
        // Fabric nodes group all of a rank's VCIs together.
        let fc = cfg.fabric_config();
        assert!(fc.same_node(8, 11));
        assert!(!fc.same_node(7, 8));
    }
}

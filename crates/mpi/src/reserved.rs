//! Reserved control-plane wire contexts, claimed from one registry.
//!
//! The communicator registry allocates context ids *upward* from 1
//! ([`crate::world::Registry::child_ctx`]); control planes that need a
//! wire context of their own (the ULFM machinery, the mpfa-flow
//! progress exchange) claim ids *downward* from `u64::MAX` through the
//! [`ReservedCtx`] enum below. Having every reserved id declared in a
//! single enum — rather than scattered per-subsystem constants — makes
//! a collision a compile-visible merge conflict instead of a silent
//! matching-state aliasing bug, and the allocator asserts it never
//! grows into the reserved band.
//!
//! Control traffic on a reserved context shares VCI 0 with the world
//! communicator; messages address peers by **world** rank and are sent
//! buffered, so the control plane keeps working while data-plane
//! requests are failing. [`CtrlPort`] packages that convention.

use std::sync::Arc;

use mpfa_core::{Request, RequestError};

use crate::matching::RecvSlot;
use crate::proc::Proc;
use crate::protocol::SendMode;
use crate::vci::Vci;
use crate::wire::MsgHeader;
use crate::world::World;

/// Every reserved control-plane context in the system. Add new control
/// planes here — nowhere else — so their ids can never collide.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ReservedCtx {
    /// ULFM control plane: revoke notices, failure gossip, agreement
    /// contributions and verdicts (see `crate::resilience`).
    ResilCtrl,
    /// mpfa-flow progress exchange: timestamped record batches and
    /// capability-delta gossip (see the `mpfa-flow` crate).
    FlowCtrl,
}

/// Lowest context id of the reserved band. The communicator allocator
/// asserts it stays strictly below this; reserved ids stay at or above
/// it. 64 slots is vastly more control planes than the system will
/// ever grow.
pub const RESERVED_CTX_FLOOR: u64 = u64::MAX - 63;

impl ReservedCtx {
    /// All reserved contexts, for exhaustive checks.
    pub const ALL: [ReservedCtx; 2] = [ReservedCtx::ResilCtrl, ReservedCtx::FlowCtrl];

    /// The wire context id this reservation owns.
    pub const fn ctx(self) -> u64 {
        match self {
            ReservedCtx::ResilCtrl => u64::MAX,
            ReservedCtx::FlowCtrl => u64::MAX - 1,
        }
    }
}

/// Is `ctx` inside the reserved control-plane band?
pub const fn is_reserved_ctx(ctx: u64) -> bool {
    ctx >= RESERVED_CTX_FLOOR
}

/// A claimed control-plane port: VCI 0 scoped to one [`ReservedCtx`].
///
/// Sends are fire-and-forget buffered (born complete, no TX tracking —
/// refusal by a dead-peer transport is harmless); receives match by
/// exact or wildcard world rank and tag. Both resilience and flow run
/// their control planes through this type, so the addressing and
/// send-mode conventions live in exactly one place.
pub struct CtrlPort {
    vci0: Arc<Vci>,
    world: World,
    my_world: usize,
    ctx: u64,
}

impl CtrlPort {
    /// Claim `which` on `proc`'s VCI 0.
    pub fn claim(proc: &Proc, which: ReservedCtx) -> CtrlPort {
        let vci0 = proc.bundle(0).expect("VCI 0 exists").vci.clone();
        CtrlPort {
            vci0,
            world: proc.world().clone(),
            my_world: proc.rank(),
            ctx: which.ctx(),
        }
    }

    /// The reserved wire context this port owns.
    pub fn ctx(&self) -> u64 {
        self.ctx
    }

    /// This rank's world index.
    pub fn my_world(&self) -> usize {
        self.my_world
    }

    /// World size.
    pub fn world_size(&self) -> usize {
        self.world.size()
    }

    /// Fire-and-forget control send to `dst_world`.
    pub fn send(&self, dst_world: usize, tag: i32, payload: Vec<u8>) {
        let hdr = MsgHeader {
            context_id: self.ctx,
            src_rank: self.my_world as i32,
            tag,
        };
        let ep = self.world.config().ep_index(dst_world, 0);
        drop(
            self.vci0
                .isend_bytes_mode(ep, hdr, payload, SendMode::Buffered),
        );
    }

    /// Post a control receive from `src_world` (or
    /// [`crate::ANY_SOURCE`]) with exact `tag`.
    pub fn recv(&self, src_world: i32, tag: i32, capacity: usize) -> (Request, RecvSlot) {
        self.vci0.irecv_bytes(self.ctx, src_world, tag, capacity)
    }

    /// Fail this port's posted receives matching `pred(src, tag)`;
    /// returns how many were failed.
    pub fn fail_matching(&self, pred: &dyn Fn(i32, i32) -> bool, err: RequestError) -> usize {
        self.vci0.fail_posted_recvs(self.ctx, pred, err)
    }
}

impl std::fmt::Debug for CtrlPort {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CtrlPort")
            .field("ctx", &self.ctx)
            .field("my_world", &self.my_world)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reserved_ids_are_distinct_and_in_band() {
        for (i, a) in ReservedCtx::ALL.iter().enumerate() {
            assert!(is_reserved_ctx(a.ctx()), "{a:?} below the reserved floor");
            for b in &ReservedCtx::ALL[i + 1..] {
                assert_ne!(a.ctx(), b.ctx(), "{a:?} and {b:?} collide");
            }
        }
    }

    #[test]
    fn reserved_band_clears_comm_wire_contexts() {
        // Comm base contexts become wire contexts `ctx*2` and `ctx*2+1`;
        // the allocator's guard keeps base ids below FLOOR/4, so even the
        // doubled+1 wire id stays clear of the reserved band.
        let max_wire = (RESERVED_CTX_FLOOR / 4) * 2 + 1;
        assert!(max_wire < RESERVED_CTX_FLOOR);
    }

    #[test]
    fn ctrl_port_roundtrip() {
        use crate::world::{World, WorldConfig};
        let procs = World::init(WorldConfig::instant(2));
        let p0 = CtrlPort::claim(&procs[0], ReservedCtx::FlowCtrl);
        let p1 = CtrlPort::claim(&procs[1], ReservedCtx::FlowCtrl);
        assert_eq!(p0.ctx(), ReservedCtx::FlowCtrl.ctx());
        let (req, slot) = p1.recv(0, 7, 64);
        p0.send(1, 7, vec![1, 2, 3]);
        for _ in 0..10_000 {
            if req.is_complete() {
                break;
            }
            procs[1].default_stream().progress();
        }
        assert!(req.is_complete());
        assert_eq!(slot.take(), vec![1, 2, 3]);
        assert_eq!(req.status().unwrap().source, 0);
    }

    #[test]
    fn ctrl_ports_on_different_contexts_do_not_cross_match() {
        use crate::world::{World, WorldConfig};
        let procs = World::init(WorldConfig::instant(2));
        let flow = CtrlPort::claim(&procs[1], ReservedCtx::FlowCtrl);
        let resil = CtrlPort::claim(&procs[1], ReservedCtx::ResilCtrl);
        let sender = CtrlPort::claim(&procs[0], ReservedCtx::FlowCtrl);
        let (freq, fslot) = flow.recv(0, 7, 64);
        let (rreq, _rslot) = resil.recv(0, 7, 64);
        sender.send(1, 7, vec![9]);
        for _ in 0..10_000 {
            if freq.is_complete() {
                break;
            }
            procs[1].default_stream().progress();
        }
        assert!(freq.is_complete(), "flow-ctx message reaches the flow port");
        assert_eq!(fslot.take(), vec![9]);
        assert!(
            !rreq.is_complete(),
            "resil-ctx receive must not match a flow-ctx message"
        );
        let _ = resil.fail_matching(&|_, _| true, RequestError::Revoked);
    }
}

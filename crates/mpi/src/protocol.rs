//! Protocol selection: which of the paper's Figure 1 message modes a given
//! transfer uses, and how rendezvous payloads are chunked.

/// Which message mode a payload size selects.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SendMode {
    /// Figure 1(a): payload copied and injected inside the initiation call;
    /// the request is born complete (MPICH's "lightweight send").
    Buffered,
    /// Figure 1(b): payload injected inside the initiation call; the
    /// request completes when the NIC signals TX completion (one wait
    /// block).
    Eager,
    /// Figure 1(c): RTS → CTS handshake, then the payload (two or more
    /// wait blocks; chunked payloads are the pipeline mode).
    Rendezvous,
}

/// Tunables of the point-to-point protocol engine (MPICH CVAR equivalents).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ProtoConfig {
    /// Largest payload sent in buffered/lightweight mode.
    pub buffered_max: usize,
    /// Largest payload sent in eager mode (above ⇒ rendezvous).
    pub eager_max: usize,
    /// Rendezvous chunk size (pipeline mode kicks in for payloads larger
    /// than one chunk).
    pub chunk: usize,
    /// Maximum chunks in flight per rendezvous transfer (pipeline depth).
    pub depth: usize,
}

impl Default for ProtoConfig {
    fn default() -> Self {
        ProtoConfig {
            buffered_max: 256,
            eager_max: 64 * 1024,
            chunk: 64 * 1024,
            depth: 4,
        }
    }
}

impl ProtoConfig {
    /// Select the send mode for a payload of `bytes` bytes.
    pub fn mode_for(&self, bytes: usize) -> SendMode {
        if bytes <= self.buffered_max {
            SendMode::Buffered
        } else if bytes <= self.eager_max {
            SendMode::Eager
        } else {
            SendMode::Rendezvous
        }
    }

    /// Number of chunks a rendezvous payload splits into.
    pub fn chunks_of(&self, total: usize) -> usize {
        total.div_ceil(self.chunk.max(1))
    }

    /// Validate invariants.
    pub fn validate(&self) {
        assert!(
            self.buffered_max <= self.eager_max,
            "buffered_max > eager_max"
        );
        assert!(self.chunk > 0, "chunk must be positive");
        assert!(self.depth > 0, "depth must be positive");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mode_thresholds() {
        let c = ProtoConfig {
            buffered_max: 100,
            eager_max: 1000,
            chunk: 256,
            depth: 2,
        };
        assert_eq!(c.mode_for(0), SendMode::Buffered);
        assert_eq!(c.mode_for(100), SendMode::Buffered);
        assert_eq!(c.mode_for(101), SendMode::Eager);
        assert_eq!(c.mode_for(1000), SendMode::Eager);
        assert_eq!(c.mode_for(1001), SendMode::Rendezvous);
    }

    #[test]
    fn chunk_counts() {
        let c = ProtoConfig {
            chunk: 100,
            ..ProtoConfig::default()
        };
        assert_eq!(c.chunks_of(1), 1);
        assert_eq!(c.chunks_of(100), 1);
        assert_eq!(c.chunks_of(101), 2);
        assert_eq!(c.chunks_of(1000), 10);
    }

    #[test]
    fn default_is_valid() {
        ProtoConfig::default().validate();
    }

    #[test]
    #[should_panic(expected = "buffered_max")]
    fn inverted_thresholds_rejected() {
        ProtoConfig {
            buffered_max: 10,
            eager_max: 5,
            chunk: 1,
            depth: 1,
        }
        .validate();
    }
}

//! Cartesian process topologies (`MPI_Cart_create` family).
//!
//! A [`CartComm`] overlays an N-dimensional grid on a communicator:
//! rank ↔ coordinate conversion, neighbor shifts (the halo-exchange
//! primitive), and dimension factorization (`MPI_Dims_create`).

use crate::comm::Comm;
use crate::error::{MpiError, MpiResult};

/// A communicator with Cartesian topology information.
#[derive(Clone)]
pub struct CartComm {
    comm: Comm,
    dims: Vec<usize>,
    periodic: Vec<bool>,
}

impl CartComm {
    /// The underlying communicator (all point-to-point and collective
    /// operations go through it).
    pub fn comm(&self) -> &Comm {
        &self.comm
    }

    /// Grid extents.
    pub fn dims(&self) -> &[usize] {
        &self.dims
    }

    /// Per-dimension periodicity.
    pub fn periodic(&self) -> &[bool] {
        &self.periodic
    }

    /// This rank's coordinates (`MPI_Cart_coords`).
    pub fn coords(&self) -> Vec<usize> {
        self.coords_of(self.comm.rank())
    }

    /// Coordinates of `rank` (`MPI_Cart_coords`).
    pub fn coords_of(&self, rank: i32) -> Vec<usize> {
        let mut rest = rank as usize;
        let mut coords = vec![0; self.dims.len()];
        // Row-major: last dimension varies fastest (MPI convention).
        for (i, &d) in self.dims.iter().enumerate().rev() {
            coords[i] = rest % d;
            rest /= d;
        }
        coords
    }

    /// Rank at `coords` (`MPI_Cart_rank`). Out-of-range coordinates in
    /// periodic dimensions wrap; in non-periodic dimensions they yield
    /// `None` (≙ `MPI_PROC_NULL`).
    pub fn rank_at(&self, coords: &[i64]) -> Option<i32> {
        assert_eq!(coords.len(), self.dims.len(), "coordinate arity mismatch");
        let mut rank = 0usize;
        for (i, (&c, &d)) in coords.iter().zip(&self.dims).enumerate() {
            let c = if self.periodic[i] {
                c.rem_euclid(d as i64) as usize
            } else {
                if c < 0 || c >= d as i64 {
                    return None;
                }
                c as usize
            };
            rank = rank * d + c;
        }
        Some(rank as i32)
    }

    /// `MPI_Cart_shift`: the `(source, dest)` ranks for a displacement of
    /// `disp` along `dim`. `None` entries are `MPI_PROC_NULL` (walked off
    /// a non-periodic edge).
    pub fn shift(&self, dim: usize, disp: i64) -> (Option<i32>, Option<i32>) {
        assert!(dim < self.dims.len(), "dimension {dim} out of range");
        let me: Vec<i64> = self.coords().iter().map(|&c| c as i64).collect();
        let mut src = me.clone();
        let mut dst = me;
        src[dim] -= disp;
        dst[dim] += disp;
        (self.rank_at(&src), self.rank_at(&dst))
    }
}

impl Comm {
    /// `MPI_Cart_create` (with `reorder = false`): overlay a grid whose
    /// volume must equal the communicator size.
    pub fn cart_create(&self, dims: &[usize], periodic: &[bool]) -> MpiResult<CartComm> {
        if dims.len() != periodic.len() {
            return Err(MpiError::CountMismatch {
                got: periodic.len(),
                expected: dims.len(),
            });
        }
        let volume: usize = dims.iter().product();
        if volume != self.size() || dims.contains(&0) {
            return Err(MpiError::CountMismatch {
                got: volume,
                expected: self.size(),
            });
        }
        Ok(CartComm {
            comm: self.dup()?,
            dims: dims.to_vec(),
            periodic: periodic.to_vec(),
        })
    }
}

/// `MPI_Dims_create`: factor `nnodes` into `ndims` balanced factors
/// (descending).
pub fn dims_create(nnodes: usize, ndims: usize) -> Vec<usize> {
    assert!(ndims > 0, "need at least one dimension");
    let mut dims = vec![1usize; ndims];
    let mut rest = nnodes;
    // Greedy: repeatedly split off the smallest prime factor onto the
    // currently-smallest dimension.
    let mut factors = Vec::new();
    let mut f = 2;
    while f * f <= rest {
        while rest.is_multiple_of(f) {
            factors.push(f);
            rest /= f;
        }
        f += 1;
    }
    if rest > 1 {
        factors.push(rest);
    }
    // Assign large factors first to the smallest dims.
    factors.sort_unstable_by(|a, b| b.cmp(a));
    for f in factors {
        let i = (0..ndims).min_by_key(|&i| dims[i]).expect("ndims > 0");
        dims[i] *= f;
    }
    dims.sort_unstable_by(|a, b| b.cmp(a));
    dims
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collectives::testutil::run_ranks;

    #[test]
    fn dims_create_balances() {
        assert_eq!(dims_create(6, 2), vec![3, 2]);
        assert_eq!(dims_create(8, 3), vec![2, 2, 2]);
        assert_eq!(dims_create(12, 2), vec![4, 3]);
        assert_eq!(dims_create(7, 1), vec![7]);
        assert_eq!(dims_create(1, 2), vec![1, 1]);
        assert_eq!(dims_create(16, 2), vec![4, 4]);
    }

    #[test]
    fn coords_roundtrip() {
        let results = run_ranks(6, |proc| {
            let comm = proc.world_comm();
            let cart = comm.cart_create(&[3, 2], &[false, false]).unwrap();
            let coords = cart.coords();
            let back = cart
                .rank_at(&coords.iter().map(|&c| c as i64).collect::<Vec<_>>())
                .unwrap();
            assert_eq!(back, comm.rank());
            coords
        });
        // Row-major: rank = x*2 + y.
        assert_eq!(results[0], vec![0, 0]);
        assert_eq!(results[1], vec![0, 1]);
        assert_eq!(results[2], vec![1, 0]);
        assert_eq!(results[5], vec![2, 1]);
    }

    #[test]
    fn shift_nonperiodic_edges_are_null() {
        let results = run_ranks(4, |proc| {
            let comm = proc.world_comm();
            let cart = comm.cart_create(&[4], &[false]).unwrap();
            cart.shift(0, 1)
        });
        // Chain 0-1-2-3: rank 0 has no source, rank 3 has no dest.
        assert_eq!(results[0], (None, Some(1)));
        assert_eq!(results[1], (Some(0), Some(2)));
        assert_eq!(results[3], (Some(2), None));
    }

    #[test]
    fn shift_periodic_wraps() {
        let results = run_ranks(4, |proc| {
            let comm = proc.world_comm();
            let cart = comm.cart_create(&[4], &[true]).unwrap();
            cart.shift(0, 1)
        });
        assert_eq!(results[0], (Some(3), Some(1)));
        assert_eq!(results[3], (Some(2), Some(0)));
    }

    #[test]
    fn cart_create_validates_volume() {
        let results = run_ranks(4, |proc| {
            let comm = proc.world_comm();
            comm.cart_create(&[3, 2], &[false, false]).is_err()
                && comm.cart_create(&[2], &[false, false]).is_err()
        });
        assert!(results.iter().all(|&e| e));
    }

    #[test]
    fn halo_exchange_on_2d_grid() {
        // Each rank exchanges its rank id with its 4-neighborhood.
        let results = run_ranks(6, |proc| {
            let comm = proc.world_comm();
            let cart = comm.cart_create(&[3, 2], &[true, true]).unwrap();
            let c = cart.comm();
            let mut sums = 0i32;
            for dim in 0..2 {
                for disp in [1i64, -1] {
                    let (src, dst) = cart.shift(dim, disp);
                    let (src, dst) = (src.unwrap(), dst.unwrap()); // periodic
                    let tag = (dim as i32) * 2 + (disp > 0) as i32;
                    let (got, _) = c.sendrecv(&[c.rank()], dst, tag, 1, src, tag).unwrap();
                    sums += got[0];
                }
            }
            sums
        });
        // Verify against a direct neighbor computation.
        for (rank, sum) in results.iter().enumerate() {
            let (x, y) = (rank / 2, rank % 2);
            let mut expect = 0;
            for (dx, dy) in [(1i64, 0i64), (-1, 0), (0, 1), (0, -1)] {
                let nx = (x as i64 + dx).rem_euclid(3) as usize;
                let ny = (y as i64 + dy).rem_euclid(2) as usize;
                expect += (nx * 2 + ny) as i32;
            }
            assert_eq!(*sum, expect, "rank {rank}");
        }
    }
}

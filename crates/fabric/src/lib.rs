//! # mpfa-fabric — a software-simulated NIC / network fabric
//!
//! The paper's protocol diagrams (Figure 1) talk about "the NIC", with the
//! footnote that *"here 'NIC' loosely refers to either hardware operations
//! or software emulations"*. This crate is that software emulation: a
//! reliable, non-overtaking, latency/bandwidth-modeled packet fabric
//! connecting the endpoints of an in-process multi-rank world.
//!
//! Design points:
//!
//! * **Two paths per endpoint** — packets between ranks on the same *node*
//!   travel the shared-memory path; packets between nodes travel the
//!   network path. The `mpfa-mpi` runtime registers a separate progress
//!   hook for each (the `Shmem_progress` / `Netmod_progress` split of the
//!   paper's Listing 1.1).
//! * **Timed delivery** — each packet is stamped with an arrival time
//!   computed from a per-directed-channel serialization model
//!   (`latency + bytes/bandwidth`, FIFO per channel), so rendezvous
//!   handshakes and overlap experiments see realistic wire costs. With
//!   zero latency/infinite bandwidth the fabric is deterministic and
//!   instant, which is what the unit tests use.
//! * **TX completion handles** — an eager send's "wait until the NIC
//!   signals completion" (Figure 1(b)) is modeled by [`TxHandle`], which
//!   becomes done when the channel finishes transmitting the payload.
//!
//! The fabric is generic over the message type `M`; `mpfa-mpi` instantiates
//! it with its wire-protocol enum. The fabric itself knows nothing about
//! MPI semantics — it moves envelopes.

#![warn(missing_docs)]

pub mod config;
pub mod endpoint;
pub mod envelope;
pub mod net;

pub use config::FabricConfig;
pub use endpoint::{Endpoint, TxHandle};
pub use envelope::Envelope;
pub use net::{DeliveryHook, Fabric, FabricStats, Path};

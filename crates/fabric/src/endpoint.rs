//! Per-rank endpoint handles and TX completion.

use mpfa_core::wtime;

use crate::envelope::Envelope;
use crate::net::{Fabric, Path};

/// Completion handle of one injected packet.
///
/// Models the Figure 1(b) eager-send wait block: the send buffer is
/// "owned by the NIC" until the channel finishes serializing the payload;
/// [`TxHandle::is_done`] reports whether that moment has passed.
#[derive(Debug, Clone, Copy)]
pub struct TxHandle {
    done_at: f64,
    failed: bool,
}

impl TxHandle {
    pub(crate) fn new(done_at: f64) -> TxHandle {
        TxHandle {
            done_at,
            failed: false,
        }
    }

    /// A handle that is already complete. Wire transports hand this back
    /// once the payload has been copied into a kernel socket buffer (or a
    /// local TX queue) — there is no modeled serialization delay to wait
    /// out.
    pub fn immediate() -> TxHandle {
        TxHandle {
            done_at: 0.0,
            failed: false,
        }
    }

    /// A handle for a packet the transport refused to carry — e.g. the
    /// destination peer is already marked dead. The handle is *complete*
    /// (waiters never hang on it) but reports the delivery failure.
    pub fn failed() -> TxHandle {
        TxHandle {
            done_at: 0.0,
            failed: true,
        }
    }

    /// True when the transport discarded the packet instead of carrying
    /// it (see [`TxHandle::failed`]).
    #[inline]
    pub fn is_failed(&self) -> bool {
        self.failed
    }

    /// Has the NIC signalled TX completion?
    #[inline]
    pub fn is_done(&self) -> bool {
        wtime() >= self.done_at
    }

    /// The absolute [`wtime`] at which TX completes.
    pub fn done_at(&self) -> f64 {
        self.done_at
    }

    /// Busy-wait for TX completion (a sender-side wait block).
    pub fn wait(&self) {
        while !self.is_done() {
            std::hint::spin_loop();
        }
    }
}

/// One rank's interface to the fabric.
pub struct Endpoint<M> {
    fabric: Fabric<M>,
    rank: usize,
}

impl<M: Send> Endpoint<M> {
    pub(crate) fn new(fabric: Fabric<M>, rank: usize) -> Endpoint<M> {
        Endpoint { fabric, rank }
    }

    /// This endpoint's rank.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Total ranks on the fabric.
    pub fn ranks(&self) -> usize {
        self.fabric.config().ranks
    }

    /// The owning fabric.
    pub fn fabric(&self) -> &Fabric<M> {
        &self.fabric
    }

    /// Whether `dst` shares this endpoint's node (shmem path).
    pub fn same_node(&self, dst: usize) -> bool {
        self.fabric.config().same_node(self.rank, dst)
    }

    /// Install a [`crate::net::DeliveryHook`] on the owning fabric (all
    /// endpoints share it — the fabric's delivery schedule is global).
    pub fn set_delivery_hook(&self, hook: Option<std::sync::Arc<dyn crate::net::DeliveryHook>>) {
        self.fabric.set_delivery_hook(hook)
    }

    /// Inject a packet to `dst`. `wire_bytes` is the payload size the wire
    /// charges for (headers/control messages pass 0).
    pub fn send(&self, dst: usize, msg: M, wire_bytes: usize) -> TxHandle {
        self.fabric.send(self.rank, dst, msg, wire_bytes)
    }

    /// Pop the next arrived network-path packet, if any.
    pub fn poll_net(&self) -> Option<Envelope<M>> {
        self.fabric.poll(self.rank, Path::Net)
    }

    /// Pop the next arrived shmem-path packet, if any.
    pub fn poll_shmem(&self) -> Option<Envelope<M>> {
        self.fabric.poll(self.rank, Path::Shmem)
    }

    /// Drain up to `max` arrived network-path packets into `out` with one
    /// heap-lock acquisition (and none at all when nothing is due).
    /// Returns the number appended.
    pub fn poll_net_batch(&self, max: usize, out: &mut Vec<Envelope<M>>) -> usize {
        self.fabric.poll_batch(self.rank, Path::Net, max, out)
    }

    /// Drain up to `max` arrived shmem-path packets into `out`; see
    /// [`Endpoint::poll_net_batch`].
    pub fn poll_shmem_batch(&self, max: usize, out: &mut Vec<Envelope<M>>) -> usize {
        self.fabric.poll_batch(self.rank, Path::Shmem, max, out)
    }

    /// Packets queued on the network path (arrived or in flight). One
    /// atomic read — this is a progress hook's `has_work` answer.
    pub fn queued_net(&self) -> usize {
        self.fabric.queued(self.rank, Path::Net)
    }

    /// Packets queued on the shmem path (arrived or in flight).
    pub fn queued_shmem(&self) -> usize {
        self.fabric.queued(self.rank, Path::Shmem)
    }
}

impl<M> Clone for Endpoint<M> {
    fn clone(&self) -> Self {
        Endpoint {
            fabric: self.fabric.clone(),
            rank: self.rank,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::FabricConfig;

    #[test]
    fn endpoint_roundtrip() {
        let f: Fabric<&'static str> = Fabric::new(FabricConfig::instant(3));
        let a = f.endpoint(0);
        let b = f.endpoint(1);
        assert_eq!(a.rank(), 0);
        assert_eq!(a.ranks(), 3);
        a.send(1, "hello", 5);
        let env = b.poll_net().unwrap();
        assert_eq!(env.msg, "hello");
        assert_eq!(env.src, 0);
        assert_eq!(env.dst, 1);
    }

    #[test]
    fn queued_visible_via_endpoint() {
        let f: Fabric<u8> = Fabric::new(FabricConfig::instant(2));
        let a = f.endpoint(0);
        let b = f.endpoint(1);
        assert_eq!(b.queued_net(), 0);
        a.send(1, 1, 0);
        assert_eq!(b.queued_net(), 1);
        assert_eq!(b.queued_shmem(), 0);
    }

    #[test]
    fn same_node_query() {
        let f: Fabric<u8> = Fabric::new(FabricConfig::instant_nodes(4, 2));
        let a = f.endpoint(0);
        assert!(a.same_node(1));
        assert!(!a.same_node(2));
    }

    #[test]
    fn tx_handle_instant_done() {
        let f: Fabric<u8> = Fabric::new(FabricConfig::instant(2));
        let tx = f.endpoint(0).send(1, 9, 0);
        assert!(tx.is_done());
        tx.wait(); // returns immediately
        assert!(tx.done_at() <= wtime());
    }

    #[test]
    fn self_send_loopback() {
        let f: Fabric<u8> = Fabric::new(FabricConfig::instant(2));
        let a = f.endpoint(0);
        a.send(0, 5, 0);
        // rank 0 node == rank 0 node: shmem path.
        assert_eq!(a.poll_shmem().unwrap().msg, 5);
    }
}

//! The fabric proper: per-destination timed delivery queues plus the
//! per-directed-channel serialization model.

use std::collections::BinaryHeap;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

use mpfa_core::sync::Mutex;
use mpfa_core::wtime;
use mpfa_obs::{Counters, EventKind, PathKind};

use crate::config::FabricConfig;
use crate::endpoint::{Endpoint, TxHandle};
use crate::envelope::{Envelope, InFlight};

/// Which delivery path a packet took.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Path {
    /// Same-node (shared-memory) path.
    Shmem,
    /// Cross-node (network) path.
    Net,
}

impl Path {
    fn kind(self) -> PathKind {
        match self {
            Path::Shmem => PathKind::Shmem,
            Path::Net => PathKind::Net,
        }
    }
}

/// Point-in-time traffic totals of one fabric instance (see
/// [`Fabric::stats`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FabricStats {
    /// Packets injected on the network path.
    pub packets_net: u64,
    /// Packets injected on the shared-memory path.
    pub packets_shm: u64,
    /// Wire bytes injected across both paths.
    pub bytes_total: u64,
}

/// Deterministic hash of `x` into [0, 1) (splitmix64 finalizer).
fn hash01(x: u64) -> f64 {
    let mut z = x.wrapping_add(0x9E3779B97F4A7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^= z >> 31;
    (z >> 11) as f64 / (1u64 << 53) as f64
}

/// One delivery lane (a rank × path pair): the timed in-flight heap plus
/// two lock-free fast-out summaries a poller can check without touching
/// the heap mutex — the packet count, and the earliest arrival time of
/// anything queued (as ordered `f64` bits; arrivals are non-negative, so
/// the IEEE-754 bit patterns compare like the values themselves).
pub(crate) struct Lane<M> {
    heap: Mutex<BinaryHeap<InFlight<M>>>,
    count: AtomicUsize,
    /// `f64::to_bits` of the earliest queued arrival; `INF_BITS` when
    /// empty. Written only under the heap lock, read without it.
    earliest_bits: AtomicU64,
}

const INF_BITS: u64 = f64::INFINITY.to_bits();

impl<M> Lane<M> {
    fn new() -> Self {
        Lane {
            heap: Mutex::new(BinaryHeap::new()),
            count: AtomicUsize::new(0),
            earliest_bits: AtomicU64::new(INF_BITS),
        }
    }

    fn push(&self, inflight: InFlight<M>) {
        let mut heap = self.heap.lock();
        let bits = inflight.arrival.to_bits();
        heap.push(inflight);
        if bits < self.earliest_bits.load(Ordering::Relaxed) {
            self.earliest_bits.store(bits, Ordering::Release);
        }
        drop(heap);
        self.count.fetch_add(1, Ordering::Release);
    }

    fn queued(&self) -> usize {
        self.count.load(Ordering::Acquire)
    }

    /// Pop every packet that has arrived by `now` (up to `max`) into `out`
    /// in one lock hold. Returns how many were delivered. Empty and
    /// nothing-due lanes are rejected from the two atomic summaries
    /// without ever taking the heap lock.
    fn drain_due(&self, now: f64, max: usize, out: &mut Vec<Envelope<M>>) -> usize {
        if self.count.load(Ordering::Acquire) == 0
            || self.earliest_bits.load(Ordering::Acquire) > now.to_bits()
        {
            return 0;
        }
        let mut heap = self.heap.lock();
        let mut n = 0;
        while n < max {
            match heap.peek() {
                Some(top) if top.arrival <= now => {
                    out.push(heap.pop().expect("peeked").envelope);
                    n += 1;
                }
                _ => break,
            }
        }
        // Re-summarize from the new heap top (exact, not just a lower
        // bound — the heap lock is the only writer of these bits).
        self.earliest_bits.store(
            heap.peek().map_or(INF_BITS, |top| top.arrival.to_bits()),
            Ordering::Release,
        );
        drop(heap);
        if n > 0 {
            self.count.fetch_sub(n, Ordering::Release);
        }
        n
    }
}

pub(crate) struct RankQueues<M> {
    net: Lane<M>,
    shm: Lane<M>,
}

impl<M> RankQueues<M> {
    fn new() -> Self {
        RankQueues {
            net: Lane::new(),
            shm: Lane::new(),
        }
    }

    fn lane(&self, path: Path) -> &Lane<M> {
        match path {
            Path::Net => &self.net,
            Path::Shmem => &self.shm,
        }
    }
}

/// Perturbs packet arrival times — the deterministic-simulation hook on
/// the fabric's delivery schedule.
///
/// Installed via [`Fabric::set_delivery_hook`] (production fabrics leave
/// it unset). The hook sees each packet's computed arrival time *before*
/// the per-channel FIFO clamp and returns a replacement; whatever it
/// returns is still clamped so a directed channel never reorders — MPI
/// non-overtaking survives any hook. Returning a time in the past is
/// clamped to `now`. Cross-channel reordering (rank A's packet overtaking
/// rank B's) is exactly the nondeterminism a schedule explorer wants to
/// fuzz.
pub trait DeliveryHook: Send + Sync {
    /// Replacement arrival time for the packet `src -> dst` with fabric
    /// sequence number `seq`, whose modeled arrival is `arrival` and
    /// whose send happens at `now`.
    fn arrival(&self, src: usize, dst: usize, seq: u64, arrival: f64, now: f64) -> f64;
}

/// Per-directed-channel wire state.
#[derive(Default)]
struct Channel {
    /// When the channel finishes its current transmission.
    next_free: f64,
    /// Latest arrival handed out (jitter clamps against this so the
    /// channel stays FIFO).
    last_arrival: f64,
}

pub(crate) struct FabricInner<M> {
    pub(crate) config: FabricConfig,
    /// Wire state per directed channel, indexed `src * ranks + dst`.
    channels: Vec<Mutex<Channel>>,
    pub(crate) rx: Vec<RankQueues<M>>,
    seq: AtomicU64,
    /// This instance's traffic counters (each simulated fabric keeps its
    /// own set; packets are also mirrored into the process-wide registry).
    counters: Counters,
    /// Fast-out flag for the delivery hook (checked on every send with a
    /// relaxed load; the Mutex below is touched only when set).
    has_delivery_hook: AtomicBool,
    /// Deterministic-simulation arrival perturbation, if installed.
    delivery_hook: Mutex<Option<Arc<dyn DeliveryHook>>>,
}

/// A simulated fabric connecting `config.ranks` endpoints. Cheap to clone.
pub struct Fabric<M> {
    pub(crate) inner: Arc<FabricInner<M>>,
}

impl<M> Clone for Fabric<M> {
    fn clone(&self) -> Self {
        Fabric {
            inner: self.inner.clone(),
        }
    }
}

impl<M: Send> Fabric<M> {
    /// Build a fabric from a validated configuration.
    pub fn new(config: FabricConfig) -> Fabric<M> {
        config.validate();
        let n = config.ranks;
        Fabric {
            inner: Arc::new(FabricInner {
                channels: (0..n * n).map(|_| Mutex::new(Channel::default())).collect(),
                rx: (0..n).map(|_| RankQueues::new()).collect(),
                config,
                seq: AtomicU64::new(0),
                counters: Counters::new(),
                has_delivery_hook: AtomicBool::new(false),
                delivery_hook: Mutex::new(None),
            }),
        }
    }

    /// Install (or with `None`, remove) a [`DeliveryHook`] perturbing
    /// packet arrival times. Applies to packets sent after the call.
    pub fn set_delivery_hook(&self, hook: Option<Arc<dyn DeliveryHook>>) {
        let mut slot = self.inner.delivery_hook.lock();
        self.inner
            .has_delivery_hook
            .store(hook.is_some(), Ordering::Release);
        *slot = hook;
    }

    /// The fabric's configuration.
    pub fn config(&self) -> &FabricConfig {
        &self.inner.config
    }

    /// The endpoint handle for `rank`. Multiple handles to one rank are
    /// allowed (they share the same queues).
    pub fn endpoint(&self, rank: usize) -> Endpoint<M> {
        assert!(rank < self.inner.config.ranks, "rank {rank} out of range");
        Endpoint::new(self.clone(), rank)
    }

    /// Total packets injected on the network path so far.
    pub fn packets_net(&self) -> u64 {
        self.inner.counters.msgs_net.load(Ordering::Relaxed)
    }

    /// Total packets injected on the shmem path so far.
    pub fn packets_shmem(&self) -> u64 {
        self.inner.counters.msgs_shm.load(Ordering::Relaxed)
    }

    /// Total wire bytes injected so far.
    pub fn bytes_total(&self) -> u64 {
        self.inner.counters.bytes_net.load(Ordering::Relaxed)
            + self.inner.counters.bytes_shm.load(Ordering::Relaxed)
    }

    /// Point-in-time traffic totals for this fabric instance.
    pub fn stats(&self) -> FabricStats {
        let snap = self.inner.counters.snapshot();
        FabricStats {
            packets_net: snap.msgs_net,
            packets_shm: snap.msgs_shm,
            bytes_total: snap.bytes_total(),
        }
    }

    /// Inject a packet. Returns the TX completion handle (done when the
    /// sender-side channel finishes serializing the payload — the "NIC
    /// signals completion" event of eager sends).
    ///
    /// This is the raw fabric-level entry point; most callers go through
    /// [`Endpoint::send`] or a `mpfa-transport` backend instead.
    pub fn send(&self, src: usize, dst: usize, msg: M, wire_bytes: usize) -> TxHandle {
        let cfg = &self.inner.config;
        assert!(dst < cfg.ranks, "destination rank {dst} out of range");
        assert!(
            wire_bytes <= cfg.mtu,
            "payload of {wire_bytes} bytes exceeds fabric MTU {}; chunk it",
            cfg.mtu
        );

        let now = wtime();
        let seq = self.inner.seq.fetch_add(1, Ordering::Relaxed);
        let (tx_end, arrival) = {
            let mut chan = self.inner.channels[src * cfg.ranks + dst].lock();
            let start = now.max(chan.next_free);
            let tx_end = start + cfg.tx_time(src, dst, wire_bytes);
            chan.next_free = tx_end;
            let mut arrival = tx_end + cfg.latency(src, dst);
            if cfg.jitter > 0.0 {
                // Deterministic per-packet jitter (hash of the sequence
                // number), clamped to keep the channel FIFO.
                arrival += cfg.latency(src, dst) * cfg.jitter * hash01(seq);
            }
            if self.inner.has_delivery_hook.load(Ordering::Acquire) {
                let hook = self.inner.delivery_hook.lock().clone();
                if let Some(hook) = hook {
                    // The hook may move the arrival anywhere at-or-after
                    // `now`; the FIFO clamp below still guarantees the
                    // directed channel never reorders.
                    arrival = hook.arrival(src, dst, seq, arrival, now).max(now);
                }
            }
            arrival = arrival.max(chan.last_arrival);
            chan.last_arrival = arrival;
            (tx_end, arrival)
        };

        let inflight = InFlight {
            arrival,
            seq,
            envelope: Envelope {
                src,
                dst,
                wire_bytes,
                msg,
            },
        };
        let q = &self.inner.rx[dst];
        let path = if cfg.same_node(src, dst) {
            Path::Shmem
        } else {
            Path::Net
        };
        self.inner
            .counters
            .record_packet(path.kind(), wire_bytes as u64);
        mpfa_obs::global_counters().record_packet(path.kind(), wire_bytes as u64);
        mpfa_obs::record_at(now, || EventKind::FabricTx {
            src: src as u32,
            dst: dst as u32,
            path: path.kind(),
            bytes: wire_bytes.min(u32::MAX as usize) as u32,
        });
        q.lane(path).push(inflight);
        TxHandle::new(tx_end)
    }

    /// Pop the next arrived packet for `rank` on `path`, if any.
    pub fn poll(&self, rank: usize, path: Path) -> Option<Envelope<M>> {
        let mut out = Vec::new();
        if self.poll_batch(rank, path, 1, &mut out) == 0 {
            return None;
        }
        out.pop()
    }

    /// Drain every packet that has already arrived for `rank` on `path`
    /// (up to `max`) into `out` with a single heap-lock acquisition, and
    /// *zero* lock acquisitions when the lane is empty or nothing is due
    /// yet (atomic count + earliest-arrival fast-outs). Returns the number
    /// of packets appended. Delivery events are recorded after the lock is
    /// released.
    pub fn poll_batch(
        &self,
        rank: usize,
        path: Path,
        max: usize,
        out: &mut Vec<Envelope<M>>,
    ) -> usize {
        let lane = self.inner.rx[rank].lane(path);
        let first = out.len();
        let n = lane.drain_due(wtime(), max, out);
        for env in &out[first..] {
            mpfa_obs::record(|| EventKind::FabricRx {
                rank: rank as u32,
                src: env.src as u32,
                path: path.kind(),
                bytes: env.wire_bytes.min(u32::MAX as usize) as u32,
            });
        }
        n
    }

    /// Number of packets queued (arrived or still in flight) for `rank`.
    pub fn queued(&self, rank: usize, path: Path) -> usize {
        self.inner.rx[rank].lane(path).queued()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn instant_fabric_delivers_immediately() {
        let f: Fabric<u32> = Fabric::new(FabricConfig::instant(2));
        let tx = f.send(0, 1, 42, 8);
        assert!(tx.is_done());
        let env = f.poll(1, Path::Net).expect("delivered");
        assert_eq!(env.msg, 42);
        assert_eq!(env.src, 0);
        assert_eq!(env.wire_bytes, 8);
        assert!(f.poll(1, Path::Net).is_none());
    }

    #[test]
    fn same_node_goes_shmem_path() {
        let f: Fabric<u32> = Fabric::new(FabricConfig::instant_nodes(4, 2));
        f.send(0, 1, 7, 0);
        assert!(f.poll(1, Path::Net).is_none());
        assert_eq!(f.poll(1, Path::Shmem).unwrap().msg, 7);
        f.send(0, 2, 8, 0);
        assert!(f.poll(2, Path::Shmem).is_none());
        assert_eq!(f.poll(2, Path::Net).unwrap().msg, 8);
        assert_eq!(f.packets_net(), 1);
        assert_eq!(f.packets_shmem(), 1);
    }

    #[test]
    fn latency_delays_delivery() {
        let mut cfg = FabricConfig::instant(2);
        cfg.inter_latency = 0.005;
        let f: Fabric<u32> = Fabric::new(cfg);
        let t0 = wtime();
        f.send(0, 1, 1, 0);
        // Not arrived yet (unless we got descheduled for >5ms).
        if wtime() - t0 < 0.004 {
            assert!(f.poll(1, Path::Net).is_none());
        }
        while f.poll(1, Path::Net).is_none() {
            std::hint::spin_loop();
        }
        assert!(wtime() - t0 >= 0.005);
    }

    #[test]
    fn bandwidth_serializes_tx() {
        let mut cfg = FabricConfig::instant(2);
        cfg.inter_bandwidth = 1e6; // 1 MB/s
        let f: Fabric<u32> = Fabric::new(cfg);
        let t0 = wtime();
        let tx = f.send(0, 1, 1, 10_000); // 10 ms of wire time
        assert!(!tx.is_done());
        tx.wait();
        assert!(wtime() - t0 >= 0.009);
    }

    #[test]
    fn per_channel_fifo_under_bandwidth() {
        let mut cfg = FabricConfig::instant(2);
        cfg.inter_bandwidth = 1e9;
        let f: Fabric<u32> = Fabric::new(cfg);
        for i in 0..100u32 {
            f.send(0, 1, i, 1000);
        }
        let mut got = Vec::new();
        while got.len() < 100 {
            if let Some(env) = f.poll(1, Path::Net) {
                got.push(env.msg);
            }
        }
        let expect: Vec<u32> = (0..100).collect();
        assert_eq!(got, expect, "per-channel delivery must be FIFO");
    }

    #[test]
    fn queued_counts() {
        let f: Fabric<u32> = Fabric::new(FabricConfig::instant(2));
        assert_eq!(f.queued(1, Path::Net), 0);
        f.send(0, 1, 1, 0);
        f.send(0, 1, 2, 0);
        assert_eq!(f.queued(1, Path::Net), 2);
        f.poll(1, Path::Net);
        assert_eq!(f.queued(1, Path::Net), 1);
    }

    #[test]
    fn batch_drain_preserves_fifo() {
        let f: Fabric<u32> = Fabric::new(FabricConfig::instant(2));
        for i in 0..10u32 {
            f.send(0, 1, i, 8);
        }
        let mut out = Vec::new();
        // Bounded drain takes the earliest arrivals first.
        assert_eq!(f.poll_batch(1, Path::Net, 4, &mut out), 4);
        assert_eq!(f.poll_batch(1, Path::Net, 100, &mut out), 6);
        let got: Vec<u32> = out.iter().map(|e| e.msg).collect();
        assert_eq!(got, (0..10).collect::<Vec<u32>>());
        assert_eq!(f.queued(1, Path::Net), 0);
        assert_eq!(f.poll_batch(1, Path::Net, 100, &mut out), 0);
    }

    #[test]
    fn earliest_fast_out_skips_undue_packets() {
        let mut cfg = FabricConfig::instant(2);
        cfg.inter_latency = 10.0; // nothing becomes due during this test
        let f: Fabric<u32> = Fabric::new(cfg);
        f.send(0, 1, 1, 0);
        assert_eq!(f.queued(1, Path::Net), 1);
        let mut out = Vec::new();
        // Due in 10s: the earliest-arrival fast-out rejects the poll
        // without consuming anything.
        assert_eq!(f.poll_batch(1, Path::Net, 100, &mut out), 0);
        assert!(out.is_empty());
        assert_eq!(f.queued(1, Path::Net), 1);
    }

    #[test]
    fn earliest_resummarized_after_partial_drain() {
        let mut cfg = FabricConfig::instant(2);
        cfg.inter_latency = 1e-4;
        let f: Fabric<u32> = Fabric::new(cfg);
        f.send(0, 1, 1, 0);
        let mut out = Vec::new();
        while f.poll_batch(1, Path::Net, 100, &mut out) == 0 {
            std::hint::spin_loop();
        }
        assert_eq!(out.len(), 1);
        // A later packet must still be deliverable (the summary was reset
        // to the new heap top, not left at the consumed arrival).
        f.send(0, 1, 2, 0);
        out.clear();
        while f.poll_batch(1, Path::Net, 100, &mut out) == 0 {
            std::hint::spin_loop();
        }
        assert_eq!(out[0].msg, 2);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_destination_panics() {
        let f: Fabric<u32> = Fabric::new(FabricConfig::instant(2));
        f.send(0, 5, 1, 0);
    }

    #[test]
    #[should_panic(expected = "MTU")]
    fn oversized_packet_panics() {
        let mut cfg = FabricConfig::instant(2);
        cfg.mtu = 1024;
        let f: Fabric<u32> = Fabric::new(cfg);
        f.send(0, 1, 1, 4096);
    }

    #[test]
    fn counters_accumulate() {
        let f: Fabric<u32> = Fabric::new(FabricConfig::instant(2));
        f.send(0, 1, 1, 100);
        f.send(1, 0, 2, 50);
        assert_eq!(f.bytes_total(), 150);
        assert_eq!(f.packets_net(), 2);
    }

    #[test]
    fn hash01_is_deterministic_and_bounded() {
        for x in [0u64, 1, 42, u64::MAX] {
            let v = hash01(x);
            assert_eq!(v, hash01(x));
            assert!((0.0..1.0).contains(&v));
        }
        assert_ne!(hash01(1), hash01(2));
    }

    #[test]
    fn jitter_preserves_channel_fifo() {
        let mut cfg = FabricConfig::instant(2);
        cfg.inter_latency = 50e-6;
        cfg.jitter = 2.0; // aggressive
        let f: Fabric<u32> = Fabric::new(cfg);
        for i in 0..200u32 {
            f.send(0, 1, i, 64);
        }
        let mut got = Vec::new();
        while got.len() < 200 {
            if let Some(env) = f.poll(1, Path::Net) {
                got.push(env.msg);
            }
        }
        let expect: Vec<u32> = (0..200).collect();
        assert_eq!(got, expect, "jitter broke per-channel FIFO");
    }

    /// Hook that delays packets from even-numbered sources by a fixed
    /// amount and delivers the rest as modeled.
    struct DelayEvens(f64);
    impl DeliveryHook for DelayEvens {
        fn arrival(&self, src: usize, _dst: usize, _seq: u64, arrival: f64, now: f64) -> f64 {
            if src.is_multiple_of(2) {
                now + self.0
            } else {
                arrival
            }
        }
    }

    /// Hostile hook: tries to deliver every packet immediately (which
    /// would reorder a busy channel if the FIFO clamp did not exist).
    struct DeliverNow;
    impl DeliveryHook for DeliverNow {
        fn arrival(&self, _s: usize, _d: usize, _q: u64, _arrival: f64, now: f64) -> f64 {
            now
        }
    }

    #[test]
    fn delivery_hook_reorders_across_channels() {
        let f: Fabric<u32> = Fabric::new(FabricConfig::instant(3));
        // Warm up lazily allocated paths (obs event ring, lane state) so
        // the hook's delay window below isn't eaten by first-use costs.
        f.send(1, 2, 0, 8);
        while f.poll(2, Path::Net).is_none() {}
        // Generous delay: the undelayed packet must win even if this
        // thread is descheduled between send and first poll.
        f.set_delivery_hook(Some(Arc::new(DelayEvens(20e-3))));
        f.send(0, 2, 100, 8); // sent first, delayed by the hook
        f.send(1, 2, 200, 8); // sent second, arrives immediately
        let mut got = Vec::new();
        while got.len() < 2 {
            if let Some(env) = f.poll(2, Path::Net) {
                got.push(env.msg);
            }
        }
        assert_eq!(got, vec![200, 100], "hook did not reorder across channels");
    }

    #[test]
    fn delivery_hook_cannot_break_channel_fifo() {
        let mut cfg = FabricConfig::instant(2);
        cfg.inter_latency = 50e-6;
        cfg.jitter = 1.0;
        let f: Fabric<u32> = Fabric::new(cfg);
        f.set_delivery_hook(Some(Arc::new(DeliverNow)));
        for i in 0..100u32 {
            f.send(0, 1, i, 64);
        }
        let mut got = Vec::new();
        while got.len() < 100 {
            if let Some(env) = f.poll(1, Path::Net) {
                got.push(env.msg);
            }
        }
        let expect: Vec<u32> = (0..100).collect();
        assert_eq!(got, expect, "delivery hook broke per-channel FIFO");
    }

    #[test]
    fn delivery_hook_uninstalls() {
        let f: Fabric<u32> = Fabric::new(FabricConfig::instant(2));
        f.set_delivery_hook(Some(Arc::new(DelayEvens(1.0))));
        f.set_delivery_hook(None);
        f.send(0, 1, 7, 8); // would hang for 1s if the hook were still on
        let env = f.poll(1, Path::Net).expect("instant delivery");
        assert_eq!(env.msg, 7);
    }

    #[test]
    fn concurrent_senders_one_receiver() {
        let f: Fabric<u64> = Fabric::new(FabricConfig::instant(5));
        std::thread::scope(|s| {
            for src in 1..5 {
                let f = f.clone();
                s.spawn(move || {
                    let ep = f.endpoint(src);
                    for i in 0..50u64 {
                        ep.send(0, (src as u64) << 32 | i, 8);
                    }
                });
            }
        });
        let mut per_src: Vec<Vec<u64>> = vec![Vec::new(); 5];
        let mut total = 0;
        while total < 200 {
            if let Some(env) = f.poll(0, Path::Net) {
                per_src[env.src].push(env.msg & 0xffff_ffff);
                total += 1;
            }
        }
        let expect: Vec<u64> = (0..50).collect();
        for (src, seen) in per_src.iter().enumerate().skip(1) {
            assert_eq!(seen, &expect, "per-source FIFO violated for src {src}");
        }
    }
}

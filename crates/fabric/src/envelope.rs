//! The unit of transfer on the fabric.

/// A delivered packet: source, destination, the user message, and the
/// payload size the wire charged for.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Envelope<M> {
    /// Sending rank.
    pub src: usize,
    /// Receiving rank.
    pub dst: usize,
    /// Wire-charged payload size in bytes (protocol metadata counts as 0).
    pub wire_bytes: usize,
    /// The message itself.
    pub msg: M,
}

/// An envelope in flight, ordered by arrival time then by a global
/// sequence number (which both breaks ties deterministically and preserves
/// per-channel FIFO for equal arrival times).
#[derive(Debug)]
pub(crate) struct InFlight<M> {
    pub arrival: f64,
    pub seq: u64,
    pub envelope: Envelope<M>,
}

impl<M> PartialEq for InFlight<M> {
    fn eq(&self, other: &Self) -> bool {
        self.seq == other.seq
    }
}
impl<M> Eq for InFlight<M> {}

impl<M> PartialOrd for InFlight<M> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl<M> Ord for InFlight<M> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Reversed: BinaryHeap is a max-heap, we want earliest-first.
        other
            .arrival
            .total_cmp(&self.arrival)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BinaryHeap;

    fn inflight(arrival: f64, seq: u64) -> InFlight<u32> {
        InFlight {
            arrival,
            seq,
            envelope: Envelope {
                src: 0,
                dst: 1,
                wire_bytes: 0,
                msg: seq as u32,
            },
        }
    }

    #[test]
    fn heap_pops_earliest_arrival_first() {
        let mut h = BinaryHeap::new();
        h.push(inflight(3.0, 0));
        h.push(inflight(1.0, 1));
        h.push(inflight(2.0, 2));
        assert_eq!(h.pop().unwrap().arrival, 1.0);
        assert_eq!(h.pop().unwrap().arrival, 2.0);
        assert_eq!(h.pop().unwrap().arrival, 3.0);
    }

    #[test]
    fn equal_arrivals_pop_in_seq_order() {
        let mut h = BinaryHeap::new();
        h.push(inflight(1.0, 5));
        h.push(inflight(1.0, 2));
        h.push(inflight(1.0, 9));
        assert_eq!(h.pop().unwrap().seq, 2);
        assert_eq!(h.pop().unwrap().seq, 5);
        assert_eq!(h.pop().unwrap().seq, 9);
    }
}

//! Fabric topology and wire-cost configuration.

/// Configuration of a simulated fabric.
///
/// The topology is `ranks` endpoints grouped into nodes of `node_size`
/// consecutive ranks (`node = rank / node_size`). Same-node traffic uses
/// the shared-memory path; cross-node traffic uses the network path.
///
/// Wire costs: a packet of `b` payload bytes from `src` to `dst` arrives
/// `latency + b / bandwidth` after the directed channel `(src, dst)` is
/// free; packets on one directed channel never overtake each other.
/// A bandwidth of `0.0` means infinite (no serialization cost).
#[derive(Debug, Clone, PartialEq)]
pub struct FabricConfig {
    /// Number of endpoints (ranks).
    pub ranks: usize,
    /// Ranks per node; same-node pairs take the shmem path.
    pub node_size: usize,
    /// One-way latency for cross-node packets, seconds.
    pub inter_latency: f64,
    /// One-way latency for same-node packets, seconds.
    pub intra_latency: f64,
    /// Cross-node bandwidth, bytes/second (`0.0` = infinite).
    pub inter_bandwidth: f64,
    /// Same-node bandwidth, bytes/second (`0.0` = infinite).
    pub intra_bandwidth: f64,
    /// Largest payload a single packet may carry. Protocol layers must
    /// chunk larger transfers (the pipeline mode of the paper's §2.1).
    pub mtu: usize,
    /// Per-packet latency jitter as a fraction of the path latency
    /// (0.0 = deterministic). Jitter is derived from a deterministic hash
    /// of the packet sequence number, so runs are repeatable; per-channel
    /// FIFO is preserved by clamping arrivals to be monotone per channel.
    pub jitter: f64,
}

impl FabricConfig {
    /// An instant, deterministic fabric: zero latency, infinite bandwidth.
    /// Every rank on its own node (all traffic via the network path).
    pub fn instant(ranks: usize) -> FabricConfig {
        FabricConfig {
            ranks,
            node_size: 1,
            inter_latency: 0.0,
            intra_latency: 0.0,
            inter_bandwidth: 0.0,
            intra_bandwidth: 0.0,
            mtu: usize::MAX,
            jitter: 0.0,
        }
    }

    /// An instant fabric with `node_size` ranks per node, so that both the
    /// shmem and netmod paths get exercised.
    pub fn instant_nodes(ranks: usize, node_size: usize) -> FabricConfig {
        FabricConfig {
            node_size,
            ..FabricConfig::instant(ranks)
        }
    }

    /// A "cluster-like" fabric: one rank per node, microsecond-scale
    /// latency and GB/s-scale bandwidth — loosely shaped after the paper's
    /// Bebop/Omni-Path testbed (one process per node, ~1–2 µs MPI latency).
    pub fn cluster(ranks: usize) -> FabricConfig {
        FabricConfig {
            ranks,
            node_size: 1,
            inter_latency: 1.5e-6,
            intra_latency: 0.2e-6,
            inter_bandwidth: 12.0e9,
            intra_bandwidth: 40.0e9,
            mtu: 1 << 22,
            jitter: 0.0,
        }
    }

    /// A "multicore node" fabric: every rank on one node, shmem path only.
    pub fn single_node(ranks: usize) -> FabricConfig {
        FabricConfig {
            ranks,
            node_size: ranks.max(1),
            inter_latency: 1.5e-6,
            intra_latency: 0.2e-6,
            inter_bandwidth: 12.0e9,
            intra_bandwidth: 40.0e9,
            mtu: 1 << 22,
            jitter: 0.0,
        }
    }

    /// The node index hosting `rank`.
    #[inline]
    pub fn node_of(&self, rank: usize) -> usize {
        rank / self.node_size.max(1)
    }

    /// Whether `a` and `b` share a node (shmem path).
    #[inline]
    pub fn same_node(&self, a: usize, b: usize) -> bool {
        self.node_of(a) == self.node_of(b)
    }

    /// One-way latency for a packet from `src` to `dst`, seconds.
    #[inline]
    pub fn latency(&self, src: usize, dst: usize) -> f64 {
        if self.same_node(src, dst) {
            self.intra_latency
        } else {
            self.inter_latency
        }
    }

    /// Transmission (serialization) time for `bytes` from `src` to `dst`.
    #[inline]
    pub fn tx_time(&self, src: usize, dst: usize, bytes: usize) -> f64 {
        let bw = if self.same_node(src, dst) {
            self.intra_bandwidth
        } else {
            self.inter_bandwidth
        };
        if bw <= 0.0 {
            0.0
        } else {
            bytes as f64 / bw
        }
    }

    /// Validate invariants; panics with a descriptive message on nonsense
    /// configurations.
    pub fn validate(&self) {
        assert!(self.ranks > 0, "fabric needs at least one rank");
        assert!(self.node_size > 0, "node_size must be positive");
        assert!(
            self.inter_latency >= 0.0 && self.intra_latency >= 0.0,
            "negative latency"
        );
        assert!(
            self.inter_bandwidth >= 0.0 && self.intra_bandwidth >= 0.0,
            "negative bandwidth"
        );
        assert!(self.mtu > 0, "mtu must be positive");
        assert!(
            (0.0..=8.0).contains(&self.jitter),
            "jitter must be a non-negative fraction (got {})",
            self.jitter
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn instant_is_flat() {
        let c = FabricConfig::instant(4);
        c.validate();
        assert_eq!(c.latency(0, 3), 0.0);
        assert_eq!(c.tx_time(0, 3, 1 << 20), 0.0);
        assert!(!c.same_node(0, 1));
    }

    #[test]
    fn node_mapping() {
        let c = FabricConfig::instant_nodes(8, 4);
        assert_eq!(c.node_of(0), 0);
        assert_eq!(c.node_of(3), 0);
        assert_eq!(c.node_of(4), 1);
        assert!(c.same_node(1, 2));
        assert!(!c.same_node(3, 4));
    }

    #[test]
    fn cluster_charges_latency_and_bandwidth() {
        let c = FabricConfig::cluster(2);
        assert!(c.latency(0, 1) > 0.0);
        assert!(c.tx_time(0, 1, 1 << 20) > 0.0);
        assert!(c.tx_time(0, 1, 0) == 0.0);
    }

    #[test]
    fn single_node_uses_intra_costs() {
        let c = FabricConfig::single_node(8);
        assert!(c.same_node(0, 7));
        assert_eq!(c.latency(0, 7), c.intra_latency);
    }

    #[test]
    #[should_panic(expected = "at least one rank")]
    fn zero_ranks_rejected() {
        FabricConfig::instant(0).validate();
    }

    #[test]
    fn self_send_is_same_node() {
        let c = FabricConfig::instant(4);
        assert!(c.same_node(2, 2));
    }
}

//! # mpfa — MPI Progress For All
//!
//! A from-scratch Rust reproduction of *"MPI Progress For All"* (Zhou,
//! Latham, Raffenetti, Guo, Thakur — SC 2024): explicit, targeted,
//! interoperable communication-runtime progress.
//!
//! This facade crate re-exports the workspace members:
//!
//! * [`core`] — the paper's contribution: `MPIX_Stream`,
//!   `MPIX_Stream_progress`, `MPIX_Async`, `MPIX_Request_is_complete`,
//!   generalized requests.
//! * [`fabric`] — the software-simulated NIC / network substrate.
//! * [`mpi`] — an MPI-like message-passing runtime (communicators,
//!   point-to-point protocols, collectives) whose internal subsystems are
//!   progress hooks on `core` streams.
//! * [`persist`] — persistent & partitioned operations
//!   (`MPI_Send_init`/`MPI_Start`/`MPI_Startall`, `MPI_Psend_init`/
//!   `MPI_Pready`/`MPI_Parrived`): init-time validation, routing, and a
//!   pinned matching-bucket slot so re-fires skip tag matching
//!   entirely. See `docs/PERSISTENT.md`.
//! * [`cont`] — `MPIX_Continue` continuations and native Rust
//!   async/await on top of the request/stream machinery: attach-to-many
//!   continuation requests, a stream-driven executor, `block_on`,
//!   `join_all`. See `docs/ASYNC.md`.
//! * [`flow`] — frontier-tracked dataflow on top of the progress
//!   engine: timestamped streams, per-stream capability counts, a
//!   capability-gossip protocol on a reserved control context so every
//!   rank answers `frontier()` locally, and push-style emit-on-frontier
//!   callbacks via continuations. See `docs/FLOW.md`.
//! * [`interop`] — what the extensions enable: user-level collectives,
//!   task classes, completion callbacks, continuation- and schedule-style
//!   comparator APIs, an event loop.
//! * [`transport`] — the pluggable packet substrate: the simulated
//!   fabric behind a `Transport` trait plus real TCP and Unix-domain
//!   wire backends, bootstrap rendezvous, and the `mpfarun` launcher.
//!   See `docs/TRANSPORT.md`.
//! * [`resil`] — fault tolerance: an epoch-stamped failure detector
//!   running as a progress hook, feeding the ULFM-style error path
//!   (`RequestError`, `Comm::revoke`/`shrink`/`agree`) in [`mpi`]. See
//!   `docs/RESILIENCE.md`.
//! * [`dst`] — deterministic simulation testing: a seeded virtual-time
//!   scheduler that owns every nondeterminism point (task poll order,
//!   fabric delivery, detector ticks, chaos kill timing) so a whole
//!   multi-rank run replays from a `u64` seed. See `docs/TESTING.md`.
//! * [`baselines`] — the progress strategies the paper argues against:
//!   global async-progress threads and request-polling loops.
//! * [`obs`] — progress observability: event tracing (behind the `obs`
//!   cargo feature), always-on counters, Chrome-trace export, and the
//!   progress-stall doctor. See `docs/OBSERVABILITY.md`.
//!
//! See `README.md` for a tour and `EXPERIMENTS.md` for the figure-by-figure
//! reproduction of the paper's evaluation.

pub use mpfa_async as cont;
pub use mpfa_baselines as baselines;
pub use mpfa_core as core;
pub use mpfa_dst as dst;
pub use mpfa_fabric as fabric;
pub use mpfa_flow as flow;
pub use mpfa_interop as interop;
pub use mpfa_mpi as mpi;
pub use mpfa_obs as obs;
pub use mpfa_offload as offload;
pub use mpfa_persist as persist;
pub use mpfa_resil as resil;
pub use mpfa_transport as transport;

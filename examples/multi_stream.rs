//! Concurrent progress streams — the paper's Listing 1.5 and Figure 11.
//!
//! Ten threads each create their own `MPIX_Stream`, start timed dummy
//! tasks on it, and drive `MPIX_Stream_progress` on their own stream only.
//! Because the streams share nothing, there is no lock contention between
//! threads; mean progress latency stays flat as threads are added
//! (contrast Figure 9, where all threads share one stream).
//!
//! Run with: `cargo run --release --example multi_stream`

use mpfa::core::sync::Mutex;
use mpfa::core::{stats::LatencyStats, wtime, AsyncPoll, CompletionCounter, Stream};
use std::sync::Arc;

const NUM_TASKS: usize = 10;
const INTERVAL: f64 = 0.0005;

fn thread_fn(seed: u64) -> LatencyStats {
    // Each thread: its own stream (MPIX_Stream_create).
    let stream = Stream::create();
    let counter = CompletionCounter::new(NUM_TASKS);
    let stats = Arc::new(Mutex::new(LatencyStats::new()));
    let mut jitter = seed.wrapping_mul(0x9E3779B97F4A7C15);
    for _ in 0..NUM_TASKS {
        // wtime_complete = MPI_Wtime() + INTERVAL + rand()*1e-5
        jitter = jitter.wrapping_mul(6364136223846793005).wrapping_add(1);
        let deadline = wtime() + INTERVAL + (jitter >> 40) as f64 * 1e-5 / (1 << 24) as f64;
        let counter = counter.clone();
        let stats = stats.clone();
        stream.async_start(move |_thing| {
            let now = wtime();
            if now >= deadline {
                stats.lock().add(now - deadline);
                counter.done();
                AsyncPoll::Done
            } else {
                AsyncPoll::Pending
            }
        });
    }
    // while (counter > 0) MPIX_Stream_progress(stream);
    while !counter.is_zero() {
        stream.progress();
    }
    Arc::try_unwrap(stats)
        .map(Mutex::into_inner)
        .unwrap_or_default()
}

fn main() {
    println!(
        "per-thread streams, {} tasks each (Listing 1.5 / Figure 11):",
        NUM_TASKS
    );
    println!("{:>8} {:>16}", "threads", "mean latency us");
    for num_threads in [1usize, 2, 4, 8, 10] {
        let mut all = LatencyStats::new();
        let per_thread: Vec<LatencyStats> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..num_threads)
                .map(|i| s.spawn(move || thread_fn(i as u64 + 1)))
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        for st in &per_thread {
            all.merge(st);
        }
        println!("{:>8} {:>16.3}", num_threads, all.mean() * 1e6);
    }
    println!("(flat latency = no cross-stream contention)");
}

//! Event-driven programming over MPI — Sections 4.5 and 4.6.
//!
//! * Request-completion callbacks (Listing 1.6) via the
//!   `CompletionNotifier` scan hook.
//! * A generalized request completed from inside an `MPIX_Async` poll
//!   (Listing 1.7), waited on with plain `MPI_Wait`.
//! * An `MPIX_Continue`-style continuation chain.
//!
//! Run with: `cargo run --release --example event_driven`

use mpfa::core::{grequest_start, wtime, AsyncPoll, CompletionCounter, NoopOps};
use mpfa::interop::{CompletionNotifier, ContinuationContext};
use mpfa::mpi::{Proc, World, WorldConfig};

fn main() {
    let procs = World::init(WorldConfig::instant(2));
    std::thread::scope(|s| {
        for proc in procs {
            s.spawn(move || rank_main(proc));
        }
    });
    println!("event_driven: all ranks finished");
}

fn rank_main(proc: Proc) {
    let comm = proc.world_comm();
    let stream = comm.stream().clone();
    let rank = comm.rank();
    let peer = 1 - rank;

    // --- Listing 1.6: completion callbacks over a request array ---------
    let notifier = CompletionNotifier::new(&stream);
    let fired = CompletionCounter::new(4);
    for tag in 0..4 {
        let recv = comm.irecv::<i32>(1, peer, tag).unwrap();
        let f = fired.clone();
        notifier.watch(recv.request(), move |status| {
            assert_eq!(status.tag, tag);
            f.done();
        });
        comm.isend(&[tag], peer, tag).unwrap();
    }
    while !fired.is_zero() {
        stream.progress();
    }
    if rank == 0 {
        println!("rank 0: 4 completion callbacks fired (Listing 1.6)");
    }

    // --- Listing 1.7: generalized request + MPIX_Async -------------------
    let (greq_request, greq) = grequest_start(&stream, NoopOps);
    let deadline = wtime() + 0.002;
    let mut greq = Some(greq);
    stream.async_start(move |_thing| {
        if wtime() > deadline {
            greq.take().expect("completes once").complete(); // MPI_Grequest_complete
            AsyncPoll::Done
        } else {
            AsyncPoll::Pending
        }
    });
    // MPI_Wait replaces the manual wait loop of Listing 1.3.
    let status = greq_request.wait();
    assert!(!status.cancelled);
    if rank == 0 {
        println!("rank 0: generalized request completed via MPIX_Async (Listing 1.7)");
    }

    // --- MPIX_Continue-style chaining ------------------------------------
    let ctx = ContinuationContext::new(&stream);
    let recv = comm.irecv::<f64>(3, peer, 9).unwrap();
    let done = CompletionCounter::new(1);
    let d = done.clone();
    ctx.attach(recv.request(), move |status| {
        assert_eq!(status.bytes, 24);
        d.done();
    });
    comm.isend(&[1.0f64, 2.0, 3.0], peer, 9).unwrap();
    let cont_req = ctx.start();
    cont_req.wait();
    assert!(done.is_zero());
    if rank == 0 {
        println!("rank 0: continuation chain completed (Section 5.4 comparator)");
    }

    proc.finalize(1.0);
}

//! Partitioned communication demo: N compute threads mark partitions
//! ready while a single progress stream feeds the wire.
//!
//! Every rank runs both sides of a ring: a partitioned send to its
//! right neighbor (`psend_init`) and a partitioned receive from its
//! left (`precv_init`). Each round, three compute threads "produce"
//! the send buffer's partitions out of band — staggered, interleaved,
//! deliberately not in index order — and call [`pready`] as each
//! partition finishes, while the main thread is the only one driving
//! the progress stream. Partitions hit the wire as they become ready;
//! the receiver watches them land with [`parrived`] before the round
//! completes, then verifies every byte.
//!
//! The descriptors are persistent: the same pair re-fires for several
//! rounds, and after the first round the partitions ride pre-matched
//! slot-addressed re-fires that never touch the tag matcher (see
//! docs/PERSISTENT.md). Each rank prints `persist partition ok`, which
//! is what CI's persist-smoke job greps for.
//!
//! ```text
//! cargo run --release --example persist_partition
//! target/release/mpfarun -n 4 -- target/release/examples/persist_partition
//! target/release/mpfarun -n 4 --transport shm -- \
//!     target/release/examples/persist_partition
//! ```
//!
//! [`pready`]: mpfa::persist::PartitionedSend::pready
//! [`parrived`]: mpfa::persist::PartitionedRecv::parrived

use mpfa::mpi::{Launch, MpfaBytes, Proc, World, WorldConfig};

const RANKS: usize = 4;
const PARTS: usize = 12;
const PART_BYTES: usize = 4096;
const COMPUTE_THREADS: usize = 3;
const ROUNDS: u8 = 3;
const TAG: i32 = 7;

/// The byte every cell of partition `p` holds in `round`, as produced
/// by `sender` — pure function, so the receiver verifies locally.
fn cell(sender: i32, round: u8, p: usize) -> u8 {
    (sender as u8) ^ round.wrapping_mul(31) ^ (p as u8).wrapping_mul(5)
}

fn payload_for(sender: i32, round: u8) -> MpfaBytes {
    let mut buf = vec![0u8; PARTS * PART_BYTES];
    for (p, chunk) in buf.chunks_mut(PART_BYTES).enumerate() {
        chunk.fill(cell(sender, round, p));
    }
    MpfaBytes::from(buf)
}

fn rank_main(proc: Proc) {
    let comm = proc.world_comm();
    let (rank, size) = (comm.rank(), comm.size() as i32);
    let next = (rank + 1) % size;
    let prev = (rank + size - 1) % size;

    // Init once: validation, route selection and the slot-binding
    // handshake happen here, not per round.
    let mut psend = comm
        .psend_init(payload_for(rank, 0), PARTS, next, TAG)
        .expect("psend_init");
    let mut precv = comm
        .precv_init(PARTS * PART_BYTES, PARTS, prev, TAG)
        .expect("precv_init");

    for round in 0..ROUNDS {
        psend
            .set_payload(payload_for(rank, round))
            .expect("fresh round payload");
        precv.start().expect("precv start");
        let send_round = psend.start().expect("psend start");

        let mut early_arrivals = 0usize;
        std::thread::scope(|s| {
            // The compute threads: partition p belongs to thread
            // p % COMPUTE_THREADS, each finishing on its own schedule.
            // They only ever call pready — the wire is someone else's
            // job.
            for t in 0..COMPUTE_THREADS {
                let psend = &psend;
                s.spawn(move || {
                    let mut p = t;
                    while p < PARTS {
                        // Simulated compute, deliberately uneven so
                        // readiness arrives out of index order.
                        std::thread::sleep(std::time::Duration::from_micros(
                            50 * ((p % 5) as u64 + 1),
                        ));
                        psend.pready(p).expect("pready");
                        p += COMPUTE_THREADS;
                    }
                });
            }
            // The progress thread: the single stream moving ready
            // partitions onto the wire and landing the neighbor's.
            while !(send_round.is_complete() && precv.is_complete()) {
                proc.default_stream().progress();
                // parrived: partitions observable before the round
                // completes — partial delivery is the point.
                if !precv.is_complete() {
                    early_arrivals = (0..PARTS)
                        .filter(|&p| precv.parrived(p).expect("parrived"))
                        .count()
                        .max(early_arrivals);
                }
                std::thread::yield_now();
            }
        });

        let (data, status) = precv.wait().expect("precv wait");
        assert_eq!(status.bytes, PARTS * PART_BYTES);
        for (p, chunk) in data[..].chunks(PART_BYTES).enumerate() {
            assert!(
                chunk.iter().all(|&b| b == cell(prev, round, p)),
                "rank {rank}: round {round} partition {p} corrupt"
            );
        }
        println!(
            "rank {rank}: round {round} verified {PARTS} partitions from rank {prev} \
             ({early_arrivals} seen via parrived before completion)"
        );
    }

    comm.barrier().expect("final barrier");
    println!(
        "rank {rank}: persist partition ok \
         ({ROUNDS} rounds x {PARTS} partitions x {PART_BYTES} B, \
         {COMPUTE_THREADS} compute threads)"
    );
    proc.finalize(5.0);
}

fn main() {
    match World::launch(WorldConfig::instant(RANKS)) {
        Launch::InProcess(procs) => {
            println!(
                "persist_partition: in-process, {} simulated ranks",
                procs.len()
            );
            std::thread::scope(|s| {
                for proc in procs {
                    s.spawn(move || rank_main(proc));
                }
            });
        }
        Launch::Distributed(proc) => {
            println!(
                "persist_partition: rank {}/{} over {}",
                proc.rank(),
                proc.size(),
                proc.world().config().transport
            );
            rank_main(proc);
        }
    }
}

//! Allreduce over whatever substrate the environment provides: the same
//! binary runs in-process over the simulated fabric *and* as one rank of
//! a multi-process job over a real wire.
//!
//! In-process (4 simulated ranks):
//!
//! ```text
//! cargo run --release --example wire_allreduce
//! ```
//!
//! Distributed (4 OS processes over localhost TCP):
//!
//! ```text
//! cargo build --release --example wire_allreduce
//! target/release/mpfarun -n 4 -- target/release/examples/wire_allreduce
//! ```
//!
//! Every rank prints the same reduction result either way — the MPI
//! layer's protocols cannot tell the substrates apart. The exit code is
//! nonzero on any mismatch, which is what CI's wire-smoke job checks.
//!
//! Chaos mode (`--chaos`) is the end-to-end ULFM recovery demo: one rank
//! dies mid-allreduce and the survivors detect the failure, revoke the
//! communicator, agree, shrink, and finish the collective without it.
//! In-process the kill is [`World::chaos_kill`]; distributed it is the
//! launcher's kill schedule:
//!
//! ```text
//! target/release/mpfarun -n 4 --kill-rank 2 --kill-after-ms 50 --timeout 60 \
//!     -- target/release/examples/wire_allreduce --chaos
//! ```
//!
//! Every survivor prints `shrunk to 3 ranks`, which is what CI's
//! chaos-smoke job greps for.

use mpfa::mpi::{Launch, Op, Proc, World, WorldConfig};
use mpfa::resil::DetectorConfig;

const RANKS: usize = 4;
/// The rank that dies in `--chaos` mode (must match CI's `--kill-rank`).
const VICTIM: usize = 2;

/// Set when this process's ranks finish; quiets the stall doctor.
static DONE: std::sync::atomic::AtomicBool = std::sync::atomic::AtomicBool::new(false);

/// `--doctor-after SECS`: if the rank is still running once the
/// deadline passes, print the progress doctor's diagnosis to stderr so
/// a hung job's log names the pathology (lost reactor wakeup, stalled
/// stream, dead peer, ...) instead of just tripping the launcher
/// watchdog. The process keeps running — killing it stays the
/// launcher's job.
fn arm_stall_doctor() {
    let mut args = std::env::args();
    let secs: f64 = loop {
        match args.next() {
            Some(a) if a == "--doctor-after" => {
                break args.next().and_then(|v| v.parse().ok()).unwrap_or(60.0)
            }
            Some(_) => continue,
            None => return,
        }
    };
    std::thread::spawn(move || {
        let t0 = mpfa::core::wtime();
        while mpfa::core::wtime() - t0 < secs {
            std::thread::sleep(std::time::Duration::from_millis(200));
            if DONE.load(std::sync::atomic::Ordering::Acquire) {
                return;
            }
        }
        let snap = mpfa::obs::global_counters().snapshot();
        let report = mpfa::obs::diagnose_with_counters(
            &mpfa::obs::snapshot_all(),
            Some(&snap),
            &mpfa::obs::DoctorConfig::default(),
        );
        if report.healthy() {
            eprintln!("doctor: no pathology detected after {secs}s (still running)");
        }
        for d in report.criticals() {
            eprintln!("doctor: {}", d.title);
        }
    });
}

fn main() {
    let chaos = std::env::args().any(|a| a == "--chaos");
    arm_stall_doctor();
    match World::launch(WorldConfig::instant(RANKS)) {
        Launch::InProcess(procs) => {
            println!(
                "wire_allreduce: in-process, {} simulated ranks{}",
                procs.len(),
                if chaos { ", chaos" } else { "" }
            );
            let victim_done = std::sync::atomic::AtomicBool::new(false);
            let victim_done = &victim_done;
            std::thread::scope(|s| {
                for proc in procs {
                    s.spawn(move || {
                        if chaos {
                            chaos_main(proc, Some(victim_done));
                        } else {
                            rank_main(proc);
                        }
                    });
                }
            });
        }
        Launch::Distributed(proc) => {
            println!(
                "wire_allreduce: rank {}/{} over {}{}",
                proc.rank(),
                proc.size(),
                proc.world().config().transport,
                if chaos { ", chaos" } else { "" }
            );
            if chaos {
                chaos_main(proc, None);
            } else {
                rank_main(proc);
            }
        }
    }
}

fn rank_main(proc: Proc) {
    let comm = proc.world_comm();
    let rank = comm.rank();
    let size = comm.size() as i64;

    // A ring exchange first, to push point-to-point traffic (including a
    // rendezvous-sized payload) over the substrate.
    let right = (rank + 1) % size as i32;
    let left = (rank - 1).rem_euclid(size as i32);
    let recv = comm.irecv::<u8>(128 * 1024, left, 1).unwrap();
    comm.isend(&vec![rank as u8; 100_000], right, 1).unwrap();
    let (data, status) = recv.wait();
    assert_eq!(status.source, left);
    assert_eq!(data, vec![left as u8; 100_000]);

    // The headline check: a sum-allreduce every rank can verify locally.
    let mine: Vec<i64> = (0..16).map(|i| (rank as i64 + 1) * (i + 1)).collect();
    let total = comm.allreduce(&mine, Op::Sum).unwrap();
    let all: i64 = (1..=size).sum();
    for (i, v) in total.iter().enumerate() {
        assert_eq!(*v, all * (i as i64 + 1), "allreduce mismatch at {i}");
    }

    comm.barrier().unwrap();
    println!("rank {rank}: allreduce ok, total[0] = {}", total[0]);
    DONE.store(true, std::sync::atomic::Ordering::Release);
    proc.finalize(1.0);
}

/// The ULFM recovery loop. `victim_done` is the in-process kill
/// coordination (None when a launcher kill schedule does the deed).
fn chaos_main(proc: Proc, victim_done: Option<&std::sync::atomic::AtomicBool>) {
    use std::sync::atomic::Ordering;

    proc.enable_resilience(DetectorConfig::default());
    let comm = proc.world_comm();
    let rank = comm.rank();

    if let Some(done) = victim_done {
        // In-process choreography: the victim proves the comm works,
        // announces itself done, and stops participating; its neighbor
        // pulls the kill switch.
        let warm = comm.allreduce(&[1i64], Op::Sum);
        if proc.rank() == VICTIM {
            assert_eq!(warm.unwrap(), vec![RANKS as i64]);
            done.store(true, Ordering::Release);
            return;
        }
        if proc.rank() == (VICTIM + 1) % RANKS {
            while !done.load(Ordering::Acquire) {
                std::hint::spin_loop();
            }
            assert!(proc.world().chaos_kill(VICTIM));
        }
    }

    // Iterate the collective until the failure surfaces as an error (the
    // victim under a launcher kill schedule simply dies somewhere in
    // here). Every iteration either completes or errors — never hangs.
    let t0 = mpfa::core::wtime();
    loop {
        let fut = comm.iallreduce(&[1i64], Op::Sum).unwrap();
        match fut.wait_result() {
            Ok(_) => {
                assert!(
                    mpfa::core::wtime() - t0 < 30.0,
                    "rank {rank}: no failure observed within deadline"
                );
            }
            Err(err) => {
                println!("rank {rank}: allreduce failed ({err:?}), recovering");
                break;
            }
        }
    }

    // ULFM recovery: revoke so every survivor unblocks, agree on the
    // decision to continue, shrink past the dead rank, retry.
    comm.revoke().expect("revoke");
    assert!(comm.agree(true).expect("agree"));
    let shrunk = comm.shrink().expect("shrink");
    let total = shrunk
        .allreduce(&[1i64], Op::Sum)
        .expect("post-shrink allreduce");
    assert_eq!(total, vec![shrunk.size() as i64]);
    println!(
        "rank {rank}: shrunk to {} ranks, allreduce = {}",
        shrunk.size(),
        total[0]
    );
    DONE.store(true, std::sync::atomic::Ordering::Release);
    proc.finalize(2.0);
}

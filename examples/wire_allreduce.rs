//! Allreduce over whatever substrate the environment provides: the same
//! binary runs in-process over the simulated fabric *and* as one rank of
//! a multi-process job over a real wire.
//!
//! In-process (4 simulated ranks):
//!
//! ```text
//! cargo run --release --example wire_allreduce
//! ```
//!
//! Distributed (4 OS processes over localhost TCP):
//!
//! ```text
//! cargo build --release --example wire_allreduce
//! target/release/mpfarun -n 4 -- target/release/examples/wire_allreduce
//! ```
//!
//! Every rank prints the same reduction result either way — the MPI
//! layer's protocols cannot tell the substrates apart. The exit code is
//! nonzero on any mismatch, which is what CI's wire-smoke job checks.

use mpfa::mpi::{Launch, Op, Proc, World, WorldConfig};

const RANKS: usize = 4;

fn main() {
    match World::launch(WorldConfig::instant(RANKS)) {
        Launch::InProcess(procs) => {
            println!(
                "wire_allreduce: in-process, {} simulated ranks",
                procs.len()
            );
            std::thread::scope(|s| {
                for proc in procs {
                    s.spawn(move || rank_main(proc));
                }
            });
        }
        Launch::Distributed(proc) => {
            println!(
                "wire_allreduce: rank {}/{} over {}",
                proc.rank(),
                proc.size(),
                proc.world().config().transport
            );
            rank_main(proc);
        }
    }
}

fn rank_main(proc: Proc) {
    let comm = proc.world_comm();
    let rank = comm.rank();
    let size = comm.size() as i64;

    // A ring exchange first, to push point-to-point traffic (including a
    // rendezvous-sized payload) over the substrate.
    let right = (rank + 1) % size as i32;
    let left = (rank - 1).rem_euclid(size as i32);
    let recv = comm.irecv::<u8>(128 * 1024, left, 1).unwrap();
    comm.isend(&vec![rank as u8; 100_000], right, 1).unwrap();
    let (data, status) = recv.wait();
    assert_eq!(status.source, left);
    assert_eq!(data, vec![left as u8; 100_000]);

    // The headline check: a sum-allreduce every rank can verify locally.
    let mine: Vec<i64> = (0..16).map(|i| (rank as i64 + 1) * (i + 1)).collect();
    let total = comm.allreduce(&mine, Op::Sum).unwrap();
    let all: i64 = (1..=size).sum();
    for (i, v) in total.iter().enumerate() {
        assert_eq!(*v, all * (i as i64 + 1), "allreduce mismatch at {i}");
    }

    comm.barrier().unwrap();
    println!("rank {rank}: allreduce ok, total[0] = {}", total[0]);
    proc.finalize(1.0);
}

//! Collated progress across THREE asynchronous subsystems — the paper's
//! §2.6 in one program.
//!
//! Each rank of a two-rank job:
//!
//! 1. stages a "solution" from simulated device memory to the host
//!    (device copy engine),
//! 2. exchanges halo data with its peer (messaging),
//! 3. writes a checkpoint of the received data to simulated storage
//!    (async I/O),
//!
//! all overlapped, all driven by a single `MPIX_Stream_progress` loop —
//! the device hook, the four messaging hooks, and the storage hook
//! collate on the rank's default stream.
//!
//! Run with: `cargo run --release --example checkpoint`

use mpfa::core::sync::Mutex;
use mpfa::core::Request;
use mpfa::mpi::{Proc, World, WorldConfig};
use mpfa::offload::{
    device::{recv_to_device, send_from_device},
    CopyEngine, DeviceBuffer, DeviceConfig, Storage, StorageConfig,
};
use std::sync::Arc;

const N: usize = 64 * 1024;

fn main() {
    let procs = World::init(WorldConfig::instant(2));
    let summaries: Vec<String> = std::thread::scope(|s| {
        let handles: Vec<_> = procs
            .into_iter()
            .map(|p| s.spawn(move || rank_main(p)))
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    for line in summaries {
        println!("{line}");
    }
}

fn rank_main(proc: Proc) -> String {
    let comm = proc.world_comm();
    let stream = comm.stream().clone();
    let rank = comm.rank();
    let peer = 1 - rank;

    // Three subsystems, one stream.
    let engine = CopyEngine::register(&stream, DeviceConfig::default());
    let volume = Storage::register(&stream, StorageConfig::default());

    // "Computed" solution lives on the device.
    let solution = DeviceBuffer::alloc(N);
    engine.h2d(&vec![rank as u8 + 1; N], &solution, 0).wait();

    // Exchange device-resident halos (GPU-aware send/recv), overlapped
    // with a storage write of our own solution.
    let incoming = DeviceBuffer::alloc(N);
    let send = send_from_device(&comm, &engine, &solution, 0..N, peer, 1).unwrap();
    let recv = recv_to_device(&comm, &engine, &incoming, 0, N, peer, 1).unwrap();

    // Checkpoint our own data while the exchange is in flight.
    let staging = Arc::new(Mutex::new(Vec::new()));
    let stage = engine.d2h(&solution, 0..N, staging.clone());
    stage.wait();
    let ckpt = volume.iwrite(&format!("rank{rank}/own"), 0, &staging.lock());

    // One wait loop drives everything: copies, protocol, storage.
    let all = [send, recv, ckpt];
    let statuses = Request::wait_all(&all);
    assert!(statuses.iter().all(|s| !s.cancelled));

    // Verify and checkpoint the received halo too.
    let landing = Arc::new(Mutex::new(Vec::new()));
    engine.d2h(&incoming, 0..N, landing.clone()).wait();
    let received = landing.lock().clone();
    assert!(received.iter().all(|&b| b == peer as u8 + 1));
    volume
        .iwrite(&format!("rank{rank}/halo"), 0, &received)
        .wait();

    let stats = stream.stats();
    proc.finalize(1.0);
    format!(
        "rank {rank}: exchanged {N} device bytes, checkpointed 2 objects \
         ({} B on volume); engine moved {} B; hook polls by class {:?}",
        volume.stat(&format!("rank{rank}/own")).unwrap()
            + volume.stat(&format!("rank{rank}/halo")).unwrap(),
        engine.copied_bytes(),
        stats.hook_polls,
    )
}

//! The paper's Listings 1.2 and 1.3: dummy timed async tasks, a
//! synchronization counter, a wait-progress loop, and the progress-latency
//! statistics (`add_stat` / `report_stat`).
//!
//! A dummy task "completes" at a preset `MPI_Wtime` deadline; the latency
//! between that deadline and the progress engine observing it is the
//! paper's central metric.
//!
//! Run with: `cargo run --release --example dummy_tasks`

use mpfa::core::sync::Mutex;
use mpfa::core::{stats::LatencyStats, wtime, AsyncPoll, CompletionCounter, Stream};
use std::sync::Arc;

const TASK_DURATION: f64 = 0.01; // 10 ms (the paper uses 1 s for demo)
const NUM_TASKS: usize = 10;

fn add_async(stream: &Stream, counter: &CompletionCounter, stats: &Arc<Mutex<LatencyStats>>) {
    // struct dummy_state { double wtime_finish; int *counter_ptr; }
    let wtime_finish = wtime() + TASK_DURATION;
    let counter = counter.clone();
    let stats = stats.clone();
    stream.async_start(move |_thing| {
        let now = wtime();
        if now >= wtime_finish {
            stats.lock().add(now - wtime_finish); // add_stat
            counter.done(); // (*(p->counter_ptr))--
            AsyncPoll::Done // MPIX_ASYNC_DONE (state freed by drop)
        } else {
            AsyncPoll::Pending // MPIX_ASYNC_NOPROGRESS
        }
    });
}

fn main() {
    // MPI_Init
    let stream = Stream::global(); // MPIX_STREAM_NULL

    let counter = CompletionCounter::new(NUM_TASKS);
    let stats = Arc::new(Mutex::new(LatencyStats::new()));
    for _ in 0..NUM_TASKS {
        add_async(&stream, &counter, &stats);
    }

    // "Essentially a wait block":
    //     while (counter > 0) MPIX_Stream_progress(MPIX_STREAM_NULL);
    while !counter.is_zero() {
        stream.progress();
    }

    // report_stat
    println!("{}", stats.lock().report("dummy-task progress latency"));
    println!(
        "progress calls: {}, pending tasks after drain: {}",
        stream.progress_calls(),
        stream.pending_tasks()
    );
    // MPI_Finalize would spin progress until all async tasks complete;
    // our wait loop already did.
    assert_eq!(stream.pending_tasks(), 0);
}

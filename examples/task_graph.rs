//! A task-DAG pipeline over MPI — the task-based-runtime integration the
//! paper's introduction motivates, using the `mpfa-interop` DAG executor
//! (one `MPIX_Async` hook advances the whole graph).
//!
//! Two ranks run a four-stage pipeline:
//!
//! ```text
//!   produce ──► send(data) ───────────────► (rank 1) recv ──► transform
//!      │                                                        │
//!      └─► local_checksum ──────────────┐                       ▼
//!                                       └──► (rank 0) recv ◄── send(result)
//! ```
//!
//! Run with: `cargo run --release --example task_graph`

use mpfa::core::sync::Mutex;
use mpfa::core::{Request, Status};
use mpfa::interop::TaskGraph;
use mpfa::mpi::{Proc, World, WorldConfig};
use std::sync::Arc;

fn main() {
    let procs = World::init(WorldConfig::instant(2));
    let outputs: Vec<String> = std::thread::scope(|s| {
        let handles: Vec<_> = procs
            .into_iter()
            .map(|p| s.spawn(move || rank_main(p)))
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    for line in outputs {
        println!("{line}");
    }
}

/// A graph node that receives `count` i64s and deposits them in `dest`.
/// The returned request is a proxy that completes only AFTER the deposit,
/// so dependents never observe an empty buffer.
fn typed_recv_node(
    stream: &mpfa::core::Stream,
    comm: &mpfa::mpi::Comm,
    count: usize,
    src: i32,
    tag: i32,
    dest: Arc<Mutex<Vec<i64>>>,
) -> Request {
    let recv = comm.irecv::<i64>(count, src, tag).unwrap();
    let (proxy, completer) = Request::pair(stream);
    let mut recv = Some(recv);
    let mut completer = Some(completer);
    stream.async_start(move |_t| {
        if recv.as_ref().map(|r| r.is_complete()).unwrap_or(false) {
            let (data, _) = recv.take().expect("present").take();
            *dest.lock() = data;
            completer.take().expect("once").complete_empty();
            mpfa::core::AsyncPoll::Done
        } else {
            mpfa::core::AsyncPoll::Pending
        }
    });
    proxy
}

fn rank_main(proc: Proc) -> String {
    let comm = proc.world_comm();
    let stream = comm.stream().clone();
    let mut graph = TaskGraph::new();

    if comm.rank() == 0 {
        let data: Vec<i64> = (0..1000).collect();
        let checksum = Arc::new(Mutex::new(0i64));

        // produce -> send raw data to rank 1
        let payload = data.clone();
        let c1 = comm.clone();
        let produce = graph.add(&[], move |_s| c1.isend(&payload, 1, 1).unwrap());

        // independent local work (no dependency on the send completing)
        let ck = checksum.clone();
        let local = graph.add(&[], move |s| {
            *ck.lock() = data.iter().sum();
            Request::completed(s, Status::empty())
        });

        // receive the transformed result once both locals are done
        let result = Arc::new(Mutex::new(Vec::new()));
        let res = result.clone();
        let c2 = comm.clone();
        let _recv = graph.add(&[produce, local], move |s| {
            typed_recv_node(s, &c2, 1000, 1, 2, res.clone())
        });

        let handle = graph.launch(&stream);
        assert!(handle.wait_on(&stream, 10.0));
        let result = result.lock();
        let expect_sum: i64 = (0..1000).map(|v| v * 2 + 1).sum();
        assert_eq!(result.iter().sum::<i64>(), expect_sum);
        format!(
            "rank 0: pipeline complete — checksum {}, transformed sum {}",
            checksum.lock(),
            expect_sum
        )
    } else {
        // rank 1: recv -> transform -> send back
        let buf = Arc::new(Mutex::new(Vec::new()));
        let b = buf.clone();
        let c1 = comm.clone();
        let recv = graph.add(&[], move |s| typed_recv_node(s, &c1, 1000, 0, 1, b.clone()));
        let b = buf.clone();
        let c2 = comm.clone();
        let _send_back = graph.add(&[recv], move |_s| {
            let transformed: Vec<i64> = b.lock().iter().map(|v| v * 2 + 1).collect();
            c2.isend(&transformed, 0, 2).unwrap()
        });
        let handle = graph.launch(&stream);
        assert!(handle.wait_on(&stream, 10.0));
        "rank 1: transform stage complete".to_string()
    }
}

//! A master/worker task farm — dynamic load balancing over `ANY_SOURCE`
//! matching, the classic irregular-parallelism pattern.
//!
//! The master hands out work items one at a time; each worker requests
//! more by returning a result. Termination uses a poison tag. The master
//! overlaps bookkeeping with communication via its explicit progress
//! stream.
//!
//! Run with: `cargo run --release --example task_farm`

use mpfa::mpi::{Proc, World, WorldConfig, ANY_SOURCE};

const WORK_ITEMS: u64 = 64;
const TAG_WORK: i32 = 1;
const TAG_RESULT: i32 = 2;
const TAG_STOP: i32 = 3;

/// The "expensive" computation: sum of squares below n (deliberately
/// uneven cost per item).
fn compute(n: u64) -> u64 {
    (0..n * 1000)
        .map(|i| i.wrapping_mul(i))
        .fold(0u64, u64::wrapping_add)
}

fn main() {
    let procs = World::init(WorldConfig::instant(4));
    let outputs: Vec<Option<(u64, Vec<usize>)>> = std::thread::scope(|s| {
        let handles: Vec<_> = procs
            .into_iter()
            .map(|p| s.spawn(move || rank_main(p)))
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    let (checksum, per_worker) = outputs[0].clone().expect("master output");
    println!("task_farm: {WORK_ITEMS} items over 3 workers");
    println!("  items per worker: {per_worker:?}");
    println!("  result checksum: {checksum}");
    assert_eq!(per_worker.iter().sum::<usize>(), WORK_ITEMS as usize);
}

fn rank_main(proc: Proc) -> Option<(u64, Vec<usize>)> {
    let comm = proc.world_comm();
    let rank = comm.rank();
    let workers = comm.size() as i32 - 1;

    if rank == 0 {
        // Master.
        let mut next_item = 0u64;
        let mut done_items = 0u64;
        let mut checksum = 0u64;
        let mut per_worker = vec![0usize; comm.size()];

        // Seed every worker with one item.
        for w in 1..=workers {
            comm.send(&[next_item], w, TAG_WORK).unwrap();
            next_item += 1;
        }
        // Deal more work to whoever answers first.
        while done_items < WORK_ITEMS {
            let (result, status) = comm.recv::<u64>(2, ANY_SOURCE, TAG_RESULT).unwrap();
            checksum = checksum.wrapping_add(result[1]);
            per_worker[status.source as usize] += 1;
            done_items += 1;
            if next_item < WORK_ITEMS {
                comm.send(&[next_item], status.source, TAG_WORK).unwrap();
                next_item += 1;
            } else {
                comm.send(&[0u64], status.source, TAG_STOP).unwrap();
            }
        }
        proc.finalize(1.0);
        Some((checksum, per_worker[1..].to_vec()))
    } else {
        // Worker: probe for the next message; STOP tag terminates.
        loop {
            let (_, tag, _) = comm.probe(0, mpfa::mpi::ANY_TAG).unwrap();
            if tag == TAG_STOP {
                comm.recv::<u64>(1, 0, TAG_STOP).unwrap();
                break;
            }
            let (item, _) = comm.recv::<u64>(1, 0, TAG_WORK).unwrap();
            let value = compute(item[0]);
            comm.send(&[item[0], value], 0, TAG_RESULT).unwrap();
        }
        proc.finalize(1.0);
        None
    }
}

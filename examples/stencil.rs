//! A 1-D Jacobi stencil with halo exchange — the computation/communication
//! overlap workload the paper's introduction motivates.
//!
//! Each rank owns a strip of the domain. Every iteration:
//!
//! 1. post halo receives, send boundary cells to both neighbors
//!    (nonblocking);
//! 2. update the interior (no halo needed) — this is the overlap window,
//!    during which an explicit progress engine keeps the exchange moving;
//! 3. wait for halos (cheap by now) and update the two boundary cells.
//!
//! Run with: `cargo run --release --example stencil`

use mpfa::core::wtime;
use mpfa::mpi::{Proc, World, WorldConfig};

const CELLS_PER_RANK: usize = 4096;
const ITERS: usize = 200;

fn main() {
    let ranks = 4;
    let procs = World::init(WorldConfig::instant_nodes(ranks, 2));
    let results: Vec<(f64, f64)> = std::thread::scope(|s| {
        let handles: Vec<_> = procs
            .into_iter()
            .map(|p| s.spawn(move || rank_main(p)))
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    let total: f64 = results.iter().map(|(_, checksum)| *checksum).sum();
    let elapsed = results.iter().map(|(t, _)| *t).fold(0.0, f64::max);
    println!("stencil: {ranks} ranks x {CELLS_PER_RANK} cells, {ITERS} iters");
    println!(
        "  max rank time: {:.3} ms, domain checksum {:.6}",
        elapsed * 1e3,
        total
    );
}

fn rank_main(proc: Proc) -> (f64, f64) {
    let comm = proc.world_comm();
    let rank = comm.rank();
    let size = comm.size() as i32;
    let left = (rank > 0).then(|| rank - 1);
    let right = (rank < size - 1).then(|| rank + 1);

    // Domain strip with one halo cell at each end.
    let mut u = vec![0.0f64; CELLS_PER_RANK + 2];
    for (i, cell) in u.iter_mut().enumerate() {
        *cell = (rank as f64) + (i as f64) * 1e-4;
    }
    let mut next = u.clone();

    let t0 = wtime();
    for iter in 0..ITERS {
        let tag = iter as i32 % 1000;
        // 1) Halo exchange, nonblocking.
        let recv_left = left.map(|l| comm.irecv::<f64>(1, l, tag).unwrap());
        let recv_right = right.map(|r| comm.irecv::<f64>(1, r, tag).unwrap());
        let send_left = left.map(|l| comm.isend(&[u[1]], l, tag).unwrap());
        let send_right = right.map(|r| comm.isend(&[u[CELLS_PER_RANK]], r, tag).unwrap());

        // 2) Interior update overlapped with the exchange: intersperse
        //    progress while sweeping (Figure 5(a) pattern, natural here
        //    because the sweep is already a loop).
        for chunk in (2..CELLS_PER_RANK).collect::<Vec<_>>().chunks(512) {
            for &i in chunk {
                next[i] = 0.5 * u[i] + 0.25 * (u[i - 1] + u[i + 1]);
            }
            comm.stream().progress();
        }

        // 3) Boundary cells need the halos.
        if let Some(r) = recv_left {
            let (halo, _) = r.wait();
            u[0] = halo[0];
        }
        if let Some(r) = recv_right {
            let (halo, _) = r.wait();
            u[CELLS_PER_RANK + 1] = halo[0];
        }
        next[1] = 0.5 * u[1] + 0.25 * (u[0] + u[2]);
        next[CELLS_PER_RANK] =
            0.5 * u[CELLS_PER_RANK] + 0.25 * (u[CELLS_PER_RANK - 1] + u[CELLS_PER_RANK + 1]);

        // Fixed boundaries at the global domain edges.
        if left.is_none() {
            next[1] = u[1];
        }
        if right.is_none() {
            next[CELLS_PER_RANK] = u[CELLS_PER_RANK];
        }

        for s in [send_left, send_right].into_iter().flatten() {
            s.wait();
        }
        std::mem::swap(&mut u, &mut next);
    }
    let elapsed = wtime() - t0;

    let checksum: f64 = u[1..=CELLS_PER_RANK].iter().sum::<f64>() / CELLS_PER_RANK as f64;
    proc.finalize(1.0);
    (elapsed, checksum)
}

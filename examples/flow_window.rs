//! Windowed aggregation over frontier-tracked flows: the mpfa-flow
//! pipeline demo. The same binary runs in-process over the simulated
//! fabric *and* as one rank of a multi-process job over a real wire.
//!
//! Every rank produces deterministic keyed events, shuffles them by key
//! to aggregators, reduces per-window partials, and emits each window's
//! final `(sum, count)` from its owner **when the frontier passes the
//! window close** — a continuation callback, not a poll. Every rank
//! checks its emissions against the locally computable ground truth and
//! prints `flow window ok`, which is what CI's flow-smoke job greps for.
//!
//! ```text
//! cargo run --release --example flow_window
//! target/release/mpfarun -n 4 -- target/release/examples/flow_window
//! ```
//!
//! Chaos mode (`--chaos`) is the recovery demo: one rank dies
//! mid-window, the survivors watch the frontier stall (and show the
//! progress doctor naming the dead holder), then revoke → agree →
//! shrink, abandon the flows, OR-allreduce their emitted-window masks,
//! and replay the un-emitted windows from the event generator over the
//! shrunk world. A final sum-allreduce of emitted-window counts proves
//! the union of outputs covers every window **exactly once**; each
//! survivor prints `exactly-once`, which CI's chaos variant greps for.
//!
//! ```text
//! target/release/mpfarun -n 4 --kill-rank 2 --kill-after-ms 100 --timeout 120 \
//!     -- target/release/examples/flow_window --chaos
//! ```

use std::sync::atomic::{AtomicBool, Ordering};

use mpfa::flow::window::{expected_output, union_emitted_mask, WindowCfg, WindowWorker};
use mpfa::flow::{FlowConfig, FlowContext};
use mpfa::mpi::{Launch, Op, Proc, World, WorldConfig};
use mpfa::obs::{diagnose_with_counters, DoctorConfig};
use mpfa::resil::DetectorConfig;

const RANKS: usize = 4;
/// The rank that dies in `--chaos` mode (must match CI's `--kill-rank`).
const VICTIM: usize = 2;

fn cfg() -> WindowCfg {
    WindowCfg {
        windows: 24,
        events_per_window: 512,
        keys: 251,
        seed: 0xf10f,
        batch: 256,
    }
}

fn main() {
    let chaos = std::env::args().any(|a| a == "--chaos");
    match World::launch(WorldConfig::instant(RANKS)) {
        Launch::InProcess(procs) => {
            println!(
                "flow_window: in-process, {} simulated ranks{}",
                procs.len(),
                if chaos { ", chaos" } else { "" }
            );
            let victim_parked = AtomicBool::new(false);
            let victim_parked = &victim_parked;
            std::thread::scope(|s| {
                for proc in procs {
                    s.spawn(move || {
                        if chaos {
                            chaos_main(proc, Some(victim_parked));
                        } else {
                            rank_main(proc);
                        }
                    });
                }
            });
        }
        Launch::Distributed(proc) => {
            println!(
                "flow_window: rank {}/{} over {}{}",
                proc.rank(),
                proc.size(),
                proc.world().config().transport,
                if chaos { ", chaos" } else { "" }
            );
            if chaos {
                chaos_main(proc, None);
            } else {
                rank_main(proc);
            }
        }
    }
}

/// Drive the worker to completion, interleaving pipeline steps with
/// stream progress.
fn drive(proc: &Proc, worker: &mut WindowWorker) {
    let t0 = mpfa::core::wtime();
    while worker.step() {
        proc.default_stream().progress();
        assert!(
            mpfa::core::wtime() - t0 < 60.0,
            "rank {}: pipeline wedged",
            proc.rank()
        );
    }
}

/// Check this rank's emissions against the serially computed ground
/// truth (every rank can compute it locally — events are a pure
/// function of the seed).
fn verify_emitted(worker: &WindowWorker, cfg: &WindowCfg) {
    let want = expected_output(cfg);
    for (w, got) in worker.emitted() {
        assert_eq!(got, &want[w], "window {w} output mismatch");
    }
    assert!(worker.frontier_honest(), "emitted before frontier covered");
}

fn rank_main(proc: Proc) {
    let cfg = cfg();
    let fx = FlowContext::install(&proc);
    let comm = proc.world_comm();
    let mut worker = WindowWorker::new(
        &fx,
        &comm,
        cfg,
        &vec![false; cfg.windows as usize],
        Default::default(),
    );
    drive(&proc, &mut worker);
    verify_emitted(&worker, &cfg);
    assert_eq!(
        worker.seen_emits().len(),
        cfg.windows as usize,
        "emitlog broadcast incomplete"
    );
    println!(
        "rank {}: flow window ok ({} windows emitted here, {} events produced)",
        proc.rank(),
        worker.emitted().len(),
        worker.produced_events()
    );
    fx.shutdown();
    proc.finalize(2.0);
}

/// Kill-mid-window → frontier stall (doctor-visible) → shrink + replay
/// → exactly-once union of outputs. `victim_parked` is the in-process
/// kill choreography (None when the launcher's kill schedule does it).
fn chaos_main(proc: Proc, victim_parked: Option<&AtomicBool>) {
    let cfg = cfg();
    proc.enable_resilience(DetectorConfig::default());
    let fx = FlowContext::install_with(
        &proc,
        FlowConfig {
            stall_after: 0.3,
            ..FlowConfig::default()
        },
    );
    let comm = proc.world_comm();
    let mut worker = WindowWorker::new(
        &fx,
        &comm,
        cfg,
        &vec![false; cfg.windows as usize],
        Default::default(),
    );

    if proc.rank() == VICTIM {
        // Participate until at least one of our windows has emitted,
        // then go silent mid-window: our unreleased capability pins
        // everyone's frontier, windows already below it stay emitted at
        // the survivors, and our own emitted output dies with us (the
        // survivors must re-emit it — exactly-once is judged at the
        // surviving sinks).
        let t0 = mpfa::core::wtime();
        while worker.emitted().is_empty() && mpfa::core::wtime() - t0 < 5.0 {
            worker.step();
            proc.default_stream().progress();
        }
        if let Some(parked) = victim_parked {
            parked.store(true, Ordering::Release);
            return;
        }
        // Distributed: hold the capabilities and wait for the
        // launcher's SIGKILL (`mpfarun --kill-rank`) to land.
        loop {
            std::thread::sleep(std::time::Duration::from_millis(50));
        }
    }

    // Run the pipeline until it either completes (it won't — the victim
    // dies) or the frontier stalls with a failed rank.
    let counters = mpfa::obs::global_counters();
    let t0 = mpfa::core::wtime();
    let mut killed = victim_parked.is_none();
    loop {
        let running = worker.step();
        proc.default_stream().progress();
        if !killed
            && proc.rank() == (VICTIM + 1) % RANKS
            && victim_parked.unwrap().load(Ordering::Acquire)
        {
            assert!(proc.world().chaos_kill(VICTIM));
            killed = true;
        }
        let stalled = counters.flow_stalled_holder.load(Ordering::Relaxed) != 0;
        let dead = counters.ranks_failed.load(Ordering::Relaxed) != 0;
        if stalled && dead {
            break;
        }
        assert!(running, "pipeline completed despite the kill");
        assert!(
            mpfa::core::wtime() - t0 < 60.0,
            "rank {}: stall never detected",
            proc.rank()
        );
    }

    // The progress doctor names the pathology: frontier stalled while
    // capabilities are held by a dead rank.
    let snap = counters.snapshot();
    let report = diagnose_with_counters(
        &mpfa::obs::snapshot_all(),
        Some(&snap),
        &DoctorConfig::default(),
    );
    if let Some(d) = report
        .criticals()
        .find(|d| d.title.contains("flow frontier stalled"))
    {
        println!("rank {}: doctor: {}", proc.rank(), d.title);
    }

    // ULFM cycle, then rebuild the pipeline on the shrunk world.
    comm.revoke().expect("revoke");
    assert!(comm.agree(true).expect("agree"));
    let shrunk = comm.shrink().expect("shrink");
    fx.abandon_all();
    let skip = union_emitted_mask(&shrunk, worker.emitted(), cfg.windows);
    println!(
        "rank {}: flow shrunk to {} ranks, replaying {} of {} windows",
        proc.rank(),
        shrunk.size(),
        skip.iter().filter(|&&s| !s).count(),
        cfg.windows
    );
    let mut replay = WindowWorker::new(&fx, &shrunk, cfg, &skip, worker.emitted().clone());
    drive(&proc, &mut replay);
    verify_emitted(&replay, &cfg);

    // Exactly-once: across survivors, emitted-window counts sum to the
    // window total (termination already guarantees at-least-once).
    let counts = shrunk
        .allreduce(&[replay.emitted().len() as i64], Op::Sum)
        .expect("count allreduce");
    assert_eq!(counts[0], cfg.windows as i64, "duplicate or lost windows");
    println!(
        "rank {}: exactly-once: {} windows total, {} emitted here after replay",
        proc.rank(),
        counts[0],
        replay.emitted().len()
    );
    fx.shutdown();
    proc.finalize(2.0);
}

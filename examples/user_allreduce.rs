//! Section 4.7 / Listing 1.8: the user-level recursive-doubling allreduce
//! against the native general `MPI_Iallreduce`, with the Figure 13
//! latency comparison on this machine's simulated cluster.
//!
//! Run with: `cargo run --release --example user_allreduce`

use mpfa::core::wtime;
use mpfa::interop::user_coll::my_allreduce;
use mpfa::mpi::{Op, Proc, World, WorldConfig};

const ITERS: usize = 20;
const WARMUP: usize = 5;

fn main() {
    println!("single-int allreduce latency, native vs user-level (Listing 1.8)");
    println!("(threaded ranks; on a single-core host this is dominated by");
    println!(" scheduler timeslicing — see `cargo run -p mpfa-bench --bin fig13`");
    println!(" for the software-overhead measurement that reproduces Figure 13)");
    println!(
        "{:>6} {:>14} {:>14} {:>8}",
        "ranks", "native (us)", "user (us)", "ratio"
    );
    for p in [2usize, 4, 8] {
        let procs = World::init(WorldConfig::cluster(p));
        let results: Vec<(f64, f64)> = std::thread::scope(|s| {
            let handles: Vec<_> = procs
                .into_iter()
                .map(|pr| s.spawn(move || rank_main(pr)))
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        let (native, user) = results[0];
        println!(
            "{:>6} {:>14.3} {:>14.3} {:>8.3}",
            p,
            native * 1e6,
            user * 1e6,
            user / native
        );
    }
}

fn rank_main(proc: Proc) -> (f64, f64) {
    let comm = proc.world_comm();
    let rank = comm.rank();

    // Native general-path Iallreduce.
    for _ in 0..WARMUP {
        comm.allreduce(&[rank], Op::Sum).unwrap();
    }
    let t0 = wtime();
    for _ in 0..ITERS {
        let out = comm.allreduce(&[rank], Op::Sum).unwrap();
        std::hint::black_box(out);
    }
    let native = (wtime() - t0) / ITERS as f64;

    // User-level specialized allreduce (i32 + SUM + pof2 only).
    for _ in 0..WARMUP {
        my_allreduce(&comm, vec![rank]).unwrap();
    }
    let t0 = wtime();
    for _ in 0..ITERS {
        let out = my_allreduce(&comm, vec![rank]).unwrap();
        std::hint::black_box(out);
    }
    let user = (wtime() - t0) / ITERS as f64;

    (native, user)
}

//! The async face of the runtime, end to end: every rank runs its whole
//! communication script as ONE spawned future — ring exchange with
//! `send_async`/`recv_async`, then `allreduce_async` and
//! `barrier_async` — while the main thread only pumps the stream. Like
//! `wire_allreduce`, the same binary runs in-process over the simulated
//! fabric and as one rank of a multi-process job over a real wire.
//!
//! In-process (4 simulated ranks):
//!
//! ```text
//! cargo run --release --example async_allreduce
//! ```
//!
//! Distributed (4 OS processes over localhost TCP, then UDS):
//!
//! ```text
//! cargo build --release --example async_allreduce
//! target/release/mpfarun -n 4 -- target/release/examples/async_allreduce
//! target/release/mpfarun -n 4 --transport uds -- target/release/examples/async_allreduce
//! ```
//!
//! Every rank prints `async allreduce ok`; any mismatch exits nonzero,
//! which is what CI's async-smoke job checks. The executor's pump runs
//! as an MPIX_Async task on the rank's default stream, so the awaiting
//! future is polled from *inside* the same progress sweeps that advance
//! the transfers it awaits — no extra threads, no busy-wait.

use mpfa::cont::Executor;
use mpfa::mpi::{Comm, Launch, Op, Proc, World, WorldConfig};

const RANKS: usize = 4;

fn main() {
    match World::launch(WorldConfig::instant(RANKS)) {
        Launch::InProcess(procs) => {
            println!(
                "async_allreduce: in-process, {} simulated ranks",
                procs.len()
            );
            std::thread::scope(|s| {
                for proc in procs {
                    s.spawn(move || rank_main(proc));
                }
            });
        }
        Launch::Distributed(proc) => {
            println!(
                "async_allreduce: rank {}/{} over {}",
                proc.rank(),
                proc.size(),
                proc.world().config().transport
            );
            rank_main(proc);
        }
    }
}

/// The whole per-rank communication script, as a future.
async fn rank_script(comm: Comm) -> i64 {
    let rank = comm.rank();
    let size = comm.size() as i64;

    // Ring exchange, rendezvous-sized: initiate both sides, then await
    // them concurrently-in-flight (send first posted, recv awaited
    // first — completion order is the transport's business).
    let right = (rank + 1) % size as i32;
    let left = (rank - 1).rem_euclid(size as i32);
    let recv = comm.recv_async::<u8>(128 * 1024, left, 1).unwrap();
    let send = comm
        .send_async(&vec![rank as u8; 100_000], right, 1)
        .unwrap();
    let (data, status) = recv.await.expect("ring recv failed");
    send.await.expect("ring send failed");
    assert_eq!(status.source, left);
    assert_eq!(data, vec![left as u8; 100_000]);

    // The headline check: a sum-allreduce every rank verifies locally.
    let mine: Vec<i64> = (0..16).map(|i| (rank as i64 + 1) * (i + 1)).collect();
    let total = comm
        .allreduce_async(&mine, Op::Sum)
        .unwrap()
        .await
        .expect("allreduce failed");
    let all: i64 = (1..=size).sum();
    for (i, v) in total.iter().enumerate() {
        assert_eq!(*v, all * (i as i64 + 1), "allreduce mismatch at {i}");
    }

    comm.barrier_async().unwrap().await.expect("barrier failed");
    total[0]
}

fn rank_main(proc: Proc) {
    let comm = proc.world_comm();
    let rank = comm.rank();
    let stream = proc.default_stream().clone();

    let exec = Executor::new(&stream);
    let handle = exec.spawn(rank_script(comm));

    // The synchronous rim: pump the stream until the script finishes,
    // yielding between unproductive sweeps so co-located ranks (threads
    // here, oversubscribed processes under mpfarun) get the core.
    while !handle.is_finished() {
        stream.progress();
        if !handle.is_finished() {
            std::thread::yield_now();
        }
    }
    let total0 = handle.join();

    println!("rank {rank}: async allreduce ok, total[0] = {total0}");
    proc.finalize(1.0);
}

//! Computation/communication overlap — Sections 2.3–2.4 made quantitative.
//!
//! A rendezvous-sized message has *two* wait blocks (RTS/CTS handshake,
//! then the data). Splitting it into Isend…Wait and computing in between
//! only overlaps the FIRST wait block: without progress during the
//! computation, the CTS sits unanswered and the bulk transfer cannot even
//! start (Figure 4(c)). The fixes of Figure 5 — interspersed progress
//! tests, or a progress engine — recover the overlap.
//!
//! This example measures the total time of compute + rendezvous transfer
//! under three strategies and reports the achieved overlap.
//!
//! Run with: `cargo run --release --example overlap`

use mpfa::core::{spin::compute_units, wtime};
use mpfa::interop::ProgressEngine;
use mpfa::mpi::{Proc, World, WorldConfig};

const MSG_BYTES: usize = 4 << 20; // rendezvous territory
const TAG: i32 = 3;

#[derive(Clone, Copy)]
enum Strategy {
    /// Isend … compute … Wait, no progress during compute (Figure 4(c)).
    NoProgress,
    /// Compute split into slices with a progress call between slices
    /// (Figure 5(a)).
    Interspersed,
    /// A progress-engine thread on the communicator's stream (§3.5).
    Engine,
}

fn main() {
    let compute_units_total: u64 = 30_000_000;

    println!(
        "rendezvous overlap, {} MiB message, compute+transfer total (ms):",
        MSG_BYTES >> 20
    );
    println!("(threaded ranks; on a single-core host the threads timeslice and the");
    println!(" overlap column is unreliable — `cargo run -p mpfa-bench --bin abl_overlap`");
    println!(" is the controlled version of this experiment)");
    println!(
        "{:>14} {:>12} {:>12} {:>12}",
        "strategy", "sender", "receiver", "overlap"
    );
    for (name, strategy) in [
        ("no-progress", Strategy::NoProgress),
        ("interspersed", Strategy::Interspersed),
        ("engine", Strategy::Engine),
    ] {
        let procs = World::init(WorldConfig::cluster(2));
        let times: Vec<(f64, f64)> = std::thread::scope(|s| {
            let handles: Vec<_> = procs
                .into_iter()
                .map(|p| s.spawn(move || rank_main(p, strategy, compute_units_total)))
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        // Baselines for the overlap metric.
        let (sender_total, compute_only) = times[0];
        let overlap = 1.0 - (sender_total - compute_only).max(0.0) / sender_total;
        println!(
            "{:>14} {:>12.3} {:>12.3} {:>11.0}%",
            name,
            sender_total * 1e3,
            times[1].0 * 1e3,
            overlap * 100.0
        );
    }
}

fn rank_main(proc: Proc, strategy: Strategy, units: u64) -> (f64, f64) {
    let comm = proc.world_comm();
    if comm.rank() == 0 {
        // Sender: measure compute-only cost first (for the overlap metric).
        let c0 = wtime();
        std::hint::black_box(compute_units(units));
        let compute_only = wtime() - c0;

        comm.barrier().unwrap();
        let payload = vec![7u8; MSG_BYTES];
        let t0 = wtime();
        let req = comm.isend(&payload, 1, TAG).unwrap();
        match strategy {
            Strategy::NoProgress => {
                std::hint::black_box(compute_units(units));
            }
            Strategy::Interspersed => {
                let slices = 64;
                for _ in 0..slices {
                    std::hint::black_box(compute_units(units / slices));
                    comm.stream().progress();
                }
            }
            Strategy::Engine => {
                let engine = ProgressEngine::spawn(comm.stream().clone());
                std::hint::black_box(compute_units(units));
                engine.stop();
            }
        }
        req.wait();
        let total = wtime() - t0;
        comm.barrier().unwrap();
        (total, compute_only)
    } else {
        // Receiver: posts early and waits (its own progress is live).
        comm.barrier().unwrap();
        let t0 = wtime();
        let recv = comm.irecv::<u8>(MSG_BYTES, 0, TAG).unwrap();
        let (data, _) = recv.wait();
        assert_eq!(data.len(), MSG_BYTES);
        let total = wtime() - t0;
        comm.barrier().unwrap();
        (total, 0.0)
    }
}

//! Quickstart: a four-rank world, point-to-point messaging, a native
//! collective, and the paper's headline extensions — explicit stream
//! progress, async tasks, and side-effect-free completion queries.
//!
//! Run with: `cargo run --release --example quickstart`

use mpfa::core::{wtime, AsyncPoll};
use mpfa::mpi::{Op, World, WorldConfig};

fn main() {
    // "mpiexec -n 4": one Proc per rank, each on its own thread.
    let procs = World::init(WorldConfig::instant(4));
    std::thread::scope(|s| {
        for proc in procs {
            s.spawn(move || rank_main(proc));
        }
    });
    println!("quickstart: all ranks finished");
}

fn rank_main(proc: mpfa::mpi::Proc) {
    let comm = proc.world_comm();
    let rank = comm.rank();
    let size = comm.size() as i32;

    // --- Point-to-point: a ring of typed messages -----------------------
    let right = (rank + 1) % size;
    let left = (rank - 1).rem_euclid(size);
    // Nonblocking receive first (expected path), then send.
    let recv = comm.irecv::<i64>(2, left, 7).unwrap();
    comm.isend(&[rank as i64, rank as i64 * 10], right, 7)
        .unwrap();
    let (data, status) = recv.wait();
    assert_eq!(data, vec![left as i64, left as i64 * 10]);
    assert_eq!(status.source, left);

    // --- The MPIX extensions --------------------------------------------
    // 1) MPIX_Async_start: a timed dummy task on this rank's stream.
    let stream = proc.default_stream().clone();
    let deadline = wtime() + 0.001;
    stream.async_start(move |_thing| {
        if wtime() >= deadline {
            AsyncPoll::Done
        } else {
            AsyncPoll::Pending
        }
    });

    // 2) MPIX_Stream_progress: drive it explicitly, no request needed.
    while stream.pending_tasks() > 0 {
        stream.progress();
    }

    // 3) MPIX_Request_is_complete: poll an operation with zero side
    //    effects, progressing only when we choose to.
    let pending = comm.isend(&vec![0u8; 200_000], right, 8).unwrap(); // rendezvous-sized
    let big_recv = comm.irecv::<u8>(200_000, left, 8).unwrap();
    while !(pending.is_complete() && big_recv.is_complete()) {
        stream.progress(); // the only place progress happens
    }
    let (big, _) = big_recv.take();
    assert_eq!(big.len(), 200_000);

    // --- A native collective ---------------------------------------------
    let total = comm.allreduce(&[rank + 1], Op::Sum).unwrap();
    assert_eq!(total[0], (1..=size).sum::<i32>());

    if rank == 0 {
        println!(
            "rank 0: ring exchange, async task, rendezvous transfer, allreduce = {}",
            total[0]
        );
    }
    proc.finalize(1.0);
}

//! Cross-crate integration: native collectives against serial references,
//! over several topologies and fabrics.

mod common;

use common::run_ranks;
use mpfa::mpi::{Op, WorldConfig};

#[test]
fn allreduce_matches_reference_across_configs() {
    for cfg in [
        WorldConfig::instant(5),
        WorldConfig::instant_nodes(6, 3),
        WorldConfig::cluster(4),
        WorldConfig::single_node(7),
    ] {
        let n = cfg.ranks;
        let results = run_ranks(cfg, |proc| {
            let comm = proc.world_comm();
            let data: Vec<i64> = (0..10).map(|i| i * (proc.rank() as i64 + 1)).collect();
            comm.allreduce(&data, Op::Sum).unwrap()
        });
        let mut expect = vec![0i64; 10];
        for r in 0..n as i64 {
            for (i, e) in expect.iter_mut().enumerate() {
                *e += i as i64 * (r + 1);
            }
        }
        for out in results {
            assert_eq!(out, expect, "config with {n} ranks");
        }
    }
}

#[test]
fn all_collectives_compose_in_one_program() {
    let n = 4;
    let results = run_ranks(WorldConfig::instant_nodes(n, 2), move |proc| {
        let comm = proc.world_comm();
        let rank = comm.rank();

        // bcast
        let mut buf = if rank == 1 {
            vec![3i32, 1, 4]
        } else {
            Vec::new()
        };
        comm.bcast(&mut buf, 3, 1).unwrap();
        assert_eq!(buf, vec![3, 1, 4]);

        // gather -> scatter inverse property
        let gathered = comm.gather(&[rank * 2, rank * 2 + 1], 0).unwrap();
        let scattered = comm.scatter(gathered.as_deref(), 2, 0).unwrap();
        assert_eq!(scattered, vec![rank * 2, rank * 2 + 1]);

        // allgather
        let all = comm.allgather(&[rank]).unwrap();
        assert_eq!(all, (0..n as i32).collect::<Vec<_>>());

        // alltoall (transpose)
        let data: Vec<i32> = (0..n as i32).map(|dst| rank * 10 + dst).collect();
        let transposed = comm.alltoall(&data, 1).unwrap();
        assert_eq!(
            transposed,
            (0..n as i32).map(|src| src * 10 + rank).collect::<Vec<_>>()
        );

        // reduce (max)
        let m = comm.reduce(&[rank], Op::Max, 2).unwrap();
        if rank == 2 {
            assert_eq!(m, Some(vec![n as i32 - 1]));
        } else {
            assert!(m.is_none());
        }

        // barrier between rounds
        comm.barrier().unwrap();
        true
    });
    assert!(results.iter().all(|&ok| ok));
}

#[test]
fn nonblocking_collectives_overlap_with_p2p() {
    let results = run_ranks(WorldConfig::instant(4), |proc| {
        let comm = proc.world_comm();
        let rank = comm.rank();
        // Start a collective, then do p2p traffic before completing it.
        let fut = comm.iallreduce(&[rank + 1], Op::Sum).unwrap();
        let peer = rank ^ 1;
        let r = comm.irecv::<u8>(100, peer, 5).unwrap();
        comm.isend(&[9u8; 100], peer, 5).unwrap();
        let (p2p, _) = r.wait();
        assert_eq!(p2p, vec![9u8; 100]);
        let (total, _) = fut.wait();
        total[0]
    });
    for v in results {
        assert_eq!(v, 10);
    }
}

#[test]
fn collectives_on_dup_do_not_interfere() {
    let results = run_ranks(WorldConfig::instant(3), |proc| {
        let comm = proc.world_comm();
        let dup = comm.dup().unwrap();
        assert_ne!(comm.context_id(), dup.context_id());
        // Interleave collectives on both communicators.
        let f1 = comm.iallreduce(&[1i32], Op::Sum).unwrap();
        let f2 = dup.iallreduce(&[10i32], Op::Sum).unwrap();
        let (a, _) = f1.wait();
        let (b, _) = f2.wait();
        (a[0], b[0])
    });
    for (a, b) in results {
        assert_eq!((a, b), (3, 30));
    }
}

#[test]
fn collectives_on_split_subgroups() {
    // Split 6 ranks into even/odd groups; each group reduces separately.
    let results = run_ranks(WorldConfig::instant(6), |proc| {
        let comm = proc.world_comm();
        let rank = comm.rank();
        let color = rank % 2;
        let sub = comm.split(color, rank).unwrap().expect("kept");
        assert_eq!(sub.size(), 3);
        // Ranks ordered by key=world rank.
        let out = sub.allreduce(&[rank], Op::Sum).unwrap();
        (color, out[0])
    });
    for (color, total) in results {
        let expect = if color == 0 { 2 + 4 } else { 1 + 3 + 5 };
        assert_eq!(total, expect);
    }
}

#[test]
fn split_with_undefined_color_excludes_rank() {
    let results = run_ranks(WorldConfig::instant(4), |proc| {
        let comm = proc.world_comm();
        let rank = comm.rank();
        let color = if rank == 3 { -1 } else { 0 };
        let sub = comm.split(color, 0).unwrap();
        match sub {
            Some(sub) => {
                assert_eq!(sub.size(), 3);
                let out = sub.allreduce(&[1i32], Op::Sum).unwrap();
                out[0]
            }
            None => {
                assert_eq!(rank, 3);
                -1
            }
        }
    });
    assert_eq!(results, vec![3, 3, 3, -1]);
}

#[test]
fn large_payload_collectives() {
    // Rendezvous-sized collective payloads exercise chunked transfers
    // inside schedules.
    let results = run_ranks(WorldConfig::instant(4), |proc| {
        let comm = proc.world_comm();
        let data = vec![proc.rank() as i64; 50_000]; // 400 KB
        comm.allreduce(&data, Op::Sum).unwrap()
    });
    for out in results {
        assert_eq!(out.len(), 50_000);
        assert!(out.iter().all(|&v| v == 6));
    }
}

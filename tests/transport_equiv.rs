//! Differential test: the MPI layer must behave identically over the
//! simulated fabric and over the real wire backends.
//!
//! The same workload — point-to-point traffic crossing all three message
//! modes (buffered, eager, rendezvous/pipeline) plus integer and float
//! allreduces — runs over Sim, loopback TCP, UDS, and the shared-memory
//! ring transport. For each transport
//! we record, per `(src, tag)` channel, the payloads in arrival order,
//! and the allreduce results. Everything must match bitwise: payloads,
//! per-channel match order, reduction results.

mod common;

use common::run_ranks;
use mpfa::mpi::protocol::ProtoConfig;
use mpfa::mpi::wire::WireMsg;
use mpfa::mpi::{Comm, Op, Proc, World, WorldConfig};
use mpfa::transport::{loopback_mesh, TransportKind, WireOpts};

const RANKS: usize = 3;
/// Messages per (src, dst, tag) channel.
const MSGS: usize = 6;
const TAGS: i32 = 2;
/// Sizes cycle through the three protocol modes under [`proto`].
const SIZES: [usize; 3] = [8, 1024, 40_000];

/// Thresholds that make every size in [`SIZES`] take a different mode:
/// 8 ≤ buffered_max, 1024 ≤ eager_max, 40 000 → rendezvous in 5 chunks.
fn proto() -> ProtoConfig {
    ProtoConfig {
        buffered_max: 64,
        eager_max: 4096,
        chunk: 8192,
        depth: 2,
    }
}

fn config() -> WorldConfig {
    WorldConfig {
        proto: proto(),
        ..WorldConfig::instant(RANKS)
    }
}

fn payload(src: i32, tag: i32, k: usize) -> Vec<u8> {
    let n = SIZES[k % SIZES.len()];
    (0..n)
        .map(|i| (src as usize * 31 + tag as usize * 17 + k * 7 + i) as u8)
        .collect()
}

/// One (src, tag) channel and the payloads that arrived on it, in
/// match order.
type Channel = ((i32, i32), Vec<Vec<u8>>);

/// What one rank observed: arrival payloads per (src, tag) channel in
/// match order, plus both allreduce results (floats as raw bits so the
/// comparison is exact).
#[derive(Debug, PartialEq, Eq)]
struct RankRecord {
    channels: Vec<Channel>,
    sum_i64: Vec<i64>,
    sum_f64_bits: Vec<u64>,
}

fn workload(comm: &Comm) -> RankRecord {
    let me = comm.rank();
    let size = comm.size() as i32;

    // Post every receive first (expected path for some, unexpected for
    // others depending on timing — both must preserve channel order).
    let mut recvs = Vec::new();
    for src in 0..size {
        if src == me {
            continue;
        }
        for tag in 0..TAGS {
            for k in 0..MSGS {
                recvs.push((
                    (src, tag),
                    comm.irecv::<u8>(64 * 1024, src, tag).unwrap(),
                    k,
                ));
            }
        }
    }

    let mut sends = Vec::new();
    for dst in 0..size {
        if dst == me {
            continue;
        }
        for tag in 0..TAGS {
            for k in 0..MSGS {
                sends.push(comm.isend_bytes(payload(me, tag, k), dst, tag).unwrap());
            }
        }
    }

    let mut channels: Vec<Channel> = Vec::new();
    for ((src, tag), rreq, _) in recvs {
        let (data, status) = rreq.wait();
        assert_eq!(status.source, src);
        assert_eq!(status.tag, tag);
        match channels.iter_mut().find(|(key, _)| *key == (src, tag)) {
            Some((_, v)) => v.push(data),
            None => channels.push(((src, tag), vec![data])),
        }
    }
    for s in sends {
        s.wait();
    }

    let ints: Vec<i64> = (0..8).map(|i| (me as i64 + 1) * (i + 1)).collect();
    let sum_i64 = comm.allreduce(&ints, Op::Sum).unwrap();
    let floats: Vec<f64> = (0..8)
        .map(|i| (me as f64 + 0.25) * 1.125_f64.powi(i))
        .collect();
    let sum_f64_bits = comm
        .allreduce(&floats, Op::Sum)
        .unwrap()
        .into_iter()
        .map(f64::to_bits)
        .collect();
    comm.barrier().unwrap();

    RankRecord {
        channels,
        sum_i64,
        sum_f64_bits,
    }
}

/// Run the workload over a loopback wire mesh, one OS thread per rank
/// (standing in for one OS process per rank, which `mpfarun` provides).
fn run_wire(kind: TransportKind) -> Vec<RankRecord> {
    let cfg = config();
    let mesh = loopback_mesh::<WireMsg>(kind, RANKS, cfg.max_vcis, WireOpts::default())
        .expect("loopback mesh");
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..RANKS)
            .map(|rank| {
                let cfg = WorldConfig {
                    transport: kind,
                    ..cfg.clone()
                };
                let port = mesh[rank].clone();
                s.spawn(move || {
                    let proc: Proc = World::init_with_transport(cfg, rank, port);
                    workload(&proc.world_comm())
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("rank thread panicked"))
            .collect()
    })
}

fn check_expected(records: &[RankRecord], what: &str) {
    for (rank, rec) in records.iter().enumerate() {
        // (RANKS-1) peers × TAGS channels, MSGS messages each, in order.
        assert_eq!(
            rec.channels.len(),
            (RANKS - 1) * TAGS as usize,
            "{what}: rank {rank} channel count"
        );
        for ((src, tag), msgs) in &rec.channels {
            assert_eq!(msgs.len(), MSGS, "{what}: rank {rank} ch ({src},{tag})");
            for (k, got) in msgs.iter().enumerate() {
                assert_eq!(
                    got,
                    &payload(*src, *tag, k),
                    "{what}: rank {rank} channel ({src},{tag}) message {k} \
                     out of order or corrupted"
                );
            }
        }
    }
}

#[test]
fn sim_and_tcp_agree() {
    let sim = run_ranks(config(), |p| workload(&p.world_comm()));
    let tcp = run_wire(TransportKind::Tcp);
    check_expected(&sim, "sim");
    check_expected(&tcp, "tcp");
    assert_eq!(sim, tcp, "sim and TCP worlds diverged");
}

#[cfg(unix)]
#[test]
fn sim_and_uds_agree() {
    let sim = run_ranks(config(), |p| workload(&p.world_comm()));
    let uds = run_wire(TransportKind::Uds);
    check_expected(&sim, "sim");
    check_expected(&uds, "uds");
    assert_eq!(sim, uds, "sim and UDS worlds diverged");
}

#[cfg(unix)]
#[test]
fn sim_and_shm_agree() {
    let sim = run_ranks(config(), |p| workload(&p.world_comm()));
    let shm = run_wire(TransportKind::Shm);
    check_expected(&sim, "sim");
    check_expected(&shm, "shm");
    assert_eq!(sim, shm, "sim and SHM worlds diverged");
}

/// What one rank's transport reports about the world after a kill
/// schedule: its dead-peer count, per-peer liveness, and whether a send
/// to the victim was refused.
#[derive(Debug, PartialEq, Eq)]
struct LivenessRecord {
    dead_peers: usize,
    alive: Vec<bool>,
    send_to_victim_failed: bool,
}

/// Apply the same kill schedule (mesh-kill rank `VICTIM`) to a mesh of
/// the given backend and record every rank's liveness view.
fn run_kill_schedule(kind: TransportKind) -> Vec<LivenessRecord> {
    use mpfa::mpi::wire::MsgHeader;
    use mpfa::transport::mesh_kill;

    const VICTIM: usize = 1;
    let eps_per_rank = 2;
    let mesh =
        mpfa::transport::loopback_mesh::<WireMsg>(kind, RANKS, eps_per_rank, WireOpts::default())
            .expect("mesh");
    // Pre-kill: everyone sees everyone alive.
    for (r, t) in mesh.iter().enumerate() {
        assert_eq!(t.dead_peers(), 0, "{kind:?}: rank {r} pre-kill");
        assert!((0..RANKS).all(|p| t.peer_alive(p)), "{kind:?}: rank {r}");
    }

    mesh_kill(&mesh, VICTIM);

    mesh.iter()
        .enumerate()
        .map(|(r, t)| {
            t.progress();
            // Survivors try to reach the victim (must be refused); the
            // victim itself does not self-send.
            let send_to_victim_failed = r != VICTIM && {
                let tx = t.send(
                    r * eps_per_rank,
                    VICTIM * eps_per_rank,
                    WireMsg::Eager {
                        hdr: MsgHeader {
                            context_id: 0,
                            src_rank: r as i32,
                            tag: 7,
                        },
                        data: vec![0xAB; 16].into(),
                    },
                    16,
                );
                tx.is_failed()
            };
            LivenessRecord {
                dead_peers: t.dead_peers(),
                alive: (0..RANKS).map(|p| t.peer_alive(p)).collect(),
                send_to_victim_failed,
            }
        })
        .collect()
}

/// Satellite of the resilience work: the failure *evidence* the detector
/// consumes must be identical across backends — same kill schedule, same
/// `dead_peers()` / `peer_alive()` / refused-send outcomes on every rank
/// (including the victim's own view, which never observes its own death).
#[test]
fn peer_death_liveness_agrees_across_backends() {
    const VICTIM: usize = 1;
    let sim = run_kill_schedule(TransportKind::Sim);
    let tcp = run_kill_schedule(TransportKind::Tcp);
    assert_eq!(sim, tcp, "sim and TCP liveness diverged");
    #[cfg(unix)]
    {
        let uds = run_kill_schedule(TransportKind::Uds);
        assert_eq!(sim, uds, "sim and UDS liveness diverged");
        // The shared-memory transport must report the same evidence: a
        // killed peer's ring is detected as dead (not spun on) and sends
        // toward it are refused.
        let shm = run_kill_schedule(TransportKind::Shm);
        assert_eq!(sim, shm, "sim and SHM liveness diverged");
    }
    // And the common view is the right one.
    for (r, rec) in sim.iter().enumerate() {
        if r == VICTIM {
            // A killed process does not observe its own death.
            assert_eq!(rec.dead_peers, 0, "victim's own view");
            continue;
        }
        assert_eq!(rec.dead_peers, 1, "rank {r}");
        assert!(rec.send_to_victim_failed, "rank {r}: send must be refused");
        for (p, alive) in rec.alive.iter().enumerate() {
            assert_eq!(*alive, p != VICTIM, "rank {r} view of {p}");
        }
    }
}

//! Acceptance test for the zero-copy shared-memory datapath: the number
//! of payload bytes memcpy'd (`bytes_copied`) must stay ~flat as the
//! payload grows, because on the SHM large path the payload is written
//! once by the injection itself (uncounted, like a socket write) and
//! received as a refcounted view into the peer's ring.
//!
//! The full path under test:
//! send: `Vec<u8>` → `MpfaBytes` (no copy) → `encoded_len`/`encode_into`
//!       straight into reserved ring space (the one injection write);
//! recv: ring view ≥ `VIEW_MIN` → `decode_bytes` slices the view →
//!       `RecvSlot::set_bytes` → `RecvBytesRequest::wait` hands the view
//!       to the application. Zero counted copies end to end.

#![cfg(unix)]

use mpfa::mpi::protocol::ProtoConfig;
use mpfa::mpi::wire::WireMsg;
use mpfa::mpi::{Proc, World, WorldConfig};
use mpfa::transport::{loopback_mesh, TransportKind, WireOpts};

const RANKS: usize = 2;
const PAYLOAD: usize = 1 << 20; // 1 MiB, rendezvous-sized under default proto
const ROUNDS: usize = 4;

fn pattern(round: usize) -> Vec<u8> {
    (0..PAYLOAD).map(|i| (i * 31 + round * 7) as u8).collect()
}

#[test]
fn bytes_copied_stays_flat_on_shm_large_path() {
    let cfg = WorldConfig {
        transport: TransportKind::Shm,
        proto: ProtoConfig::default(), // eager_max 64 KiB: 1 MiB is rendezvous-sized
        ..WorldConfig::instant(RANKS)
    };
    let mesh =
        loopback_mesh::<WireMsg>(TransportKind::Shm, RANKS, cfg.max_vcis, WireOpts::default())
            .expect("shm mesh");

    let counters = mpfa::obs::global_counters();
    let (copied_before, rndv_before) = {
        let s = counters.snapshot();
        (s.bytes_copied, s.rndv_started)
    };

    std::thread::scope(|s| {
        for (rank, port) in mesh.iter().enumerate() {
            let cfg = cfg.clone();
            let port = port.clone();
            s.spawn(move || {
                let proc: Proc = World::init_with_transport(cfg, rank, port);
                let comm = proc.world_comm();
                if rank == 0 {
                    for round in 0..ROUNDS {
                        comm.isend_bytes(pattern(round), 1, 5).unwrap().wait();
                    }
                } else {
                    for round in 0..ROUNDS {
                        let req = comm.irecv_bytes(2 * PAYLOAD, 0, 5).unwrap();
                        let (bytes, status) = req.wait();
                        assert_eq!(status.bytes, PAYLOAD);
                        assert_eq!(&bytes[..], &pattern(round)[..], "round {round} corrupted");
                        // The view must drop here to release its ring span
                        // before the next round fills the ring.
                    }
                }
                comm.barrier().unwrap();
            });
        }
    });

    let snap = counters.snapshot();
    let copied = snap.bytes_copied - copied_before;
    let moved = (ROUNDS * PAYLOAD) as u64;

    // The transport's eager hint must have promoted the rendezvous-sized
    // payloads to single zero-copy eager frames: no RTS was ever sent.
    assert_eq!(
        snap.rndv_started, rndv_before,
        "1 MiB payloads should ride the promoted eager path on SHM"
    );
    // ~Flat: the 4 MiB of payload crossed rank boundaries with only
    // incidental copying (small control frames below VIEW_MIN). Allow a
    // generous 64 KiB of incidentals — still 64x under the payload.
    assert!(
        copied < 64 * 1024,
        "datapath copied {copied} B while moving {moved} B — the zero-copy \
         path regressed"
    );
}

//! Concurrency stress tests for the combining engine lock: many threads
//! hammering `Stream::progress` / `try_progress` on ONE stream while
//! tasks complete and new tasks are injected. Every completion must be
//! observed exactly once and the pending count must settle to zero —
//! regardless of whether a caller swept the engine itself, was absorbed
//! by the lock holder (flat combining), or bounced off `try_progress`.
//!
//! Task deadlines run on the DST **virtual clock** (`mpfa::dst::
//! virtual_time`): the main thread advances time deterministically while
//! the workers hammer the lock, so a slow CI machine changes nothing —
//! there is no wall-clock window to miss.

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;

use mpfa::core::{wtime, AsyncPoll, AsyncThing, Stream};

/// Start `n` tasks that complete at staggered (virtual) deadlines within
/// `spread_s` seconds, each bumping `done` exactly once.
fn start_timed_tasks(stream: &Stream, n: usize, spread_s: f64, done: &Arc<AtomicUsize>) {
    for i in 0..n {
        let d = done.clone();
        let deadline = wtime() + spread_s * (i + 1) as f64 / n as f64;
        stream.async_start(move |_t: &mut AsyncThing| {
            if wtime() >= deadline {
                d.fetch_add(1, Ordering::Relaxed);
                AsyncPoll::Done
            } else {
                AsyncPoll::Pending
            }
        });
    }
}

#[test]
fn mixed_progress_and_try_progress_lose_no_completions() {
    let clk = mpfa::dst::virtual_time(0.0);
    let stream = Stream::create();
    let n = 256;
    let done = Arc::new(AtomicUsize::new(0));
    start_timed_tasks(&stream, n, 0.02, &done);
    assert_eq!(stream.pending_tasks(), n);

    std::thread::scope(|scope| {
        for worker in 0..8 {
            let stream = stream.clone();
            scope.spawn(move || {
                while stream.pending_tasks() > 0 {
                    if worker % 2 == 0 {
                        stream.progress();
                    } else {
                        // try_progress may bounce off the lock; that must
                        // only ever skip work, never lose it.
                        let _ = stream.try_progress();
                    }
                }
            });
        }
        // Walk virtual time across every deadline while the workers
        // fight over the engine; they exit once everything completed.
        while stream.pending_tasks() > 0 {
            clk.advance(1e-3);
            std::thread::yield_now();
        }
    });

    assert_eq!(done.load(Ordering::Relaxed), n, "completions lost");
    assert_eq!(stream.pending_tasks(), 0, "pending did not settle");
}

#[test]
fn injection_races_with_contended_pollers() {
    // Tasks are injected continuously while 4 threads fight over the
    // engine lock: the combining protocol must keep draining the inject
    // queue (a combined waiter's task was possibly added after the
    // holder's own drain). A fixed batch count (not a wall-clock window)
    // bounds the feeder, so machine speed changes contention, not
    // correctness conditions.
    let clk = mpfa::dst::virtual_time(0.0);
    let stream = Stream::create();
    let done = Arc::new(AtomicUsize::new(0));
    let stop_feeding = Arc::new(AtomicBool::new(false));
    let injected = Arc::new(AtomicUsize::new(0));

    std::thread::scope(|scope| {
        {
            let stream = stream.clone();
            let done = done.clone();
            let stop = stop_feeding.clone();
            let injected = injected.clone();
            scope.spawn(move || {
                for _ in 0..64 {
                    let batch = 16;
                    start_timed_tasks(&stream, batch, 0.001, &done);
                    injected.fetch_add(batch, Ordering::Relaxed);
                    std::thread::yield_now();
                }
                stop.store(true, Ordering::Release);
            });
        }
        for _ in 0..4 {
            let stream = stream.clone();
            let stop = stop_feeding.clone();
            scope.spawn(move || {
                while !stop.load(Ordering::Acquire) || stream.pending_tasks() > 0 {
                    stream.progress();
                }
            });
        }
        while !stop_feeding.load(Ordering::Acquire) || stream.pending_tasks() > 0 {
            clk.advance(5e-4);
            std::thread::yield_now();
        }
    });

    let total = injected.load(Ordering::Relaxed);
    assert!(total > 0, "feeder never ran");
    assert_eq!(done.load(Ordering::Relaxed), total, "completions lost");
    assert_eq!(stream.pending_tasks(), 0);
}

#[test]
fn combined_waiters_report_sweeps_that_ran_for_them() {
    // A stream whose sweeps always make progress (one self-rearming task):
    // every progress() return — direct, taken-over, or combined — must
    // still leave the stream functional, and total progress_calls must
    // cover at least every non-combined sweep. Smoke-checks the outcome
    // plumbing rather than exact counts (scheduling dependent).
    let clk = mpfa::dst::virtual_time(0.0);
    let stream = Stream::create();
    let stop = Arc::new(AtomicBool::new(false));
    {
        let stop = stop.clone();
        stream.async_start(move |_t: &mut AsyncThing| {
            if stop.load(Ordering::Acquire) {
                AsyncPoll::Done
            } else {
                AsyncPoll::Progress
            }
        });
    }
    let sweeps_observed = Arc::new(AtomicUsize::new(0));
    // One shared virtual deadline for every worker (computing it inside
    // each thread would race the advancing clock: a late starter's window
    // could outlive the main thread's advance loop and spin forever).
    let t_end = 0.02;
    std::thread::scope(|scope| {
        for _ in 0..4 {
            let stream = stream.clone();
            let sweeps = sweeps_observed.clone();
            scope.spawn(move || {
                // Virtual window: ends when the main thread has advanced
                // the clock far enough, not when a wall timer expires.
                while wtime() < t_end {
                    let out = stream.progress();
                    if out.made_progress() {
                        sweeps.fetch_add(1, Ordering::Relaxed);
                    }
                }
            });
        }
        while clk.now() < t_end {
            clk.advance(1e-3);
            std::thread::yield_now();
        }
    });
    stop.store(true, Ordering::Release);
    // The rearming task retires on its first post-stop poll; no timeout
    // needed (the clock is still frozen at whatever we advanced to).
    assert!(stream.drain(5.0));
    assert!(
        sweeps_observed.load(Ordering::Relaxed) > 0,
        "no caller ever observed progress"
    );
    assert!(stream.progress_calls() > 0);
}

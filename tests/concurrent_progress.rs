//! Concurrency stress tests for the combining engine lock: many threads
//! hammering `Stream::progress` / `try_progress` on ONE stream while
//! tasks complete and new tasks are injected. Every completion must be
//! observed exactly once and the pending count must settle to zero —
//! regardless of whether a caller swept the engine itself, was absorbed
//! by the lock holder (flat combining), or bounced off `try_progress`.

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;

use mpfa::core::{wtime, AsyncPoll, AsyncThing, Stream};

/// Start `n` tasks that complete at staggered deadlines within `spread_s`
/// seconds, each bumping `done` exactly once.
fn start_timed_tasks(stream: &Stream, n: usize, spread_s: f64, done: &Arc<AtomicUsize>) {
    for i in 0..n {
        let d = done.clone();
        let deadline = wtime() + spread_s * (i + 1) as f64 / n as f64;
        stream.async_start(move |_t: &mut AsyncThing| {
            if wtime() >= deadline {
                d.fetch_add(1, Ordering::Relaxed);
                AsyncPoll::Done
            } else {
                AsyncPoll::Pending
            }
        });
    }
}

#[test]
fn mixed_progress_and_try_progress_lose_no_completions() {
    let stream = Stream::create();
    let n = 256;
    let done = Arc::new(AtomicUsize::new(0));
    start_timed_tasks(&stream, n, 0.02, &done);
    assert_eq!(stream.pending_tasks(), n);

    std::thread::scope(|scope| {
        for worker in 0..8 {
            let stream = stream.clone();
            scope.spawn(move || {
                while stream.pending_tasks() > 0 {
                    if worker % 2 == 0 {
                        stream.progress();
                    } else {
                        // try_progress may bounce off the lock; that must
                        // only ever skip work, never lose it.
                        let _ = stream.try_progress();
                    }
                }
            });
        }
    });

    assert_eq!(done.load(Ordering::Relaxed), n, "completions lost");
    assert_eq!(stream.pending_tasks(), 0, "pending did not settle");
}

#[test]
fn injection_races_with_contended_pollers() {
    // Tasks are injected continuously while 4 threads fight over the
    // engine lock: the combining protocol must keep draining the inject
    // queue (a combined waiter's task was possibly added after the
    // holder's own drain).
    let stream = Stream::create();
    let done = Arc::new(AtomicUsize::new(0));
    let stop_feeding = Arc::new(AtomicBool::new(false));
    let injected = Arc::new(AtomicUsize::new(0));

    std::thread::scope(|scope| {
        {
            let stream = stream.clone();
            let done = done.clone();
            let stop = stop_feeding.clone();
            let injected = injected.clone();
            scope.spawn(move || {
                let t_end = wtime() + 0.05;
                while wtime() < t_end {
                    let batch = 16;
                    start_timed_tasks(&stream, batch, 0.001, &done);
                    injected.fetch_add(batch, Ordering::Relaxed);
                    std::thread::yield_now();
                }
                stop.store(true, Ordering::Release);
            });
        }
        for _ in 0..4 {
            let stream = stream.clone();
            let stop = stop_feeding.clone();
            scope.spawn(move || {
                while !stop.load(Ordering::Acquire) || stream.pending_tasks() > 0 {
                    stream.progress();
                }
            });
        }
    });

    let total = injected.load(Ordering::Relaxed);
    assert!(total > 0, "feeder never ran");
    assert_eq!(done.load(Ordering::Relaxed), total, "completions lost");
    assert_eq!(stream.pending_tasks(), 0);
}

#[test]
fn combined_waiters_report_sweeps_that_ran_for_them() {
    // A stream whose sweeps always make progress (one self-rearming task):
    // every progress() return — direct, taken-over, or combined — must
    // still leave the stream functional, and total progress_calls must
    // cover at least every non-combined sweep. Smoke-checks the outcome
    // plumbing rather than exact counts (scheduling dependent).
    let stream = Stream::create();
    let stop = Arc::new(AtomicBool::new(false));
    {
        let stop = stop.clone();
        stream.async_start(move |_t: &mut AsyncThing| {
            if stop.load(Ordering::Acquire) {
                AsyncPoll::Done
            } else {
                AsyncPoll::Progress
            }
        });
    }
    let sweeps_observed = Arc::new(AtomicUsize::new(0));
    std::thread::scope(|scope| {
        for _ in 0..4 {
            let stream = stream.clone();
            let stop = stop.clone();
            let sweeps = sweeps_observed.clone();
            scope.spawn(move || {
                let t_end = wtime() + 0.02;
                while wtime() < t_end {
                    let out = stream.progress();
                    if out.made_progress() {
                        sweeps.fetch_add(1, Ordering::Relaxed);
                    }
                }
                stop.store(true, Ordering::Release);
            });
        }
    });
    assert!(stream.drain(5.0));
    assert!(
        sweeps_observed.load(Ordering::Relaxed) > 0,
        "no caller ever observed progress"
    );
    assert!(stream.progress_calls() > 0);
}

//! Randomized-property tests of the tag-matching engine against a
//! reference model implementing the MPI matching rules directly. Cases
//! are generated from fixed seeds (see `common::Rng`) so every run is
//! deterministic.

mod common;

use common::Rng;
use mpfa::core::{Request, Status, Stream};
use mpfa::mpi::matching::{MatchState, PostedRecv, RecvSlot, Unexpected, ANY_SOURCE, ANY_TAG};

#[derive(Debug, Clone, Copy)]
enum OpKind {
    /// Post a receive for (src, tag); negative = wildcard.
    Post { src: i32, tag: i32 },
    /// An incoming eager message from (src, tag).
    Incoming { src: i32, tag: i32 },
}

fn random_op(rng: &mut Rng) -> OpKind {
    let wild_or = |rng: &mut Rng, wildcard: i32| {
        if rng.usize_in(0, 2) == 0 {
            wildcard
        } else {
            rng.i32_in(0, 4)
        }
    };
    if rng.usize_in(0, 2) == 0 {
        OpKind::Post {
            src: wild_or(rng, ANY_SOURCE),
            tag: wild_or(rng, ANY_TAG),
        }
    } else {
        OpKind::Incoming {
            src: rng.i32_in(0, 4),
            tag: rng.i32_in(0, 4),
        }
    }
}

/// Reference model: the MPI matching rules, executed naively.
#[derive(Default)]
struct Model {
    /// (post index, src, tag)
    posted: Vec<(usize, i32, i32)>,
    /// (incoming index, src, tag)
    unexpected: Vec<(usize, i32, i32)>,
    /// post index -> incoming index that satisfied it
    pairs: Vec<(usize, usize)>,
}

impl Model {
    fn matches(psrc: i32, ptag: i32, src: i32, tag: i32) -> bool {
        (psrc == ANY_SOURCE || psrc == src) && (ptag == ANY_TAG || ptag == tag)
    }

    fn post(&mut self, idx: usize, src: i32, tag: i32) {
        if let Some(pos) = self
            .unexpected
            .iter()
            .position(|&(_, s, t)| Self::matches(src, tag, s, t))
        {
            let (inc_idx, _, _) = self.unexpected.remove(pos);
            self.pairs.push((idx, inc_idx));
        } else {
            self.posted.push((idx, src, tag));
        }
    }

    fn incoming(&mut self, idx: usize, src: i32, tag: i32) {
        if let Some(pos) = self
            .posted
            .iter()
            .position(|&(_, ps, pt)| Self::matches(ps, pt, src, tag))
        {
            let (post_idx, _, _) = self.posted.remove(pos);
            self.pairs.push((post_idx, idx));
        } else {
            self.unexpected.push((idx, src, tag));
        }
    }
}

#[test]
fn matching_agrees_with_reference_model() {
    for seed in 0..128u64 {
        let mut rng = Rng::new(seed);
        let ops = rng.vec_in(0, 60, random_op);

        let stream = Stream::create();
        let mut real = MatchState::new();
        let mut model = Model::default();
        // Track each posted receive's request + slot so we can read which
        // incoming message (encoded in the payload) satisfied it.
        let mut posts: Vec<(usize, Request, RecvSlot)> = Vec::new();
        let mut post_count = 0usize;
        let mut incoming_count = 0usize;

        for op in &ops {
            match *op {
                OpKind::Post { src, tag } => {
                    let idx = post_count;
                    post_count += 1;
                    let (req, completer) = Request::pair(&stream);
                    let slot = RecvSlot::new();
                    let recv = PostedRecv {
                        src,
                        tag,
                        capacity: 1024,
                        slot: slot.clone(),
                        completer,
                    };
                    if let Some((recv, unexpected)) = real.post_recv(recv) {
                        // Satisfied from the unexpected queue.
                        if let Unexpected::Eager { data, .. } = unexpected {
                            recv.slot.set_bytes(data);
                        }
                        recv.completer.complete(Status::empty());
                    }
                    posts.push((idx, req, slot));
                    model.post(idx, src, tag);
                }
                OpKind::Incoming { src, tag } => {
                    let idx = incoming_count;
                    incoming_count += 1;
                    // Payload encodes the incoming index.
                    let data = (idx as u64).to_ne_bytes().to_vec();
                    match real.match_incoming(src, tag) {
                        Some(recv) => {
                            recv.slot.set(data);
                            recv.completer.complete(Status::empty());
                        }
                        None => real.push_unexpected(Unexpected::Eager {
                            src,
                            tag,
                            data: data.into(),
                        }),
                    }
                    model.incoming(idx, src, tag);
                }
            }
        }

        // Same queue depths.
        assert_eq!(real.posted_len(), model.posted.len(), "seed {seed}");
        assert_eq!(real.unexpected_len(), model.unexpected.len(), "seed {seed}");

        // Same pairing: every completed post carries the incoming index
        // the model paired it with.
        let mut completed = 0;
        for (post_idx, req, slot) in &posts {
            if req.is_complete() {
                completed += 1;
                let bytes = slot.take();
                assert_eq!(bytes.len(), 8);
                let inc_idx = u64::from_ne_bytes(bytes.try_into().unwrap()) as usize;
                assert!(
                    model.pairs.contains(&(*post_idx, inc_idx)),
                    "real paired post {post_idx} with incoming {inc_idx}, model did not \
                     (seed {seed})"
                );
            }
        }
        assert_eq!(completed, model.pairs.len(), "seed {seed}");
    }
}

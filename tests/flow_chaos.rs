//! Flow pipeline chaos: kill a rank mid-window and verify the full
//! story — the frontier stalls and the stall is doctor-visible naming
//! the dead holder, the survivors shrink and replay from the event
//! generator, and the union of outputs covers every window exactly
//! once (no losses, no duplicates).
//!
//! This is the in-process (simulated-fabric) substrate; CI's flow-smoke
//! job runs the same scenario over real TCP wires via
//! `mpfarun --kill-rank` against `examples/flow_window.rs`.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;

use mpfa::flow::window::{expected_output, union_emitted_mask, WindowCfg, WindowWorker};
use mpfa::flow::{FlowConfig, FlowContext};
use mpfa::mpi::{Op, Proc, World, WorldConfig};
use mpfa::obs::{diagnose_with_counters, DoctorConfig};
use mpfa::resil::DetectorConfig;

const RANKS: usize = 4;
const VICTIM: usize = 2;

fn cfg() -> WindowCfg {
    WindowCfg {
        windows: 16,
        events_per_window: 256,
        keys: 101,
        seed: 0xc4a05,
        batch: 128,
    }
}

/// One survivor's journey: run until the frontier stalls against the
/// dead rank, verify the stall is observable, then shrink + replay and
/// return the final outputs.
fn survivor_main(
    proc: Proc,
    victim_parked: &AtomicBool,
    saw_doctor_stall: &AtomicBool,
) -> BTreeMap<u64, (u64, u64)> {
    let cfg = cfg();
    proc.enable_resilience(DetectorConfig::default());
    let fx = FlowContext::install_with(
        &proc,
        FlowConfig {
            stall_after: 0.2,
            ..FlowConfig::default()
        },
    );
    let comm = proc.world_comm();
    let mut worker = WindowWorker::new(
        &fx,
        &comm,
        cfg,
        &vec![false; cfg.windows as usize],
        BTreeMap::new(),
    );

    // Drive until stall + failure are both observed.
    let counters = mpfa::obs::global_counters();
    let t0 = mpfa::core::wtime();
    let mut killed = false;
    loop {
        let running = worker.step();
        proc.default_stream().progress();
        if !killed && proc.rank() == (VICTIM + 1) % RANKS && victim_parked.load(Ordering::Acquire) {
            assert!(proc.world().chaos_kill(VICTIM));
            killed = true;
        }
        let stalled = counters.flow_stalled_holder.load(Ordering::Relaxed) != 0;
        let dead = counters.ranks_failed.load(Ordering::Relaxed) != 0;
        if stalled && dead {
            break;
        }
        assert!(running, "pipeline completed despite the kill");
        assert!(
            mpfa::core::wtime() - t0 < 60.0,
            "rank {}: frontier stall never detected",
            proc.rank()
        );
    }

    // The stall counters name a holder rank (in this in-process world
    // all ranks share one counter set, so the named holder is whichever
    // pinned flow re-asserted last — the victim directly, or a survivor
    // transitively wedged behind it; one rank per process, as deployed,
    // makes it unambiguous). The doctor must turn the stall into its
    // "capabilities held by a dead/idle rank" pathology either way,
    // since a rank really is dead.
    assert_ne!(counters.flow_stalled_holder.load(Ordering::Relaxed), 0);
    let snap = counters.snapshot();
    let report = diagnose_with_counters(
        &mpfa::obs::snapshot_all(),
        Some(&snap),
        &DoctorConfig::default(),
    );
    if report
        .criticals()
        .any(|d| d.title.contains("flow frontier stalled") && d.title.contains("dead/idle rank"))
    {
        saw_doctor_stall.store(true, Ordering::Release);
    }

    // Shrink + replay: abandon the wedged flows, agree on the skip
    // mask, rebuild over the survivors.
    comm.revoke().expect("revoke");
    assert!(comm.agree(true).expect("agree"));
    let shrunk = comm.shrink().expect("shrink");
    assert_eq!(shrunk.size(), RANKS - 1);
    fx.abandon_all();
    let skip = union_emitted_mask(&shrunk, worker.emitted(), cfg.windows);
    let mut replay = WindowWorker::new(&fx, &shrunk, cfg, &skip, worker.emitted().clone());
    // Wedge guard: a watchdog request that never completes. Each
    // `wait_timeout` quantum drives this rank's stream (what the old
    // hand-rolled loop's progress() call did) and meters the give-up
    // deadline on `wtime()` — virtual-clock aware under DST.
    let (watchdog, _wedge_hold) = mpfa::core::Request::pair(proc.default_stream());
    let mut quanta: u32 = 0;
    while replay.step() {
        assert!(
            watchdog
                .wait_timeout(std::time::Duration::from_micros(500))
                .is_none(),
            "watchdog request must never complete"
        );
        quanta += 1;
        assert!(quanta < 120_000, "rank {}: replay wedged", proc.rank());
    }
    assert!(replay.frontier_honest(), "emitted before frontier covered");

    // Global exactly-once count before the world goes away.
    let counts = shrunk
        .allreduce(&[replay.emitted().len() as i64], Op::Sum)
        .expect("count allreduce");
    assert_eq!(counts[0], cfg.windows as i64, "lost or duplicated windows");

    fx.shutdown();
    proc.finalize(2.0);
    replay.emitted().clone()
}

#[test]
fn kill_mid_window_stalls_then_replays_exactly_once() {
    let cfg = cfg();
    let procs = World::init(WorldConfig::instant(RANKS));
    let victim_parked = AtomicBool::new(false);
    let saw_doctor_stall = AtomicBool::new(false);
    let union: Mutex<BTreeMap<u64, (u64, u64)>> = Mutex::new(BTreeMap::new());
    let (victim_parked, saw_doctor_stall, union) = (&victim_parked, &saw_doctor_stall, &union);

    std::thread::scope(|s| {
        for proc in procs {
            s.spawn(move || {
                if proc.rank() == VICTIM {
                    // The victim joins the pipeline, produces part of
                    // its stream, then goes silent mid-window — its
                    // unreleased capabilities pin everyone's frontier.
                    proc.enable_resilience(DetectorConfig::default());
                    let fx = FlowContext::install(&proc);
                    let mut worker = WindowWorker::new(
                        &fx,
                        &proc.world_comm(),
                        cfg,
                        &vec![false; cfg.windows as usize],
                        BTreeMap::new(),
                    );
                    for _ in 0..4 {
                        worker.step();
                        proc.default_stream().progress();
                    }
                    victim_parked.store(true, Ordering::Release);
                    return;
                }
                let emitted = survivor_main(proc, victim_parked, saw_doctor_stall);
                let mut u = union.lock().unwrap();
                for (w, out) in emitted {
                    assert!(
                        u.insert(w, out).is_none(),
                        "window {w} emitted by two survivors"
                    );
                }
            });
        }
    });

    // Exactly-once, with correct values: the union of survivor outputs
    // is precisely the serially computed ground truth.
    assert_eq!(
        *union.lock().unwrap(),
        expected_output(&cfg),
        "survivor outputs diverge from ground truth"
    );
    assert!(
        saw_doctor_stall.load(Ordering::Acquire),
        "no survivor saw the doctor name the dead capability holder"
    );
}

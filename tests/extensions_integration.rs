//! End-to-end reproductions of the paper's example listings over real
//! runtime traffic: the extension APIs working together.

mod common;

use common::run_ranks;
use mpfa::core::sync::Mutex;
use mpfa::core::{
    grequest_start, wtime, AsyncPoll, CompletionCounter, GrequestOps, Status, Stream,
};
use mpfa::mpi::WorldConfig;
use std::sync::Arc;

#[test]
fn listing_1_2_fire_and_forget_tasks_drain_at_finalize() {
    let results = run_ranks(WorldConfig::instant(1), |proc| {
        let stream = proc.default_stream().clone();
        for i in 0..10 {
            let deadline = wtime() + 0.0002 * (i + 1) as f64;
            stream.async_start(move |_t| {
                if wtime() >= deadline {
                    AsyncPoll::Done
                } else {
                    AsyncPoll::Pending
                }
            });
        }
        // "MPI_Finalize will spin progress until all async tasks complete".
        assert!(proc.finalize(5.0));
        proc.default_stream().pending_tasks()
    });
    assert_eq!(results[0], 0);
}

#[test]
fn listing_1_3_counter_synchronization() {
    let stream = Stream::create();
    let counter = CompletionCounter::new(10);
    let stats = Arc::new(Mutex::new(mpfa::core::stats::LatencyStats::new()));
    for _ in 0..10 {
        let c = counter.clone();
        let s = stats.clone();
        let deadline = wtime() + 0.001;
        stream.async_start(move |_t| {
            let now = wtime();
            if now >= deadline {
                s.lock().add(now - deadline);
                c.done();
                AsyncPoll::Done
            } else {
                AsyncPoll::Pending
            }
        });
    }
    while !counter.is_zero() {
        stream.progress();
    }
    assert_eq!(stats.lock().len(), 10);
}

#[test]
fn listing_1_6_request_callbacks_over_real_messages() {
    let results = run_ranks(WorldConfig::instant(2), |proc| {
        let comm = proc.world_comm();
        let stream = comm.stream().clone();
        let peer = 1 - comm.rank();
        let notifier = mpfa::interop::CompletionNotifier::new(&stream);
        let fired = CompletionCounter::new(8);
        for tag in 0..8 {
            let recv = comm.irecv::<u64>(4, peer, tag).unwrap();
            let f = fired.clone();
            notifier.watch(recv.request(), move |status| {
                assert_eq!(status.bytes, 32);
                f.done();
            });
        }
        for tag in 0..8 {
            comm.isend(&[tag as u64; 4], peer, tag).unwrap();
        }
        while !fired.is_zero() {
            stream.progress();
        }
        true
    });
    assert!(results.iter().all(|&ok| ok));
}

#[test]
fn listing_1_7_grequest_wrapping_real_transfer() {
    // A generalized request tracking a two-message protocol implemented in
    // an async task: the caller just calls MPI_Wait on the grequest.
    let results = run_ranks(WorldConfig::instant(2), |proc| {
        let comm = proc.world_comm();
        let stream = comm.stream().clone();
        let peer = 1 - comm.rank();

        struct CountingOps(Arc<Mutex<u32>>);
        impl GrequestOps for CountingOps {
            fn query(&mut self) -> Status {
                *self.0.lock() += 1;
                Status {
                    source: -1,
                    tag: -1,
                    bytes: 64,
                    cancelled: false,
                }
            }
        }
        let queries = Arc::new(Mutex::new(0));
        let (greq_req, greq) = grequest_start(&stream, CountingOps(queries.clone()));

        // Two chained messages behind one grequest.
        let r1 = comm.irecv::<u8>(32, peer, 1).unwrap();
        comm.isend(&[1u8; 32], peer, 1).unwrap();
        let comm2 = comm.clone();
        let mut stage = 0;
        let mut r2: Option<mpfa::mpi::RecvRequest<u8>> = None;
        let mut greq = Some(greq);
        stream.async_start(move |_t| match stage {
            0 => {
                if !r1.is_complete() {
                    return AsyncPoll::Pending;
                }
                comm2.isend(&[2u8; 32], peer, 2).unwrap();
                r2 = Some(comm2.irecv::<u8>(32, peer, 2).unwrap());
                stage = 1;
                AsyncPoll::Progress
            }
            _ => {
                if !r2.as_ref().expect("stage 1").is_complete() {
                    return AsyncPoll::Pending;
                }
                greq.take().expect("once").complete();
                AsyncPoll::Done
            }
        });

        let status = greq_req.wait();
        assert_eq!(status.bytes, 64);
        assert_eq!(*queries.lock(), 1);
        true
    });
    assert!(results.iter().all(|&ok| ok));
}

#[test]
fn spawned_subtasks_chain_protocol_stages() {
    // MPIX_Async_spawn: a parent task spawns a follow-up stage.
    let stream = Stream::create();
    let log = Arc::new(Mutex::new(Vec::new()));
    let l1 = log.clone();
    let deadline = wtime() + 0.001;
    stream.async_start(move |thing| {
        if wtime() < deadline {
            return AsyncPoll::Pending;
        }
        l1.lock().push("stage1");
        let l2 = l1.clone();
        let deadline2 = wtime() + 0.001;
        thing.spawn(move |_t| {
            if wtime() < deadline2 {
                return AsyncPoll::Pending;
            }
            l2.lock().push("stage2");
            AsyncPoll::Done
        });
        AsyncPoll::Done
    });
    assert!(stream.drain(5.0));
    assert_eq!(&*log.lock(), &["stage1", "stage2"]);
}

#[test]
fn is_complete_from_poll_fn_never_recurses_progress() {
    // The Section 3.4 contract: is_complete inside poll_fn is safe, a
    // recursive progress would be poisoned.
    let results = run_ranks(WorldConfig::instant(2), |proc| {
        let comm = proc.world_comm();
        let stream = comm.stream().clone();
        let peer = 1 - comm.rank();
        let recv = comm.irecv::<i32>(1, peer, 3).unwrap();
        comm.isend(&[7i32], peer, 3).unwrap();
        let done = CompletionCounter::new(1);
        let d = done.clone();
        let req = recv.request();
        stream.async_start(move |_t| {
            if req.is_complete() {
                d.done();
                AsyncPoll::Done
            } else {
                AsyncPoll::Pending
            }
        });
        while !done.is_zero() {
            stream.progress();
        }
        assert_eq!(stream.poisoned_tasks(), 0);
        true
    });
    assert!(results.iter().all(|&ok| ok));
}

#[test]
fn grequest_complete_races_is_complete_across_threads() {
    // MPI_Grequest_complete on one thread vs MPI_Request_is_complete
    // spinners on others: every watcher must observe the completion and
    // read the queried status, every round, with no torn state.
    struct RoundOps(i32);
    impl GrequestOps for RoundOps {
        fn query(&mut self) -> Status {
            Status {
                source: 0,
                tag: self.0,
                bytes: 0,
                cancelled: false,
            }
        }
    }

    let stream = Stream::create();
    for round in 0..200i32 {
        let (req, greq) = grequest_start(&stream, RoundOps(round));
        let watchers: Vec<_> = (0..3)
            .map(|_| {
                let r = req.clone();
                std::thread::spawn(move || {
                    // Pure atomic polling — no progress, no locks.
                    while !r.is_complete() {
                        std::hint::spin_loop();
                    }
                    r.status().expect("complete request must publish status")
                })
            })
            .collect();
        if round % 2 == 0 {
            // Half the rounds give the watchers a head start so the
            // complete lands while they are mid-spin.
            std::thread::yield_now();
        }
        greq.complete();
        for w in watchers {
            let st = w.join().expect("watcher panicked");
            assert_eq!(st.tag, round);
            assert!(!st.cancelled);
        }
    }
}

#[test]
fn grequest_drop_before_complete_neither_leaks_nor_deadlocks() {
    // Abandoning the producer handle must cancel-complete the request —
    // blocked waiters wake with a cancelled status instead of hanging —
    // and must run free_fn exactly once per grequest (no leaked ops).
    use std::sync::atomic::{AtomicUsize, Ordering};

    struct TrackedOps {
        freed: Arc<AtomicUsize>,
        cancelled: Arc<AtomicUsize>,
    }
    impl GrequestOps for TrackedOps {
        fn on_free(&mut self) {
            self.freed.fetch_add(1, Ordering::Relaxed);
        }
        fn on_cancel(&mut self, _already_complete: bool) {
            self.cancelled.fetch_add(1, Ordering::Relaxed);
        }
    }

    const N: usize = 8;
    let stream = Stream::create();
    let freed = Arc::new(AtomicUsize::new(0));
    let cancelled = Arc::new(AtomicUsize::new(0));

    let mut greqs = Vec::new();
    let waiters: Vec<_> = (0..N)
        .map(|_| {
            let (req, greq) = grequest_start(
                &stream,
                TrackedOps {
                    freed: freed.clone(),
                    cancelled: cancelled.clone(),
                },
            );
            greqs.push(greq);
            std::thread::spawn(move || req.wait())
        })
        .collect();

    // No waiter can finish yet; dropping every handle must release all
    // of them promptly.
    drop(greqs);
    for w in waiters {
        let st = w.join().expect("waiter panicked");
        assert!(st.cancelled, "abandoned grequest must cancel its waiter");
    }
    assert_eq!(
        freed.load(Ordering::Relaxed),
        N,
        "free_fn must run per grequest"
    );
    assert_eq!(cancelled.load(Ordering::Relaxed), N);
    assert_eq!(
        stream.pending_tasks(),
        0,
        "nothing may linger on the stream"
    );
}

//! Cross-crate integration: point-to-point messaging through the full
//! stack (core streams → mpi protocols → simulated fabric), across every
//! message mode of the paper's Figure 1.

mod common;

use common::{run_ranks, Coop};
use mpfa::mpi::{WorldConfig, ANY_SOURCE, ANY_TAG};

#[test]
fn all_message_modes_roundtrip() {
    // Sizes chosen to hit buffered (<=256), eager (<=64K), rendezvous
    // single-chunk (<=chunk), and pipeline (multi-chunk) paths.
    let sizes = [0usize, 1, 256, 257, 4096, 65536, 65537, 300_000];
    let results = run_ranks(WorldConfig::instant(2), move |proc| {
        let comm = proc.world_comm();
        if comm.rank() == 0 {
            for (tag, n) in sizes.iter().enumerate() {
                let payload: Vec<u8> = (0..*n).map(|i| (i % 251) as u8).collect();
                comm.send(&payload, 1, tag as i32).unwrap();
            }
            true
        } else {
            for (tag, n) in sizes.iter().enumerate() {
                let (data, status) = comm.recv::<u8>(*n, 0, tag as i32).unwrap();
                assert_eq!(data.len(), *n, "size mismatch at tag {tag}");
                assert_eq!(status.bytes, *n);
                for (i, b) in data.iter().enumerate() {
                    assert_eq!(*b, (i % 251) as u8, "corrupt byte at {i}, size {n}");
                }
            }
            true
        }
    });
    assert!(results.iter().all(|&ok| ok));
}

#[test]
fn shmem_and_netmod_paths_deliver() {
    // 4 ranks, 2 per node: 0<->1 is shmem, 0<->2 is netmod.
    let results = run_ranks(WorldConfig::instant_nodes(4, 2), |proc| {
        let comm = proc.world_comm();
        let rank = comm.rank();
        let peer = rank ^ 1; // same node
        let far = (rank + 2) % 4; // other node
        let r1 = comm.irecv::<i32>(1, peer, 1).unwrap();
        let r2 = comm.irecv::<i32>(1, far, 2).unwrap();
        comm.isend(&[rank], peer, 1).unwrap();
        comm.isend(&[rank * 100], far, 2).unwrap();
        let (near, _) = r1.wait();
        let (farv, _) = r2.wait();
        (near[0], farv[0])
    });
    for (rank, (near, farv)) in results.iter().enumerate() {
        assert_eq!(*near, (rank ^ 1) as i32);
        assert_eq!(*farv, ((rank + 2) % 4 * 100) as i32);
    }
}

#[test]
fn wildcard_receive_collects_from_all() {
    let n = 6;
    let results = run_ranks(WorldConfig::instant(n), move |proc| {
        let comm = proc.world_comm();
        if comm.rank() == 0 {
            let mut seen = vec![false; n];
            for _ in 1..n {
                let (data, status) = comm.recv::<i64>(1, ANY_SOURCE, ANY_TAG).unwrap();
                assert_eq!(data[0], status.source as i64 * 7);
                assert_eq!(status.tag, status.source + 100);
                seen[status.source as usize] = true;
            }
            seen.iter().skip(1).all(|&s| s)
        } else {
            let r = comm.rank();
            comm.send(&[r as i64 * 7], 0, r + 100).unwrap();
            true
        }
    });
    assert!(results.iter().all(|&ok| ok));
}

#[test]
fn sendrecv_ring_rotation() {
    let n = 5;
    let results = run_ranks(WorldConfig::instant(n), move |proc| {
        let comm = proc.world_comm();
        let rank = comm.rank();
        let size = comm.size() as i32;
        let right = (rank + 1) % size;
        let left = (rank - 1).rem_euclid(size);
        let (got, status) = comm
            .sendrecv(&[rank as f64; 3], right, 9, 3, left, 9)
            .unwrap();
        assert_eq!(status.source, left);
        got[0] as i32
    });
    for (rank, got) in results.iter().enumerate() {
        assert_eq!(*got, (rank as i32 - 1).rem_euclid(5));
    }
}

#[test]
fn message_ordering_per_pair_is_fifo() {
    let results = run_ranks(WorldConfig::cluster(2), |proc| {
        let comm = proc.world_comm();
        if comm.rank() == 0 {
            // Mixed sizes so protocol modes interleave; order must hold.
            for i in 0..100i32 {
                let n = if i % 3 == 0 { 8 } else { 2000 };
                comm.isend(&vec![i; n], 1, 4).unwrap();
            }
            comm.barrier().unwrap();
            true
        } else {
            for i in 0..100i32 {
                let n = if i % 3 == 0 { 8 } else { 2000 };
                let (data, _) = comm.recv::<i32>(n, 0, 4).unwrap();
                assert_eq!(data[0], i, "FIFO violated at message {i}");
                assert_eq!(data.len(), n);
            }
            comm.barrier().unwrap();
            true
        }
    });
    assert!(results.iter().all(|&ok| ok));
}

#[test]
fn iprobe_reports_pending_messages() {
    let results = run_ranks(WorldConfig::instant(2), |proc| {
        let comm = proc.world_comm();
        if comm.rank() == 0 {
            comm.send(&[42i32; 4], 1, 11).unwrap();
            comm.barrier().unwrap();
            true
        } else {
            // Probe until the message is visible.
            let mut probe = None;
            for _ in 0..1_000_000 {
                probe = comm.iprobe(0, 11).unwrap();
                if probe.is_some() {
                    break;
                }
            }
            let (src, tag, bytes) = probe.expect("message never probed");
            assert_eq!((src, tag, bytes), (0, 11, 16));
            // Probing does not consume: the receive still matches.
            let (data, _) = comm.recv::<i32>(4, 0, 11).unwrap();
            assert_eq!(data, vec![42; 4]);
            comm.barrier().unwrap();
            true
        }
    });
    assert!(results.iter().all(|&ok| ok));
}

#[test]
fn coop_bidirectional_flood() {
    // Cooperative: both ranks exchange many messages simultaneously.
    let w = Coop::new(WorldConfig::instant(2));
    let comms = w.comms();
    let n = 64;
    let mut recvs = Vec::new();
    for i in 0..n {
        recvs.push((0, comms[0].irecv::<u32>(16, 1, i).unwrap()));
        recvs.push((1, comms[1].irecv::<u32>(16, 0, i).unwrap()));
    }
    for i in 0..n {
        comms[0].isend(&[i as u32; 16], 1, i).unwrap();
        comms[1].isend(&[i as u32 + 1000; 16], 0, i).unwrap();
    }
    w.drive(|| recvs.iter().all(|(_, r)| r.is_complete()), 1_000_000);
    for (owner, r) in recvs {
        let (data, status) = r.take();
        let expect = if owner == 0 {
            status.tag as u32 + 1000
        } else {
            status.tag as u32
        };
        assert_eq!(data, vec![expect; 16]);
    }
}

#[test]
fn invalid_arguments_are_rejected() {
    let results = run_ranks(WorldConfig::instant(2), |proc| {
        let comm = proc.world_comm();
        assert!(comm.isend(&[1i32], 5, 0).is_err()); // bad rank
        assert!(comm.isend(&[1i32], -1, 0).is_err());
        assert!(comm.isend(&[1i32], 1, -2).is_err()); // bad tag
        assert!(comm.irecv::<i32>(1, 7, 0).is_err());
        assert!(comm.irecv::<i32>(1, 0, -9).is_err());
        // Wildcards ARE valid for receives.
        assert!(comm.irecv::<i32>(1, ANY_SOURCE, ANY_TAG).is_ok());
        true
    });
    assert!(results.iter().all(|&ok| ok));
}

//! Cross-crate integration: MPIX Streams + stream communicators (VCIs),
//! the Section 3.1/3.2 machinery end-to-end.

mod common;

use common::run_ranks;
use mpfa::core::{Stream, StreamHints, SubsystemClass};
use mpfa::mpi::{Op, WorldConfig};

#[test]
fn stream_comm_carries_traffic_on_its_own_stream() {
    let results = run_ranks(WorldConfig::instant(2), |proc| {
        let comm = proc.world_comm();
        let user_stream = Stream::with_hints(StreamHints::new().name("user"));
        let scomm = comm.with_stream(&user_stream).unwrap();
        assert_eq!(scomm.stream().id(), user_stream.id());
        assert_ne!(scomm.stream().id(), proc.default_stream().id());
        // Hooks were registered on the user stream.
        assert_eq!(user_stream.hook_count(), 4);

        // Traffic flows entirely via the user stream's progress.
        if scomm.rank() == 0 {
            scomm.send(&[5i32; 8], 1, 1).unwrap();
        } else {
            let (data, _) = scomm.recv::<i32>(8, 0, 1).unwrap();
            assert_eq!(data, vec![5; 8]);
        }
        true
    });
    assert!(results.iter().all(|&ok| ok));
}

#[test]
fn default_stream_progress_does_not_drive_stream_comm() {
    // A message on a stream communicator must NOT complete while only the
    // default stream progresses (separate VCIs, separate hooks).
    let results = run_ranks(WorldConfig::instant(2), |proc| {
        let comm = proc.world_comm();
        let user_stream = Stream::create();
        let scomm = comm.with_stream(&user_stream).unwrap();
        if scomm.rank() == 0 {
            let req = scomm.isend(&vec![1u8; 100_000], 1, 1).unwrap(); // rendezvous
                                                                       // Progress ONLY the default stream: handshake cannot advance
                                                                       // on rank 0's side.
            for _ in 0..5000 {
                proc.default_stream().progress();
            }
            assert!(
                !req.is_complete(),
                "stream-comm traffic leaked onto default stream"
            );
            // Now progress the right stream.
            while !req.is_complete() {
                user_stream.progress();
            }
        } else {
            let recv = scomm.irecv::<u8>(100_000, 0, 1).unwrap();
            while !recv.is_complete() {
                user_stream.progress();
            }
            assert_eq!(recv.take().0.len(), 100_000);
        }
        true
    });
    assert!(results.iter().all(|&ok| ok));
}

#[test]
fn concurrent_traffic_on_default_and_stream_comms() {
    let results = run_ranks(WorldConfig::instant(2), |proc| {
        let comm = proc.world_comm();
        let user_stream = Stream::create();
        let scomm = comm.with_stream(&user_stream).unwrap();
        let peer = 1 - comm.rank();

        // In-flight on both communicators simultaneously.
        let r_world = comm.irecv::<i32>(4, peer, 1).unwrap();
        let r_stream = scomm.irecv::<i32>(4, peer, 1).unwrap();
        comm.isend(&[1i32; 4], peer, 1).unwrap();
        scomm.isend(&[2i32; 4], peer, 1).unwrap();

        // Drive both streams until both complete.
        while !(r_world.is_complete() && r_stream.is_complete()) {
            proc.default_stream().progress();
            user_stream.progress();
        }
        let (w, _) = r_world.take();
        let (s, _) = r_stream.take();
        assert_eq!(w, vec![1; 4]);
        assert_eq!(s, vec![2; 4]);
        true
    });
    assert!(results.iter().all(|&ok| ok));
}

#[test]
fn collectives_work_on_stream_comms() {
    let results = run_ranks(WorldConfig::instant(4), |proc| {
        let comm = proc.world_comm();
        let user_stream = Stream::create();
        let scomm = comm.with_stream(&user_stream).unwrap();
        let out = scomm.allreduce(&[scomm.rank() + 1], Op::Sum).unwrap();
        out[0]
    });
    for v in results {
        assert_eq!(v, 10);
    }
}

#[test]
fn vci_exhaustion_surfaces_as_error() {
    let mut cfg = WorldConfig::instant(2);
    cfg.max_vcis = 3; // VCI 0 + two stream comms
    let results = run_ranks(cfg, |proc| {
        let comm = proc.world_comm();
        let s1 = Stream::create();
        let s2 = Stream::create();
        let s3 = Stream::create();
        assert!(comm.with_stream(&s1).is_ok());
        assert!(comm.with_stream(&s2).is_ok());
        comm.with_stream(&s3).is_err()
    });
    assert!(results.iter().all(|&exhausted| exhausted));
}

#[test]
fn stream_hints_skip_netmod_class() {
    // A stream hinted to skip netmod never polls it — messages on a comm
    // bound to that stream would starve on the net path, so use it only
    // for local tasks (the paper's §3.2 scenario: latency-sensitive
    // streams decouple from inter-node progress).
    let stream = Stream::with_hints(StreamHints::new().skip(SubsystemClass::Netmod));
    use mpfa::core::ProgressHook;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Arc;
    struct Probe(Arc<AtomicU64>, SubsystemClass);
    impl ProgressHook for Probe {
        fn name(&self) -> &str {
            "probe"
        }
        fn class(&self) -> SubsystemClass {
            self.1
        }
        fn poll(&self) -> bool {
            self.0.fetch_add(1, Ordering::Relaxed);
            false
        }
    }
    let net = Arc::new(AtomicU64::new(0));
    let shm = Arc::new(AtomicU64::new(0));
    stream.register_hook(Probe(net.clone(), SubsystemClass::Netmod));
    stream.register_hook(Probe(shm.clone(), SubsystemClass::Shmem));
    for _ in 0..100 {
        stream.progress();
    }
    assert_eq!(net.load(Ordering::Relaxed), 0);
    assert_eq!(shm.load(Ordering::Relaxed), 100);
}

#[test]
fn dup_of_stream_comm_inherits_vci() {
    let results = run_ranks(WorldConfig::instant(2), |proc| {
        let comm = proc.world_comm();
        let user_stream = Stream::create();
        let scomm = comm.with_stream(&user_stream).unwrap();
        let dup = scomm.dup().unwrap();
        // Same stream (same VCI) as the parent stream-comm.
        assert_eq!(dup.stream().id(), user_stream.id());
        // And it carries traffic.
        if dup.rank() == 0 {
            dup.send(&[1u8], 1, 0).unwrap();
        } else {
            let (d, _) = dup.recv::<u8>(1, 0, 0).unwrap();
            assert_eq!(d, vec![1]);
        }
        true
    });
    assert!(results.iter().all(|&ok| ok));
}

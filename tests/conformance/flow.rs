//! mpfa-flow frontier invariants under the DST harness.
//!
//! The frontier's two contracts — **exact** (a completed probe at `t`
//! really means no record below `t` can ever arrive) and **monotone**
//! (it never moves backwards) — are ordering properties, so they run
//! under seeded schedule exploration: every test here holds for *every
//! schedule tried*, and the planted-bug test proves the explorer can
//! actually break a flow scenario that bakes in one ordering.

use std::sync::{Arc, Mutex};

use mpfa::dst::{check, explore, fixtures, seeds, Sim, SimConfig};
use mpfa::flow::{FlowContext, TS_CLOSED};

/// Install a flow engine on every simulated rank.
fn contexts(sim: &Sim) -> Vec<FlowContext> {
    sim.procs().iter().map(FlowContext::install).collect()
}

/// The core safety property, fuzzed: the frontier at every rank is
/// monotone, and no rank ever receives a record at or below a timestamp
/// its frontier has passed — under every explored schedule of a
/// three-rank scatter with staggered capability advances.
#[test]
fn frontier_is_monotone_and_never_passed_by_records() {
    check("conf_flow_monotone", &SimConfig::ranks(3), 24, |sim| {
        let fxs = contexts(sim);
        let comms = sim.world_comms();
        let flows: Vec<_> = fxs
            .iter()
            .zip(&comms)
            .map(|(fx, c)| fx.create::<u64>(c))
            .collect();

        // Rank 1 and 2 each scatter records at climbing timestamps to
        // both other ranks, advancing capabilities between batches.
        for (r, ts) in [(1usize, 0u64), (2, 0)] {
            let tx = &flows[r].0;
            tx.send((r + 1) % 3, ts + 2, &(r as u64)).unwrap();
            tx.send((r + 2) % 3, ts + 4, &(r as u64 + 10)).unwrap();
            tx.flush().unwrap();
            tx.advance_to(6).unwrap();
        }
        flows[0].0.close().unwrap();

        // Observe rank 0 under the explored schedule: sample frontier
        // and drain records after every step, asserting both contracts.
        let mut last_frontier = 0u64;
        let rx0 = &flows[0].1;
        assert!(
            sim.run_until(|| {
                let f = rx0.frontier();
                assert!(
                    f >= last_frontier,
                    "frontier regressed {last_frontier} -> {f}"
                );
                while let Some((ts, _)) = rx0.try_recv() {
                    assert!(
                        ts >= last_frontier,
                        "record at t={ts} observed after frontier passed {last_frontier}"
                    );
                }
                last_frontier = f;
                f >= 6
            }),
            "frontier never reached the advanced capabilities"
        );

        // Second wave under the moved frontier, then close everything.
        for r in [1usize, 2] {
            let tx = &flows[r].0;
            tx.send(0, 8, &99).unwrap();
            tx.flush().unwrap();
            tx.close().unwrap();
        }
        assert!(
            sim.run_until(|| {
                while let Some((ts, _)) = rx0.try_recv() {
                    assert!(ts >= last_frontier, "late record behind the frontier");
                }
                last_frontier = last_frontier.max(rx0.frontier());
                rx0.frontier() == TS_CLOSED
            }),
            "flow never closed"
        );
        for fx in &fxs {
            fx.shutdown();
        }
    });
}

/// Probe exactness, fuzzed: a `frontier_probe(t)` that completes means
/// every record below `t` was already consumable — emission gated on a
/// probe can never race ahead of its data, under any explored schedule.
#[test]
fn probes_never_complete_before_covered_records_arrive() {
    check("conf_flow_probe_exact", &SimConfig::ranks(2), 24, |sim| {
        let fxs = contexts(sim);
        let comms = sim.world_comms();
        let (tx0, rx0) = fxs[0].create::<u64>(&comms[0]);
        let (tx1, _rx1) = fxs[1].create::<u64>(&comms[1]);

        let got = Arc::new(Mutex::new(Vec::<u64>::new()));
        let emitted = Arc::new(Mutex::new(false));
        tx0.close().unwrap();

        // Rank 1 sends a record at t=4, then promises nothing below 10.
        tx1.send(0, 4, &44).unwrap();
        tx1.flush().unwrap();
        tx1.advance_to(10).unwrap();

        let probe = rx0.frontier_probe(10);
        {
            let emitted = emitted.clone();
            probe.on_complete(move |res| {
                res.expect("probe failed");
                *emitted.lock().unwrap() = true;
            });
        }

        let watch_got = got.clone();
        let watch_emitted = emitted.clone();
        assert!(
            sim.run_until(|| {
                // The invariant: the probe (and its continuation) may
                // only complete once the t=4 record is out of flight.
                let e = *watch_emitted.lock().unwrap();
                let mut g = watch_got.lock().unwrap();
                if e {
                    assert_eq!(
                        g.as_slice(),
                        &[44],
                        "probe at t=10 completed before the t=4 record was consumed"
                    );
                }
                while let Some((_, v)) = rx0.try_recv() {
                    g.push(v);
                }
                e
            }),
            "probe never completed"
        );
        assert!(probe.is_complete());
        assert!(rx0.frontier() >= 10);

        tx1.close().unwrap();
        assert!(sim.run_until(|| rx0.frontier() == TS_CLOSED));
        for fx in &fxs {
            fx.shutdown();
        }
    });
}

/// Replay contract for flow scenarios: the same seed drives the whole
/// progress-exchange (gossip arrivals, poll orders, callback firing)
/// byte-identically.
#[test]
fn flow_schedule_traces_replay_byte_identically() {
    let cfg = SimConfig::ranks(3);
    for seed in seeds(0xF10F, 4) {
        let run = || {
            let mut sim = Sim::new(cfg.with_seed(seed));
            let fxs = contexts(&sim);
            let comms = sim.world_comms();
            let flows: Vec<_> = fxs
                .iter()
                .zip(&comms)
                .map(|(fx, c)| fx.create::<u64>(c))
                .collect();
            for (r, (tx, _)) in flows.iter().enumerate() {
                tx.send((r + 1) % 3, 1, &(r as u64)).unwrap();
                tx.flush().unwrap();
                tx.close().unwrap();
            }
            let receivers: Vec<_> = flows.iter().map(|(_, rx)| rx.clone()).collect();
            assert!(
                sim.run_until(|| {
                    receivers.iter().all(|rx| {
                        while rx.try_recv().is_some() {}
                        rx.frontier() == TS_CLOSED
                    })
                }),
                "ring flow never closed"
            );
            for fx in &fxs {
                fx.shutdown();
            }
            let trace = sim.trace_string();
            assert!(sim.shutdown(), "seed {seed} failed to drain");
            trace
        };
        let first = run();
        let second = run();
        assert!(
            first == second,
            "seed {seed} diverged between flow runs:\n--- run 1 ---\n{first}\n--- run 2 ---\n{second}"
        );
    }
}

/// The explorer must catch the planted flow bug (a baked-in cross-flow
/// frontier-callback order) within 64 seeds, and the failing seed must
/// reproduce — proving schedule exploration reaches the flow
/// progress-exchange, not just the p2p layer.
#[test]
fn explorer_catches_planted_frontier_bug_within_64_seeds() {
    let cfg = SimConfig::ranks(3);
    let failure = explore(
        &cfg,
        seeds(0xBADF10, 64),
        fixtures::planted_frontier_regression_bug,
    )
    .expect_err("planted frontier bug escaped 64 schedules");
    assert!(
        failure.message.contains("frontier callbacks fired as"),
        "unexpected failure mode: {}",
        failure.message
    );
    let replay = explore(
        &cfg,
        [failure.seed],
        fixtures::planted_frontier_regression_bug,
    )
    .expect_err("failing seed did not reproduce");
    assert_eq!(replay.message, failure.message);
    assert_eq!(
        replay.trace, failure.trace,
        "replay trace must be identical"
    );
}

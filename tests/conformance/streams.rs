//! Stream isolation (the paper's core claim: progress is *targeted*)
//! under explored schedules.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use mpfa::core::{AsyncPoll, Stream};
use mpfa::dst::{check, SimConfig};

/// Tasks on a private stream are never polled by other streams'
/// progress: the whole simulation hammers the default streams, and the
/// private task's poll count stays zero until *its* stream is driven.
#[test]
fn private_stream_tasks_are_untouched_by_default_progress() {
    check("conf_stream_isolation", &SimConfig::ranks(2), 24, |sim| {
        let private = Stream::create();
        let polls = Arc::new(AtomicU64::new(0));
        let seen = polls.clone();
        private.async_start(move |_t| {
            seen.fetch_add(1, Ordering::Relaxed);
            AsyncPoll::Pending
        });

        // Real traffic on the default streams, driven by the schedule.
        let comms = sim.world_comms();
        let recv = comms[1].irecv::<u32>(1, 0, 8).unwrap();
        let send = comms[0].isend(&[80u32], 1, 8).unwrap();
        let req = recv.request();
        assert!(sim.run_until(|| send.is_complete() && req.is_complete()));
        assert_eq!(recv.take().0, vec![80]);

        assert_eq!(
            polls.load(Ordering::Relaxed),
            0,
            "default-stream progress leaked into a private stream"
        );

        // Targeted progress reaches exactly that task.
        private.progress();
        assert_eq!(polls.load(Ordering::Relaxed), 1);
        private.progress();
        assert_eq!(polls.load(Ordering::Relaxed), 2);
    });
}

/// A stalled private stream cannot impede default-stream communication:
/// messages flow while an unpolled forever-pending task sits elsewhere.
#[test]
fn stalled_private_stream_does_not_block_traffic() {
    check("conf_stream_stall", &SimConfig::ranks(2), 16, |sim| {
        let stalled = Stream::create();
        stalled.async_start(|_t| AsyncPoll::Pending);

        let comms = sim.world_comms();
        for round in 0..3u32 {
            let recv = comms[0].irecv::<u32>(1, 1, 1).unwrap();
            let send = comms[1].isend(&[round], 0, 1).unwrap();
            let req = recv.request();
            assert!(
                sim.run_until(|| send.is_complete() && req.is_complete()),
                "round {round} stalled"
            );
            assert_eq!(recv.take().0, vec![round]);
        }
        assert_eq!(
            stalled.pending_tasks(),
            1,
            "the stalled task must still exist"
        );
    });
}

/// Per-rank default streams progress independently: the per-stream sweep
/// counters move only for the ranks the schedule actually drove.
#[test]
fn progress_is_per_stream_not_global() {
    check("conf_stream_targeted", &SimConfig::ranks(2), 16, |sim| {
        let s0 = sim.proc(0).default_stream().clone();
        let s1 = sim.proc(1).default_stream().clone();
        let (c0, c1) = (s0.progress_calls(), s1.progress_calls());
        // Drive rank 0's stream directly — rank 1's counter must not move.
        s0.progress();
        s0.progress();
        assert_eq!(s0.progress_calls(), c0 + 2);
        assert_eq!(s1.progress_calls(), c1);
    });
}

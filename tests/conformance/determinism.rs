//! The harness's own contract: a run is a pure function of the seed.

use mpfa::dst::{explore, fixtures, seeds, Sim, SimConfig};

/// The acceptance criterion for the whole subsystem: the same seed must
/// produce a byte-identical schedule trace across independent runs.
#[test]
fn same_seed_produces_byte_identical_traces() {
    let cfg = SimConfig::ranks(3);
    for seed in seeds(0xD57, 4) {
        let run = || {
            let mut sim = Sim::new(cfg.with_seed(seed));
            fixtures::pingpong(&mut sim);
            let trace = sim.trace_string();
            assert!(sim.shutdown(), "seed {seed} failed to drain");
            trace
        };
        let first = run();
        let second = run();
        assert!(
            first == second,
            "seed {seed} diverged between runs:\n--- run 1 ---\n{first}\n--- run 2 ---\n{second}"
        );
        assert!(first.starts_with(&format!("dst trace seed={seed}")));
    }
}

/// Different seeds must actually explore different schedules — a
/// controller that ignores its seed would pass every determinism check
/// while testing nothing.
#[test]
fn different_seeds_produce_different_schedules() {
    let cfg = SimConfig::ranks(3);
    let traces: Vec<String> = seeds(0xD58, 4)
        .into_iter()
        .map(|seed| {
            let mut sim = Sim::new(cfg.with_seed(seed));
            fixtures::pingpong(&mut sim);
            let t = sim.trace_string();
            sim.shutdown();
            t
        })
        .collect();
    let mut distinct = traces.clone();
    distinct.sort();
    distinct.dedup();
    assert!(
        distinct.len() > 1,
        "4 seeds produced identical schedules — the seed is not reaching the controller"
    );
}

/// The planted ordering bug (a wildcard receive asserting a specific
/// source) must be caught quickly, and the failing seed must reproduce.
/// This is the "can the explorer actually find schedule bugs?" check at
/// the integration level; the unit-level twin lives in `mpfa-dst`.
#[test]
fn explorer_catches_planted_ordering_bug_within_64_seeds() {
    let cfg = SimConfig::ranks(3);
    let failure = explore(
        &cfg,
        seeds(0xBAD5EED, 64),
        fixtures::planted_wildcard_order_bug,
    )
    .expect_err("planted bug escaped 64 schedules");
    let replay = explore(&cfg, [failure.seed], fixtures::planted_wildcard_order_bug)
        .expect_err("failing seed did not reproduce");
    assert_eq!(replay.message, failure.message);
    assert_eq!(
        replay.trace, failure.trace,
        "replay trace must be identical"
    );
}

/// Schedule decisions are mirrored into the observability event rings,
/// so Chrome-trace exports interleave them with runtime events.
#[cfg(feature = "obs")]
#[test]
fn dst_steps_land_in_the_obs_event_ring() {
    let cfg = SimConfig::ranks(2);
    let seed = 0xE0B5;
    let mut sim = Sim::new(cfg.with_seed(seed));
    fixtures::pingpong(&mut sim);
    sim.shutdown();
    drop(sim);
    let steps: Vec<mpfa::obs::Event> = mpfa::obs::snapshot_all()
        .iter()
        .flat_map(|s| s.events.iter().cloned())
        .filter(|e| matches!(e.kind, mpfa::obs::EventKind::DstStep { seed: s, .. } if s == seed))
        .collect();
    assert!(!steps.is_empty(), "no DstStep events recorded");
}

//! Persistent & partitioned semantics under the DST harness.
//!
//! Persistent rounds are slot-addressed — they bypass the tag matcher —
//! so their ordering guarantees (per-generation delivery, partition
//! readiness feeding the wire in any order) must be re-proven under
//! explored schedules rather than inherited from the matcher's
//! conformance shard. The planted-bug test closes the loop on slot
//! *invalidation*: the explorer must catch a scenario that wrongly
//! assumes a pre-matched slot survives a communicator revoke.

use mpfa::dst::{check, explore, fixtures, seeds, SimConfig};
use mpfa::mpi::DetectorConfig;

/// Every re-fired round delivers its own generation's payload, intact
/// and in order, under every explored schedule — including rounds the
/// schedule lets pile up behind a slow receiver arm (the slot's pending
/// queue, not the matcher, is what preserves order).
#[test]
fn refired_rounds_deliver_generation_payloads_in_order() {
    check("conf_persist_refire", &SimConfig::ranks(2), 24, |sim| {
        let comms = sim.world_comms();
        let mut ps = comms[0]
            .send_init_bytes(Vec::new(), 1, 3)
            .expect("send_init");
        let mut pr = comms[1].recv_init_bytes(2048, 0, 3).expect("recv_init");
        for round in 0..5u8 {
            // Distinct bytes *and* length per generation, so a stale or
            // reordered round can't masquerade as the right one.
            let payload = vec![round ^ 0x5A; 64 + round as usize * 173];
            ps.set_payload(payload.clone());
            pr.start().expect("arm");
            let send = ps.start().expect("fire");
            let recv = pr.request().expect("armed");
            assert!(
                sim.run_until(|| send.is_complete() && recv.is_complete()),
                "round {round} wedged"
            );
            let (data, status) = pr.wait().expect("round");
            assert_eq!(status.bytes, payload.len(), "round {round} length");
            assert_eq!(&data[..], &payload[..], "round {round} bytes diverged");
        }
    });
}

/// Partitioned rounds complete with intact per-partition data whatever
/// order the schedule interleaves `pready` calls with wire progress —
/// here partitions are marked ready in *reverse* index order, one per
/// schedule step, while the transfer drains.
#[test]
fn partitioned_round_survives_any_pready_schedule() {
    check("conf_persist_partition", &SimConfig::ranks(2), 16, |sim| {
        const PARTS: usize = 6;
        const PART_BYTES: usize = 512;
        let mut payload = vec![0u8; PARTS * PART_BYTES];
        for (p, chunk) in payload.chunks_mut(PART_BYTES).enumerate() {
            chunk.fill(p as u8 + 1);
        }
        let comms = sim.world_comms();
        let mut ps = comms[0]
            .psend_init(payload.clone(), PARTS, 1, 4)
            .expect("psend_init");
        let mut pr = comms[1]
            .precv_init(PARTS * PART_BYTES, PARTS, 0, 4)
            .expect("precv_init");
        pr.start().expect("arm");
        let send = ps.start().expect("start");
        let mut next = PARTS;
        assert!(
            sim.run_until(|| {
                // One partition per schedule step, highest index first.
                if next > 0 {
                    next -= 1;
                    ps.pready(next).expect("pready");
                }
                send.is_complete() && pr.is_complete()
            }),
            "partitioned round wedged"
        );
        for p in 0..PARTS {
            assert!(pr.parrived(p).expect("parrived"), "partition {p} unarrived");
        }
        let (data, status) = pr.wait().expect("round");
        assert_eq!(status.bytes, payload.len());
        assert_eq!(&data[..], &payload[..], "partitioned bytes diverged");
    });
}

/// The explorer must catch the planted stale-slot bug — a scenario that
/// assumes a pre-matched slot survives a communicator revoke — within
/// 64 seeds, and the failing seed must replay byte-identically.
#[test]
fn explorer_catches_planted_stale_slot_bug_within_64_seeds() {
    let cfg = SimConfig {
        resilience: Some(DetectorConfig { quiet_period: 1e9 }),
        ..SimConfig::ranks(2)
    };
    let failure = explore(
        &cfg,
        seeds(0x57A1E, 64),
        fixtures::planted_stale_persist_slot_bug,
    )
    .expect_err("planted stale-slot bug escaped 64 schedules");
    assert!(
        failure.message.contains("stale persistent slot"),
        "unexpected failure mode: {}",
        failure.message
    );
    let replay = explore(
        &cfg,
        [failure.seed],
        fixtures::planted_stale_persist_slot_bug,
    )
    .expect_err("failing seed did not reproduce");
    assert_eq!(replay.message, failure.message);
    assert_eq!(
        replay.trace, failure.trace,
        "replay trace must be identical"
    );
}

//! Point-to-point semantics under explored schedules.

use mpfa::dst::{check, fixtures, SimConfig};

/// Nonblocking ping-pong round trip completes with correct payloads and
/// statuses under every explored schedule.
#[test]
fn pingpong_round_trip() {
    check(
        "conf_p2p_pingpong",
        &SimConfig::ranks(2),
        24,
        fixtures::pingpong,
    );
}

/// MPI non-overtaking: same-`(src, dst, tag)` sends match posted
/// receives in order, no matter how the schedule delays packets.
#[test]
fn fifo_ordering_within_a_channel() {
    check(
        "conf_p2p_fifo",
        &SimConfig::ranks(2),
        24,
        fixtures::tagged_pair_fifo,
    );
}

/// Exact tags route payloads even when the receives are posted in the
/// opposite order of the sends.
#[test]
fn exact_tags_route_regardless_of_post_order() {
    check("conf_p2p_tags", &SimConfig::ranks(2), 24, |sim| {
        let comms = sim.world_comms();
        // Receives posted 6-then-5; sends issued 5-then-6.
        let r6 = comms[1].irecv::<u32>(1, 0, 6).unwrap();
        let r5 = comms[1].irecv::<u32>(1, 0, 5).unwrap();
        let s5 = comms[0].isend(&[55u32], 1, 5).unwrap();
        let s6 = comms[0].isend(&[66u32], 1, 6).unwrap();
        let (q5, q6) = (r5.request(), r6.request());
        assert!(
            sim.run_until(|| s5.is_complete()
                && s6.is_complete()
                && q5.is_complete()
                && q6.is_complete()),
            "tagged pair never completed"
        );
        let (d5, st5) = r5.take();
        let (d6, st6) = r6.take();
        assert_eq!((d5, st5.tag), (vec![55], 5));
        assert_eq!((d6, st6.tag), (vec![66], 6));
    });
}

/// Zero-length messages complete and report zero bytes.
#[test]
fn empty_messages_complete() {
    check("conf_p2p_empty", &SimConfig::ranks(2), 16, |sim| {
        let comms = sim.world_comms();
        let recv = comms[1].irecv::<u8>(0, 0, 1).unwrap();
        let send = comms[0].isend(&[] as &[u8], 1, 1).unwrap();
        let r = recv.request();
        assert!(sim.run_until(|| send.is_complete() && r.is_complete()));
        let (data, st) = recv.take();
        assert!(data.is_empty());
        assert_eq!(st.bytes, 0);
    });
}

/// Many in-flight messages between many ranks all land exactly once.
#[test]
fn all_to_one_fan_in_delivers_every_message() {
    check("conf_p2p_fan_in", &SimConfig::ranks(4), 16, |sim| {
        let comms = sim.world_comms();
        let recvs: Vec<_> = (0..6)
            .map(|_| comms[0].irecv::<u64>(1, mpfa::mpi::ANY_SOURCE, 2).unwrap())
            .collect();
        let mut sends = Vec::new();
        for (src, comm) in comms.iter().enumerate().skip(1) {
            for k in 0..2u64 {
                sends.push(comm.isend(&[(src as u64) * 10 + k], 0, 2).unwrap());
            }
        }
        let reqs: Vec<_> = recvs.iter().map(|r| r.request()).collect();
        assert!(
            sim.run_until(
                || sends.iter().all(|s| s.is_complete()) && reqs.iter().all(|r| r.is_complete())
            ),
            "fan-in never completed"
        );
        let mut got: Vec<u64> = recvs.into_iter().map(|r| r.take().0[0]).collect();
        got.sort_unstable();
        assert_eq!(got, vec![10, 11, 20, 21, 30, 31]);
    });
}

//! Generalized-request lifecycle (paper Listing 1.7) under explored
//! schedules.

use mpfa::core::{grequest_start, wtime, AsyncPoll, GrequestOps, NoopOps, Status};
use mpfa::dst::{check, SimConfig};

struct TaggedOps(i32);
impl GrequestOps for TaggedOps {
    fn query(&mut self) -> Status {
        Status {
            source: 0,
            tag: self.0,
            bytes: 0,
            cancelled: false,
        }
    }
}

/// The Listing-1.7 pattern on virtual time: an async task completes the
/// grequest once the schedule has advanced the clock past a deadline;
/// the request must complete under every explored interleaving of
/// progress and time.
#[test]
fn async_task_completes_grequest_at_virtual_deadline() {
    check("conf_greq_deadline", &SimConfig::ranks(1), 24, |sim| {
        let stream = sim.proc(0).default_stream().clone();
        let (req, greq) = grequest_start(&stream, TaggedOps(42));
        let deadline = sim.now() + 5e-6;
        let mut greq = Some(greq);
        stream.async_start(move |_t| {
            if wtime() >= deadline {
                greq.take().unwrap().complete();
                AsyncPoll::Done
            } else {
                AsyncPoll::Pending
            }
        });
        assert!(
            sim.run_until(|| req.is_complete()),
            "grequest never completed"
        );
        let st = req.status().unwrap();
        assert_eq!(st.tag, 42, "query status must reach the waiter");
        assert!(!st.cancelled);
    });
}

/// Dropping the producer handle before completing must cancel the
/// request (no waiter may hang on an abandoned operation) and leave the
/// stream drainable — under every schedule, including ones that poll
/// other tasks around the drop.
#[test]
fn drop_before_complete_cancels_without_leak_or_hang() {
    check("conf_greq_drop", &SimConfig::ranks(1), 24, |sim| {
        let stream = sim.proc(0).default_stream().clone();
        let (req, greq) = grequest_start(&stream, NoopOps);
        // Unrelated tasks on the same stream so the schedule has real
        // interleavings to permute around the drop.
        for _ in 0..3 {
            let mut polls = 0;
            stream.async_start(move |_t| {
                polls += 1;
                if polls >= 4 {
                    AsyncPoll::Done
                } else {
                    AsyncPoll::Pending
                }
            });
        }
        sim.run_steps(8);
        assert!(!req.is_complete());
        drop(greq);
        assert!(
            req.is_complete(),
            "abandoned grequest must complete at drop"
        );
        assert!(req.status().unwrap().cancelled, "…as cancelled");
        assert!(
            sim.run_until(|| stream.pending_tasks() == 0),
            "stream failed to drain after grequest drop"
        );
    });
}

/// Completion racing a `Request::is_complete` poll from another thread:
/// the waiter thread spins on the atomic completion flag only (no
/// progress calls, so the sim thread stays the only driver) and must
/// observe the completion exactly once, with the queried status.
#[test]
fn completion_races_cross_thread_is_complete() {
    check("conf_greq_race", &SimConfig::ranks(1), 16, |sim| {
        let stream = sim.proc(0).default_stream().clone();
        let (req, greq) = grequest_start(&stream, TaggedOps(7));
        let watcher_req = req.clone();
        let watcher = std::thread::spawn(move || {
            // Pure atomic polling; completes when the sim thread does.
            while !watcher_req.is_complete() {
                std::hint::spin_loop();
            }
            watcher_req.status().unwrap()
        });
        sim.run_steps(4);
        greq.complete();
        let st = watcher.join().expect("watcher thread panicked");
        assert_eq!(st.tag, 7);
        assert!(req.is_complete());
    });
}

//! Wildcard (`MPI_ANY_SOURCE` / `MPI_ANY_TAG`) matching semantics under
//! explored schedules. The planted-bug fixture shows what a *wrong*
//! wildcard assumption looks like; these are the right ones.

use mpfa::dst::{check, SimConfig};
use mpfa::mpi::{ANY_SOURCE, ANY_TAG};

/// `ANY_SOURCE` receives match *some* real sender — any arrival order is
/// legal — and the payload must agree with the reported source.
#[test]
fn any_source_matches_consistent_sender() {
    check("conf_wc_any_source", &SimConfig::ranks(3), 32, |sim| {
        let comms = sim.world_comms();
        let ra = comms[0].irecv::<u32>(1, ANY_SOURCE, 4).unwrap();
        let rb = comms[0].irecv::<u32>(1, ANY_SOURCE, 4).unwrap();
        let s1 = comms[1].isend(&[1u32], 0, 4).unwrap();
        let s2 = comms[2].isend(&[2u32], 0, 4).unwrap();
        let (qa, qb) = (ra.request(), rb.request());
        assert!(
            sim.run_until(|| s1.is_complete()
                && s2.is_complete()
                && qa.is_complete()
                && qb.is_complete()),
            "wildcard pair never completed"
        );
        let (da, sta) = ra.take();
        let (db, stb) = rb.take();
        // Status must be self-consistent with the payload...
        assert_eq!(da[0], sta.source as u32);
        assert_eq!(db[0], stb.source as u32);
        // ...and both senders must be represented exactly once.
        let mut sources = [sta.source, stb.source];
        sources.sort_unstable();
        assert_eq!(sources, [1, 2]);
    });
}

/// `ANY_TAG` still honors channel FIFO: with two different-tag sends on
/// one channel, the wildcard receive takes the *first* send.
#[test]
fn any_tag_takes_first_in_channel_order() {
    check("conf_wc_any_tag", &SimConfig::ranks(2), 32, |sim| {
        let comms = sim.world_comms();
        let wc = comms[1].irecv::<u32>(1, 0, ANY_TAG).unwrap();
        let rest = comms[1].irecv::<u32>(1, 0, ANY_TAG).unwrap();
        let first = comms[0].isend(&[3u32], 1, 3).unwrap();
        let second = comms[0].isend(&[4u32], 1, 4).unwrap();
        let (q1, q2) = (wc.request(), rest.request());
        assert!(
            sim.run_until(|| first.is_complete()
                && second.is_complete()
                && q1.is_complete()
                && q2.is_complete()),
            "any-tag pair never completed"
        );
        let (d1, st1) = wc.take();
        let (d2, st2) = rest.take();
        assert_eq!(
            (d1, st1.tag),
            (vec![3], 3),
            "wildcard overtook channel FIFO"
        );
        assert_eq!((d2, st2.tag), (vec![4], 4));
    });
}

/// Exact and fully-wildcarded receives coexist: each incoming message
/// matches the earliest-posted receive that accepts it, so the exact
/// receive gets its message and the wildcard gets the rest — under every
/// arrival order.
#[test]
fn exact_and_wildcard_receives_coexist() {
    check("conf_wc_mixed", &SimConfig::ranks(3), 32, |sim| {
        let comms = sim.world_comms();
        // Exact posted first so the tag-9 message can never be stolen.
        let exact = comms[0].irecv::<u32>(1, 1, 9).unwrap();
        let wild = comms[0].irecv::<u32>(1, ANY_SOURCE, ANY_TAG).unwrap();
        let s_match = comms[1].isend(&[9u32], 0, 9).unwrap();
        let s_other = comms[2].isend(&[5u32], 0, 5).unwrap();
        let (qe, qw) = (exact.request(), wild.request());
        assert!(
            sim.run_until(|| s_match.is_complete()
                && s_other.is_complete()
                && qe.is_complete()
                && qw.is_complete()),
            "mixed receives never completed"
        );
        let (de, ste) = exact.take();
        let (dw, stw) = wild.take();
        assert_eq!((de, ste.source, ste.tag), (vec![9], 1, 9));
        assert_eq!((dw, stw.source, stw.tag), (vec![5], 2, 5));
    });
}

//! Readiness-reactor contract under explored schedules.
//!
//! The planted lost-wakeup bug (bit cleared before a bounded drain)
//! and its ≤64-seed acceptance test live in
//! `mpfa::dst::fixtures::planted_lost_wakeup_bug`; this shard proves
//! the two *correct* pump disciplines hold under every explored
//! schedule: drain-to-empty after `take`, and re-mark when a bounded
//! drain stops early. Both must survive the same coalescing windows
//! that break the planted pump.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use mpfa::dst::{check, fixtures, SimConfig};
use mpfa::transport::ReadySet;

const FRAMES: usize = 4;

/// Wire `FRAMES` receives so each completion bumps `pending` and marks
/// peer 1 in `ready`, then fire the matching sends. Returns the send
/// requests the pump loop must see complete.
fn post_traffic(
    sim: &mut mpfa::dst::Sim,
    ready: &Arc<ReadySet>,
    pending: &Arc<AtomicUsize>,
) -> Vec<mpfa::core::Request> {
    let comms = sim.world_comms();
    let recvs: Vec<_> = (0..FRAMES)
        .map(|_| comms[0].irecv::<u32>(1, 1, 7).unwrap())
        .collect();
    for r in &recvs {
        let (ready, pending) = (ready.clone(), pending.clone());
        r.request().on_complete(move |res| {
            res.expect("recv failed");
            pending.fetch_add(1, Ordering::SeqCst);
            ready.mark(1);
        });
    }
    (0..FRAMES)
        .map(|k| comms[1].isend(&[k as u32], 0, 7).unwrap())
        .collect()
}

/// Drain-to-empty after `take`: however many completions coalesced
/// into one mark, a pump that sweeps until `pending` is empty loses
/// none of them.
#[test]
fn drain_to_empty_sweeps_coalesced_completions() {
    check(
        "conf_reactor_drain_to_empty",
        &SimConfig::ranks(2),
        24,
        |sim| {
            let ready = Arc::new(ReadySet::new(2));
            let pending = Arc::new(AtomicUsize::new(0));
            let swept = Arc::new(AtomicUsize::new(0));
            let sends = post_traffic(sim, &ready, &pending);
            let ok = sim.run_until(|| {
                if ready.take(1) {
                    // Correct discipline: the bit is clear now, so sweep
                    // everything that was published before the clear.
                    while pending.load(Ordering::SeqCst) > 0 {
                        pending.fetch_sub(1, Ordering::SeqCst);
                        swept.fetch_add(1, Ordering::SeqCst);
                    }
                }
                sends.iter().all(|s| s.is_complete()) && swept.load(Ordering::SeqCst) == FRAMES
            });
            assert!(
                ok,
                "drain-to-empty pump lost a wakeup ({}/{FRAMES} swept)",
                swept.load(Ordering::SeqCst)
            );
        },
    );
}

/// Bounded drain with re-mark: sweeping one frame per wakeup is fine
/// as long as the pump re-marks the peer whenever work remains, so the
/// next pass gets another wakeup.
#[test]
fn bounded_drain_with_re_mark_keeps_liveness() {
    check(
        "conf_reactor_bounded_re_mark",
        &SimConfig::ranks(2),
        24,
        |sim| {
            let ready = Arc::new(ReadySet::new(2));
            let pending = Arc::new(AtomicUsize::new(0));
            let swept = Arc::new(AtomicUsize::new(0));
            let sends = post_traffic(sim, &ready, &pending);
            let ok = sim.run_until(|| {
                if ready.take(1) && pending.load(Ordering::SeqCst) > 0 {
                    pending.fetch_sub(1, Ordering::SeqCst);
                    swept.fetch_add(1, Ordering::SeqCst);
                    // Correct discipline: stopped early with work left —
                    // put the bit back so the frame is not stranded.
                    if pending.load(Ordering::SeqCst) > 0 {
                        ready.mark(1);
                    }
                }
                sends.iter().all(|s| s.is_complete()) && swept.load(Ordering::SeqCst) == FRAMES
            });
            assert!(
                ok,
                "re-marking bounded pump lost a wakeup ({}/{FRAMES} swept)",
                swept.load(Ordering::SeqCst)
            );
        },
    );
}

/// The invariant fixtures still hold with a reactor-style pump running
/// alongside them in the schedule loop — readiness bookkeeping must
/// not perturb p2p semantics.
#[test]
fn pingpong_unperturbed_by_reactor_bookkeeping() {
    check(
        "conf_reactor_pingpong",
        &SimConfig::ranks(2),
        16,
        fixtures::pingpong,
    );
}

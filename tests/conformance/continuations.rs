//! Continuation and async/await semantics under explored schedules.
//!
//! The deferred-execution contract — continuations enqueue at the
//! completing sweep and run on the *next* progress call, exactly once,
//! outside any engine lock — has to hold whichever way the schedule
//! interleaves attach, completion, drain, new-op posting, and failure
//! detection. Scenarios here are nonblocking only (`is_complete` +
//! `run_until`); the schedule owns every progress call.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

use mpfa::cont::{ContinuationRequest, Executor};
use mpfa::dst::{check, explore, fixtures, seeds, Sim, SimConfig};
use mpfa::mpi::DetectorConfig;

fn resilient(ranks: usize) -> SimConfig {
    SimConfig {
        resilience: Some(DetectorConfig { quiet_period: 1e9 }),
        ..SimConfig::ranks(ranks)
    }
}

/// Attach racing completion: the schedule decides how far the transfer
/// has progressed before `on_complete` runs — sometimes the request is
/// still pending (callback parks in the registry), sometimes already
/// complete (callback re-dispatches immediately). Either way it must
/// fire exactly once.
#[test]
fn attach_racing_completion_fires_exactly_once() {
    check("conf_cont_attach_race", &SimConfig::ranks(2), 64, |sim| {
        let comms = sim.world_comms();
        let recv = comms[1].irecv::<u32>(1, 0, 3).unwrap();
        let send = comms[0].isend(&[5u32], 1, 3).unwrap();
        // Let the schedule advance an arbitrary amount: the attach below
        // lands before, during, or after completion depending on seed.
        sim.run_steps(6);
        let fired = Arc::new(AtomicUsize::new(0));
        let f2 = fired.clone();
        recv.request().on_complete(move |res| {
            let st = res.expect("recv failed");
            assert_eq!(st.source, 0);
            f2.fetch_add(1, Ordering::SeqCst);
        });
        assert!(
            sim.run_until(|| send.is_complete() && fired.load(Ordering::SeqCst) == 1),
            "continuation never fired"
        );
        // Further progress must not re-fire it.
        sim.run_steps(8);
        assert_eq!(fired.load(Ordering::SeqCst), 1, "continuation re-fired");
    });
}

/// A continuation may itself post new operations and attach new
/// continuations (the paper's user-level chaining): ping's continuation
/// posts the pong, pong's continuation sets the flag — under every
/// schedule, including ones that complete the ping before the pong recv
/// is even posted.
#[test]
fn continuation_posts_new_ops_and_chains() {
    check("conf_cont_chain", &SimConfig::ranks(2), 64, |sim| {
        let comms = sim.world_comms();
        let done = Arc::new(AtomicUsize::new(0));

        // Rank 0 will eventually get the pong back.
        let pong_recv = comms[0].irecv::<u32>(1, 1, 8).unwrap();
        let done2 = done.clone();
        pong_recv.request().on_complete(move |res| {
            res.expect("pong recv failed");
            done2.fetch_add(1, Ordering::SeqCst);
        });

        // Rank 1's recv continuation posts the pong from inside the
        // callback (which runs on whichever thread progressed rank 1's
        // stream — here, the sim driver).
        let ping_recv = comms[1].irecv::<u32>(1, 0, 7).unwrap();
        let reply_comm = comms[1].clone();
        ping_recv.request().on_complete(move |res| {
            let st = res.expect("ping recv failed");
            assert_eq!(st.source, 0);
            // New op + new continuation from inside a continuation.
            let pong = reply_comm.isend(&[9u32], 0, 8).unwrap();
            pong.on_complete(|res| {
                res.expect("pong send failed");
            });
        });

        let ping = comms[0].isend(&[1u32], 1, 7).unwrap();
        assert!(
            sim.run_until(|| ping.is_complete() && done.load(Ordering::SeqCst) == 1),
            "chained continuation never completed"
        );
    });
}

/// MPIX_Continue attach-to-many: an aggregate over a window of p2p
/// operations completes exactly when the last member does, whatever
/// completion order the schedule produces.
#[test]
fn aggregate_completes_when_all_members_do() {
    check("conf_cont_aggregate", &SimConfig::ranks(3), 32, |sim| {
        let comms = sim.world_comms();
        let stream = sim.proc(0).default_stream().clone();
        let agg = ContinuationRequest::new(&stream);

        // Rank 0 receives one message from each peer and sends one back.
        let mut recvs = Vec::new();
        for peer in 1..3i32 {
            let r = comms[0].irecv::<u64>(1, peer, 11).unwrap();
            agg.attach(&r.request(), |res| {
                res.expect("window recv failed");
            });
            recvs.push(r);
            let s = comms[0].isend(&[peer as u64], peer, 12).unwrap();
            agg.attach_all(&[s]);
        }
        for (peer, comm) in comms.iter().enumerate().skip(1) {
            let _echo = comm.irecv::<u64>(1, 0, 12).unwrap();
            comm.isend(&[peer as u64 * 10], 0, 11).unwrap();
        }

        let window = agg.start();
        assert!(
            sim.run_until(|| window.is_complete()),
            "aggregate never completed"
        );
        assert!(window.result().unwrap().is_ok());
        for r in recvs {
            let (data, st) = r.take();
            assert_eq!(data, vec![st.source as u64 * 10]);
        }
    });
}

/// Kill a peer mid-await: a continuation attached to a receive from the
/// victim must fire with an error (never hang, never fire Ok), whichever
/// schedule interleaves detection, completion, and drain.
#[test]
fn killed_peer_fires_continuation_with_error() {
    check("conf_cont_kill", &resilient(3), 32, |sim| {
        const VICTIM: usize = 2;
        let comms = sim.world_comms();
        let recv = comms[0].irecv::<u8>(4, VICTIM as i32, 13).unwrap();
        let outcome: Arc<Mutex<Option<Result<(), String>>>> = Arc::new(Mutex::new(None));
        let o2 = outcome.clone();
        recv.request().on_complete(move |res| {
            *o2.lock().unwrap() = Some(match res {
                Ok(st) if st.cancelled => Err("cancelled".into()),
                Ok(_) => Ok(()),
                Err(e) => Err(format!("{e:?}")),
            });
        });
        assert!(sim.kill_at(VICTIM, 2e-6));
        assert!(
            sim.run_until(|| outcome.lock().unwrap().is_some()),
            "continuation never fired after peer death"
        );
        let got = outcome.lock().unwrap().clone().unwrap();
        assert!(
            got.is_err(),
            "recv from a dead rank completed successfully: {got:?}"
        );
    });
}

/// The executor's pump is itself an MPIX_Async task, so awaiting works
/// under the simulated schedule too: a spawned future awaits a receive
/// and finishes once the message lands, driven purely by scheduled
/// progress calls (never `join`, which would block the sim thread).
#[test]
fn executor_task_awaits_recv_under_schedules() {
    check("conf_cont_executor", &SimConfig::ranks(2), 32, |sim| {
        let comms = sim.world_comms();
        let exec = Executor::new(sim.proc(1).default_stream());
        let recv = comms[1].irecv::<u32>(1, 0, 14).unwrap();
        let handle = exec.spawn(async move {
            let (data, st) = recv.await.expect("awaited recv failed");
            assert_eq!(st.source, 0);
            data[0]
        });
        let send = comms[0].isend(&[77u32], 1, 14).unwrap();
        assert!(
            sim.run_until(|| send.is_complete() && handle.is_finished()),
            "awaiting task never finished"
        );
        assert_eq!(handle.join(), 77);
    });
}

/// Replay contract for the continuation machinery itself: a
/// continuation-heavy scenario must produce byte-identical traces when a
/// seed is rerun (the deferred-callback queue is part of the determinism
/// surface now).
#[test]
fn continuation_scenario_replays_byte_identical() {
    fn scenario(sim: &mut Sim) {
        let comms = sim.world_comms();
        let fired = Arc::new(AtomicUsize::new(0));
        let mut sends = Vec::new();
        for (src, dst) in [(0usize, 1usize), (1, 2), (2, 0)] {
            let r = comms[dst].irecv::<u32>(1, src as i32, 15).unwrap();
            let f = fired.clone();
            r.request().on_complete(move |res| {
                res.expect("ring recv failed");
                f.fetch_add(1, Ordering::SeqCst);
            });
            sends.push(comms[src].isend(&[src as u32], dst as i32, 15).unwrap());
        }
        assert!(
            sim.run_until(|| {
                sends.iter().all(|s| s.is_complete()) && fired.load(Ordering::SeqCst) == 3
            }),
            "ring continuations never all fired"
        );
    }
    let cfg = SimConfig::ranks(3);
    for seed in seeds(0xC047, 4) {
        let run = || {
            let mut sim = Sim::new(cfg.with_seed(seed));
            scenario(&mut sim);
            let trace = sim.trace_string();
            assert!(sim.shutdown(), "seed {seed} failed to drain");
            trace
        };
        let (first, second) = (run(), run());
        assert!(
            first == second,
            "seed {seed} diverged:\n--- run 1 ---\n{first}\n--- run 2 ---\n{second}"
        );
    }
}

/// The explorer must catch a schedule-dependent continuation-ordering
/// bug within 64 seeds — proof the seeds actually reach the deferred
/// firing order (integration twin of the unit test in `mpfa-dst`).
#[test]
fn explorer_catches_planted_continuation_bug() {
    let cfg = SimConfig::ranks(3);
    let failure = explore(
        &cfg,
        seeds(0xC047BAD, 64),
        fixtures::planted_continuation_order_bug,
    )
    .expect_err("planted continuation bug escaped 64 schedules");
    let replay = explore(
        &cfg,
        [failure.seed],
        fixtures::planted_continuation_order_bug,
    )
    .expect_err("failing seed did not reproduce");
    assert_eq!(replay.message, failure.message);
    assert_eq!(replay.trace, failure.trace);
}

//! MPI conformance suite under deterministic schedule exploration.
//!
//! MPICH-testsuite-style semantic checks — p2p ordering, wildcard
//! matching, generalized-request lifecycle, stream isolation, ULFM
//! invariants — each run under many explored schedules via the
//! `mpfa::dst` harness, so a passing suite means the semantics hold for
//! *every schedule tried*, not just the one the host machine happened to
//! produce.
//!
//! A failing test prints the seed; replay it alone with
//! `MPFA_DST_SEED=<seed> cargo test --test conformance <name>`.
//! `MPFA_DST_SEEDS=<n>` scales the exploration (CI nightlies raise it).

mod continuations;
mod determinism;
mod flow;
mod grequest;
mod p2p;
mod persist;
mod reactor;
mod resil;
mod streams;
mod wildcard;

//! ULFM invariants — revoke flooding, failure detection, agree/shrink —
//! under the DST harness.
//!
//! Revoke and detection are nonblocking, so they run under full seeded
//! schedule exploration. `agree`/`shrink` are internally blocking
//! collectives (each caller spins its own stream), so they run with one
//! thread per rank under the [`mpfa::dst::real_time`] guard — still
//! serialized against virtual-time tests in this binary, just not
//! schedule-fuzzed.

use mpfa::dst::{check, SimConfig};
use mpfa::mpi::{DetectorConfig, World, WorldConfig};

fn resilient(ranks: usize) -> SimConfig {
    SimConfig {
        // Quiet-period effectively off: only transport liveness and
        // manual reports fail ranks, keeping scenarios schedule-exact.
        resilience: Some(DetectorConfig { quiet_period: 1e9 }),
        ..SimConfig::ranks(ranks)
    }
}

/// A revoke by any member floods to every alive rank, under every
/// explored schedule.
#[test]
fn revoke_floods_to_all_ranks() {
    check("conf_resil_revoke", &resilient(3), 16, |sim| {
        let comms = sim.world_comms();
        assert!(comms.iter().all(|c| !c.is_revoked()));
        comms[1].revoke().unwrap();
        assert!(comms[1].is_revoked(), "revoker sees it immediately");
        let observers = comms.clone();
        assert!(
            sim.run_until(|| observers.iter().all(|c| c.is_revoked())),
            "revoke never reached every rank"
        );
    });
}

/// A chaos kill scheduled on the virtual clock is detected by every
/// survivor, whichever order the schedule lets them look.
#[test]
fn scheduled_kill_detected_by_every_survivor() {
    check("conf_resil_kill", &resilient(4), 16, |sim| {
        const VICTIM: usize = 3;
        assert!(sim.kill_at(VICTIM, 3e-6));
        let detectors: Vec<_> = (0..3)
            .map(|r| sim.resilience(r).detector().clone())
            .collect();
        assert!(
            sim.run_until(|| detectors.iter().all(|d| d.is_failed(VICTIM))),
            "kill never detected by all survivors"
        );
        for d in &detectors {
            assert!(d.epoch() >= 1);
            assert!(!d.alive_ranks().contains(&VICTIM));
        }
    });
}

/// Requests touching a failed rank resolve with errors instead of
/// hanging, under explored schedules.
#[test]
fn sends_to_dead_rank_error_instead_of_hanging() {
    check("conf_resil_dead_send", &resilient(3), 16, |sim| {
        const VICTIM: usize = 2;
        assert!(sim.kill_at(VICTIM, 2e-6));
        let comms = sim.world_comms();
        let det = sim.resilience(0).detector().clone();
        assert!(sim.run_until(|| det.is_failed(VICTIM)));
        let req = comms[0].isend(&[1u32], VICTIM as i32, 5).unwrap();
        assert!(
            sim.run_until(|| req.is_complete()),
            "send to dead rank hung"
        );
        assert!(
            req.error().is_some(),
            "send to dead rank must carry an error"
        );
    });
}

/// Agreement is the logical AND over alive members, identical on every
/// survivor, and shrink yields a consistent survivor communicator —
/// after a real failure. Threaded (agree/shrink block), under the
/// real-time clock guard.
#[test]
fn agree_and_shrink_after_failure_are_consistent() {
    let _rt = mpfa::dst::real_time();
    const N: usize = 3;
    const VICTIM: usize = 2;
    let procs = World::init(WorldConfig::instant(N));
    type SurvivorReport = Option<(bool, bool, usize, Vec<usize>)>;
    let results: Vec<SurvivorReport> = std::thread::scope(|s| {
        let handles: Vec<_> = procs
            .iter()
            .map(|proc| {
                s.spawn(move || {
                    let r = proc.enable_resilience(DetectorConfig::default());
                    let comm = proc.world_comm();
                    if proc.rank() == VICTIM {
                        // Stops participating; survivors declare it dead.
                        return None;
                    }
                    r.detector().report_failure(VICTIM);
                    while !r.detector().is_failed(VICTIM) {
                        proc.default_stream().progress();
                    }
                    let yes = comm.agree(true).unwrap();
                    let mixed = comm.agree(proc.rank() == 0).unwrap();
                    let shrunk = comm.shrink().unwrap();
                    Some((yes, mixed, shrunk.size(), shrunk.group().to_vec()))
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    for (rank, res) in results.iter().enumerate() {
        if rank == VICTIM {
            assert!(res.is_none());
            continue;
        }
        let (yes, mixed, size, group) = res.clone().unwrap();
        assert!(yes, "unanimous true must agree true (rank {rank})");
        assert!(!mixed, "one dissent must flip the AND (rank {rank})");
        assert_eq!(size, N - 1, "shrink must drop exactly the victim");
        assert_eq!(group, vec![0, 1], "survivor group must be consistent");
    }
}

//! Property-based tests of the simulated fabric: completeness and
//! per-channel FIFO under arbitrary traffic patterns.

use mpfa::fabric::{Fabric, FabricConfig};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn every_packet_delivered_exactly_once(
        ranks in 2usize..6,
        node_size in 1usize..3,
        sends in proptest::collection::vec((0usize..6, 0usize..6, 0usize..500), 0..100),
    ) {
        let fabric: Fabric<u64> = Fabric::new(FabricConfig::instant_nodes(ranks, node_size));
        let mut injected = 0u64;
        for (i, &(src, dst, bytes)) in sends.iter().enumerate() {
            let (src, dst) = (src % ranks, dst % ranks);
            fabric.endpoint(src).send(dst, i as u64, bytes);
            injected += 1;
        }
        let mut received = 0u64;
        let mut seen = vec![false; sends.len()];
        for rank in 0..ranks {
            let ep = fabric.endpoint(rank);
            loop {
                let env = ep.poll_net().or_else(|| ep.poll_shmem());
                match env {
                    Some(env) => {
                        let idx = env.msg as usize;
                        prop_assert!(!seen[idx], "duplicate delivery of packet {}", idx);
                        seen[idx] = true;
                        // Delivered to the right destination.
                        prop_assert_eq!(env.dst, rank);
                        let (src, dst, bytes) = sends[idx];
                        prop_assert_eq!(env.src, src % ranks);
                        prop_assert_eq!(rank, dst % ranks);
                        prop_assert_eq!(env.wire_bytes, bytes);
                        received += 1;
                    }
                    None => break,
                }
            }
        }
        prop_assert_eq!(received, injected);
    }

    #[test]
    fn per_channel_fifo_holds(
        sends in proptest::collection::vec((0usize..3, 0usize..3), 1..120),
    ) {
        let fabric: Fabric<u64> = Fabric::new(FabricConfig::instant(3));
        // Sequence number per directed channel.
        let mut chan_seq = std::collections::HashMap::new();
        for &(src, dst) in &sends {
            let seq = chan_seq.entry((src, dst)).or_insert(0u64);
            // Encode (src, dst, per-channel seq) in the message.
            fabric.endpoint(src).send(dst, ((src as u64) << 48) | ((dst as u64) << 32) | *seq, 8);
            *seq += 1;
        }
        for rank in 0..3 {
            let ep = fabric.endpoint(rank);
            let mut next_expected = std::collections::HashMap::new();
            loop {
                let env = ep.poll_net().or_else(|| ep.poll_shmem());
                let Some(env) = env else { break };
                let seq = env.msg & 0xffff_ffff;
                let key = (env.src, rank);
                let expect = next_expected.entry(key).or_insert(0u64);
                prop_assert_eq!(seq, *expect, "channel {:?} out of order", key);
                *expect += 1;
            }
            // All packets for this rank drained in channel order.
            for ((src, dst), sent) in &chan_seq {
                if *dst == rank {
                    prop_assert_eq!(
                        next_expected.get(&(*src, rank)).copied().unwrap_or(0),
                        *sent
                    );
                }
            }
        }
    }
}

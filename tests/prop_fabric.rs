//! Randomized-property tests of the simulated fabric: completeness and
//! per-channel FIFO under arbitrary traffic patterns. Cases are generated
//! from fixed seeds (see `common::Rng`) so every run is deterministic.

mod common;

use common::Rng;
use mpfa::fabric::{Fabric, FabricConfig};

#[test]
fn every_packet_delivered_exactly_once() {
    for seed in 0..64u64 {
        let mut rng = Rng::new(seed);
        let ranks = rng.usize_in(2, 6);
        let node_size = rng.usize_in(1, 3);
        let sends = rng.vec_in(0, 100, |r| {
            (r.usize_in(0, 6), r.usize_in(0, 6), r.usize_in(0, 500))
        });

        let fabric: Fabric<u64> = Fabric::new(FabricConfig::instant_nodes(ranks, node_size));
        let mut injected = 0u64;
        for (i, &(src, dst, bytes)) in sends.iter().enumerate() {
            let (src, dst) = (src % ranks, dst % ranks);
            fabric.endpoint(src).send(dst, i as u64, bytes);
            injected += 1;
        }
        let mut received = 0u64;
        let mut seen = vec![false; sends.len()];
        for rank in 0..ranks {
            let ep = fabric.endpoint(rank);
            loop {
                let env = ep.poll_net().or_else(|| ep.poll_shmem());
                match env {
                    Some(env) => {
                        let idx = env.msg as usize;
                        assert!(
                            !seen[idx],
                            "duplicate delivery of packet {idx} (seed {seed})"
                        );
                        seen[idx] = true;
                        // Delivered to the right destination.
                        assert_eq!(env.dst, rank, "seed {seed}");
                        let (src, dst, bytes) = sends[idx];
                        assert_eq!(env.src, src % ranks, "seed {seed}");
                        assert_eq!(rank, dst % ranks, "seed {seed}");
                        assert_eq!(env.wire_bytes, bytes, "seed {seed}");
                        received += 1;
                    }
                    None => break,
                }
            }
        }
        assert_eq!(received, injected, "seed {seed}");
    }
}

#[test]
fn per_channel_fifo_holds() {
    for seed in 0..64u64 {
        let mut rng = Rng::new(seed);
        let sends = rng.vec_in(1, 120, |r| (r.usize_in(0, 3), r.usize_in(0, 3)));

        let fabric: Fabric<u64> = Fabric::new(FabricConfig::instant(3));
        // Sequence number per directed channel.
        let mut chan_seq = std::collections::HashMap::new();
        for &(src, dst) in &sends {
            let seq = chan_seq.entry((src, dst)).or_insert(0u64);
            // Encode (src, dst, per-channel seq) in the message.
            fabric
                .endpoint(src)
                .send(dst, ((src as u64) << 48) | ((dst as u64) << 32) | *seq, 8);
            *seq += 1;
        }
        for rank in 0..3 {
            let ep = fabric.endpoint(rank);
            let mut next_expected = std::collections::HashMap::new();
            loop {
                let env = ep.poll_net().or_else(|| ep.poll_shmem());
                let Some(env) = env else { break };
                let seq = env.msg & 0xffff_ffff;
                let key = (env.src, rank);
                let expect = next_expected.entry(key).or_insert(0u64);
                assert_eq!(seq, *expect, "channel {key:?} out of order (seed {seed})");
                *expect += 1;
            }
            // All packets for this rank drained in channel order.
            for ((src, dst), sent) in &chan_seq {
                if *dst == rank {
                    assert_eq!(
                        next_expected.get(&(*src, rank)).copied().unwrap_or(0),
                        *sent,
                        "seed {seed}"
                    );
                }
            }
        }
    }
}

//! Integration of the user-level layer (mpfa-interop) and the baselines
//! (mpfa-baselines) over the full runtime.

mod common;

use common::{run_ranks, Coop};
use mpfa::baselines::polling::{wait_all_by_stream_progress, wait_all_by_testing};
use mpfa::baselines::GlobalProgressThread;
use mpfa::core::Request;
use mpfa::interop::user_coll::{my_allreduce, my_barrier, my_iallreduce};
use mpfa::interop::{ProgressEngine, ScheduleBuilder};
use mpfa::mpi::{Op, WorldConfig};

#[test]
fn user_allreduce_equals_native_on_various_configs() {
    for cfg in [
        WorldConfig::instant(4),
        WorldConfig::cluster(8),
        WorldConfig::single_node(2),
    ] {
        let results = run_ranks(cfg, |proc| {
            let comm = proc.world_comm();
            let data: Vec<i32> = (0..16).map(|i| i * (proc.rank() as i32 + 2)).collect();
            let native = comm.allreduce(&data, Op::Sum).unwrap();
            let user = my_allreduce(&comm, data).unwrap();
            native == user
        });
        assert!(results.iter().all(|&eq| eq));
    }
}

#[test]
fn user_barrier_composes_with_native_collectives() {
    let results = run_ranks(WorldConfig::instant(4), |proc| {
        let comm = proc.world_comm();
        for _ in 0..5 {
            my_barrier(&comm).unwrap();
            let out = comm.allreduce(&[1i32], Op::Sum).unwrap();
            assert_eq!(out[0], 4);
            comm.barrier().unwrap();
        }
        true
    });
    assert!(results.iter().all(|&ok| ok));
}

#[test]
fn coop_user_allreduce_many_rounds() {
    let w = Coop::new(WorldConfig::instant(8));
    let comms = w.comms();
    for round in 0..10i32 {
        let futs: Vec<_> = comms
            .iter()
            .map(|c| my_iallreduce(c, vec![round + c.rank()]).unwrap())
            .collect();
        w.drive(|| futs.iter().all(|f| f.is_complete()), 1_000_000);
        for f in futs {
            assert_eq!(f.take()[0], 8 * round + 28);
        }
    }
}

#[test]
fn schedule_expresses_a_coordinated_exchange() {
    // MPIX_Schedule-style: round 1 = exchange with peer, round 2 = second
    // exchange that must start only after round 1 completed everywhere on
    // this rank.
    let results = run_ranks(WorldConfig::instant(2), |proc| {
        let comm = proc.world_comm();
        let stream = comm.stream().clone();
        let peer = 1 - comm.rank();

        let mut sched = ScheduleBuilder::new();
        let c1 = comm.clone();
        sched.add_operation(move || c1.isend(&[1u8; 64], peer, 1).unwrap());
        let c2 = comm.clone();
        sched.add_operation(move || c2.irecv::<u8>(64, peer, 1).unwrap().request());
        sched.create_round();
        let c3 = comm.clone();
        sched.add_operation(move || c3.isend(&[2u8; 64], peer, 2).unwrap());
        let c4 = comm.clone();
        sched.add_operation(move || c4.irecv::<u8>(64, peer, 2).unwrap().request());

        let req = sched.commit(&stream);
        let status = req.wait();
        assert!(!status.cancelled);
        true
    });
    assert!(results.iter().all(|&ok| ok));
}

#[test]
fn progress_engine_serves_blocking_free_tasks() {
    // §3.5: tasks never call progress; a ProgressEngine drives the stream.
    let results = run_ranks(WorldConfig::instant(2), |proc| {
        let comm = proc.world_comm();
        let engine = ProgressEngine::spawn(comm.stream().clone());
        let peer = 1 - comm.rank();
        let recv = comm.irecv::<i64>(8, peer, 1).unwrap();
        comm.isend(&[comm.rank() as i64; 8], peer, 1).unwrap();
        // Task-side wait block: spin on is_complete only.
        let status = engine.await_request(&recv.request());
        assert_eq!(status.source, peer);
        engine.stop();
        true
    });
    assert!(results.iter().all(|&ok| ok));
}

#[test]
fn global_progress_thread_drives_mpi_traffic() {
    // The §5.1 baseline still *works* (it is a performance problem, not a
    // correctness one).
    let results = run_ranks(WorldConfig::instant(2), |proc| {
        let comm = proc.world_comm();
        let bg = GlobalProgressThread::enable(comm.stream());
        let peer = 1 - comm.rank();
        let recv = comm.irecv::<u8>(100_000, peer, 1).unwrap(); // rendezvous
        comm.isend(&vec![3u8; 100_000], peer, 1).unwrap();
        // The app thread only spins on completion; the bg thread moves the
        // protocol.
        let req = recv.request();
        while !req.is_complete() {
            std::hint::spin_loop();
        }
        bg.disable();
        true
    });
    assert!(results.iter().all(|&ok| ok));
}

#[test]
fn polling_baselines_complete_real_requests() {
    let results = run_ranks(WorldConfig::instant(2), |proc| {
        let comm = proc.world_comm();
        let peer = 1 - comm.rank();
        let reqs: Vec<Request> = (0..16)
            .map(|tag| {
                let r = comm.irecv::<u32>(4, peer, tag).unwrap();
                comm.isend(&[tag as u32; 4], peer, tag).unwrap();
                r.request()
            })
            .collect();
        let (statuses, stats) = wait_all_by_testing(&reqs);
        assert_eq!(statuses.len(), 16);
        assert!(stats.tests >= 16);

        // And the stream-progress variant on a second batch.
        let reqs2: Vec<Request> = (100..116)
            .map(|tag| {
                let r = comm.irecv::<u32>(4, peer, tag).unwrap();
                comm.isend(&[tag as u32; 4], peer, tag).unwrap();
                r.request()
            })
            .collect();
        let (statuses2, _calls) = wait_all_by_stream_progress(comm.stream(), &reqs2);
        assert_eq!(statuses2.len(), 16);
        true
    });
    assert!(results.iter().all(|&ok| ok));
}

#[test]
fn vector_datatype_ops_through_engine() {
    use mpfa::mpi::Layout;
    let results = run_ranks(WorldConfig::instant(2), |proc| {
        let comm = proc.world_comm();
        let layout = Layout::Vector {
            count: 50,
            blocklen: 3,
            stride: 5,
        };
        if comm.rank() == 0 {
            let data: Vec<i32> = (0..250).collect();
            comm.isend_vector(&data, layout, 1, 1).unwrap().wait();
            Vec::new()
        } else {
            let recv = comm.irecv_vector::<i32>(layout, 0, 1).unwrap();
            recv.wait().0
        }
    });
    let original: Vec<i32> = (0..250).collect();
    let packed = {
        use mpfa::mpi::datatype::Layout as L;
        let l = L::Vector {
            count: 50,
            blocklen: 3,
            stride: 5,
        };
        l.pack(&original)
    };
    let mut expect = vec![0i32; 248]; // extent = 49*5 + 3
    {
        use mpfa::mpi::datatype::Layout as L;
        let l = L::Vector {
            count: 50,
            blocklen: 3,
            stride: 5,
        };
        l.unpack(&packed, &mut expect);
    }
    assert_eq!(results[1], expect);
}

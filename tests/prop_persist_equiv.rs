//! Differential property test: a persistent pair re-fired K times must
//! be observably identical — bytes, lengths, statuses, and delivery
//! order — to K one-shot `isend_bytes`/`irecv_bytes` pairs carrying the
//! same payloads.
//!
//! The persistent path never enters the tag matcher (re-fires are
//! slot-addressed), so this test is what ties it back to MPI matching
//! semantics: the one-shot run *is* the specification of what K
//! repeated transfers deliver, and `LinearMatchState` — the executable
//! spec of the matching rules — independently confirms that spec run's
//! expected order, so a divergence can always be blamed on the right
//! side. Payload sizes straddle the eager/rendezvous boundary, so both
//! `Refire` and `RefireRts` re-fires are compared against their
//! one-shot twins. The matcher-flatness of the persistent run itself
//! (bucket-probe counters across K re-fires) is proven in the
//! process-isolated `persist_matcher_flat` test.

mod common;

use common::Rng;
use mpfa::core::{Request, Status, Stream};
use mpfa::mpi::matching::{LinearMatchState, PostedRecv, RecvSlot, Unexpected};
use mpfa::mpi::{MpfaBytes, World, WorldConfig};

const TAG: i32 = 11;
/// Sizes up to ~96 KiB against the instant config's 64 KiB eager cutoff:
/// roughly a third of the rounds go rendezvous.
const MAX_BYTES: usize = 96 * 1024;

/// One observed round on the receiver: payload bytes + status triple.
type Round = (Vec<u8>, i32, i32, usize);

fn random_payloads(rng: &mut Rng) -> Vec<Vec<u8>> {
    let k = rng.usize_in(2, 10);
    (0..k)
        .map(|i| {
            let len = if rng.usize_in(0, 8) == 0 {
                0 // empty rounds must re-fire too
            } else {
                rng.usize_in(1, MAX_BYTES)
            };
            let mut v = vec![(i as u8) ^ 0xC3; len];
            // A distinctive head and tail so truncation or stale-buffer
            // reuse can't produce a false match.
            if len >= 8 {
                v[..8].copy_from_slice(&(i as u64).to_ne_bytes());
                let end = len - 1;
                v[end] = !(i as u8);
            }
            v
        })
        .collect()
}

/// Yield-spin a condition while driving `comm`'s stream.
fn drive(comm: &mpfa::mpi::Comm, done: impl Fn() -> bool) {
    while !done() {
        comm.stream().progress();
        std::thread::yield_now();
    }
}

/// Run the K rounds with persistent descriptors: init once, start K
/// times. Returns the receiver's observations in round order.
fn run_persistent(payloads: &[Vec<u8>]) -> Vec<Round> {
    let procs = World::init(WorldConfig::instant(2));
    let (p0, p1) = (procs[0].clone(), procs[1].clone());
    let payloads0 = payloads.to_vec();
    let sender = std::thread::spawn(move || {
        let comm = p0.world_comm();
        let mut ps = comm.send_init_bytes(Vec::new(), 1, TAG).unwrap();
        for payload in &payloads0 {
            ps.set_payload(payload.clone());
            let req = ps.start().unwrap();
            drive(&comm, || req.is_complete());
        }
    });
    let comm = p1.world_comm();
    let mut pr = comm.recv_init_bytes(MAX_BYTES, 0, TAG).unwrap();
    let mut rounds = Vec::new();
    for _ in payloads {
        pr.start().unwrap();
        let req = pr.request().unwrap();
        drive(&comm, || req.is_complete());
        let (data, st) = pr.wait().unwrap();
        rounds.push((data.to_vec(), st.source, st.tag, st.bytes));
    }
    sender.join().unwrap();
    rounds
}

/// The same K rounds as one-shot pairs — the reference run.
fn run_oneshot(payloads: &[Vec<u8>]) -> Vec<Round> {
    let procs = World::init(WorldConfig::instant(2));
    let (p0, p1) = (procs[0].clone(), procs[1].clone());
    let payloads0 = payloads.to_vec();
    let sender = std::thread::spawn(move || {
        let comm = p0.world_comm();
        for payload in &payloads0 {
            let req = comm
                .isend_bytes(MpfaBytes::from(payload.clone()), 1, TAG)
                .unwrap();
            drive(&comm, || req.is_complete());
        }
    });
    let comm = p1.world_comm();
    let mut rounds = Vec::new();
    for _ in payloads {
        let r = comm.irecv_bytes(MAX_BYTES, 0, TAG).unwrap();
        drive(&comm, || r.is_complete());
        let (data, st) = r.take();
        rounds.push((data.to_vec(), st.source, st.tag, st.bytes));
    }
    sender.join().unwrap();
    rounds
}

/// Confirm against `LinearMatchState` — the executable spec of the MPI
/// matching rules — that K same-channel posts and arrivals match in
/// round order under a random post/arrival interleaving (posts encode
/// their round in `capacity`; matches must pair round i with round i).
/// This is the spec-level statement both runtime runs were held to.
fn confirm_linear_spec(rng: &mut Rng, k: usize, seed: u64) {
    let stream = Stream::create();
    let mut lin = LinearMatchState::new();
    let mut posted = 0usize;
    let mut arrived = 0usize;
    let mut matched = 0usize;
    while matched < k {
        let post_next = arrived >= k || (posted < k && rng.usize_in(0, 2) == 0);
        if post_next && posted < k {
            let (_, completer) = Request::pair(&stream);
            let hit = lin.post_recv(PostedRecv {
                src: 0,
                tag: TAG,
                capacity: 10_000 + posted,
                slot: RecvSlot::new(),
                completer,
            });
            if let Some((recv, un)) = hit {
                // The earliest unexpected arrival, which must be round
                // `matched` — the round this post (also `matched`) sends.
                let Unexpected::Eager { data, .. } = un else {
                    panic!("eager-only spec run")
                };
                assert_eq!(recv.capacity, 10_000 + matched, "seed {seed}: post order");
                assert_eq!(data[0] as usize, matched, "seed {seed}: arrival order");
                recv.completer.complete(Status::empty());
                matched += 1;
            }
            posted += 1;
        } else if arrived < k {
            match lin.match_incoming(0, TAG) {
                Some(recv) => {
                    assert_eq!(recv.capacity, 10_000 + matched, "seed {seed}: match order");
                    recv.completer.complete(Status::empty());
                    matched += 1;
                }
                None => lin.push_unexpected(Unexpected::Eager {
                    src: 0,
                    tag: TAG,
                    data: vec![arrived as u8].into(),
                }),
            }
            arrived += 1;
        }
    }
    assert_eq!(lin.posted_len(), 0, "seed {seed}");
    assert_eq!(lin.unexpected_len(), 0, "seed {seed}");
}

#[test]
fn k_refires_equal_k_oneshot_pairs() {
    for seed in 0..24u64 {
        let mut rng = Rng::new(0x9E125 ^ seed);
        let payloads = random_payloads(&mut rng);

        let persistent = run_persistent(&payloads);
        let oneshot = run_oneshot(&payloads);

        assert_eq!(
            persistent.len(),
            oneshot.len(),
            "seed {seed}: round counts diverged"
        );
        for (i, (p, o)) in persistent.iter().zip(&oneshot).enumerate() {
            assert_eq!(
                p,
                o,
                "seed {seed}, round {i}: persistent round diverged from one-shot \
                 ({} vs {} bytes)",
                p.0.len(),
                o.0.len()
            );
            // And both must carry what was sent.
            assert_eq!(&p.0, &payloads[i], "seed {seed}, round {i}: payload");
            assert_eq!((p.1, p.2), (0, TAG), "seed {seed}, round {i}: status");
        }
        confirm_linear_spec(&mut rng, payloads.len(), seed);
    }
}

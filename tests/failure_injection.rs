//! Failure injection: the runtime must degrade predictably, not hang.
//!
//! Timing-sensitive tests in this binary run on the DST clock
//! ([`mpfa::dst::virtual_time`] / [`mpfa::dst::real_time`]): a virtual
//! guard freezes `wtime()` so bounded spins can't flake on slow CI, and
//! the guards serialize against each other so a frozen clock never leaks
//! into a test that needs real fabric latencies.

mod common;

use common::run_ranks;
use mpfa::core::{AsyncPoll, Request, Stream};
use mpfa::mpi::WorldConfig;

#[test]
fn panicking_poll_poisons_only_its_task() {
    // Frozen virtual clock: the 5.0s progress_until bound can never fire
    // spuriously on an overloaded machine — only the condition exits.
    let _clk = mpfa::dst::virtual_time(0.0);
    let stream = Stream::create();
    // One bad task among good ones.
    let mut polls_left = 3;
    stream.async_start(move |_t| {
        polls_left -= 1;
        if polls_left == 0 {
            panic!("injected failure");
        }
        AsyncPoll::Pending
    });
    let good = mpfa::core::CompletionCounter::new(5);
    for _ in 0..5 {
        let g = good.clone();
        let mut n = 10;
        stream.async_start(move |_t| {
            n -= 1;
            if n == 0 {
                g.done();
                AsyncPoll::Done
            } else {
                AsyncPoll::Pending
            }
        });
    }
    assert!(stream.progress_until(|| good.is_zero(), 5.0));
    assert_eq!(stream.poisoned_tasks(), 1);
    assert_eq!(stream.pending_tasks(), 0);
}

#[test]
fn panicking_task_amid_mpi_traffic_leaves_runtime_healthy() {
    let results = run_ranks(WorldConfig::instant(2), |proc| {
        let comm = proc.world_comm();
        let stream = comm.stream().clone();
        let peer = 1 - comm.rank();
        stream.async_start(|_t| -> AsyncPoll { panic!("injected") });
        // Messaging continues to work after the poison.
        let r = comm.irecv::<u8>(64, peer, 1).unwrap();
        comm.isend(&[1u8; 64], peer, 1).unwrap();
        let (data, _) = r.wait();
        assert_eq!(data.len(), 64);
        assert_eq!(stream.poisoned_tasks(), 1);
        true
    });
    assert!(results.iter().all(|&ok| ok));
}

#[test]
fn recursive_progress_inside_poll_is_contained() {
    let stream = Stream::create();
    let s2 = stream.clone();
    stream.async_start(move |_t| {
        s2.progress(); // prohibited; must panic, not deadlock
        AsyncPoll::Done
    });
    stream.progress();
    assert_eq!(stream.poisoned_tasks(), 1);
}

#[test]
fn abandoned_completer_cancels_instead_of_hanging() {
    let stream = Stream::create();
    let (req, completer) = Request::pair(&stream);
    drop(completer); // operation owner died
    let status = req.wait(); // must return, not hang
    assert!(status.cancelled);
}

#[test]
fn jittery_fabric_preserves_correctness() {
    // Latency + finite bandwidth + tiny MTU-sized chunks: protocol state
    // machines under maximal interleaving.
    let mut cfg = WorldConfig::cluster(3);
    cfg.proto.eager_max = 512;
    cfg.proto.chunk = 1024;
    cfg.proto.depth = 2;
    cfg.inter_latency = 20e-6;
    cfg.inter_bandwidth = 0.5e9;
    cfg.jitter = 1.5; // per-packet delay variation (FIFO still guaranteed)

    // The fabric's latency/bandwidth/jitter delays all come off `wtime()`,
    // so drive them from the virtual clock: a pump thread advances time in
    // fixed quanta while the rank threads block in wait(). Transfer
    // completion then depends on simulated time, not machine speed.
    let clk = mpfa::dst::virtual_time(0.0);
    let stop_pump = std::sync::atomic::AtomicBool::new(false);
    std::thread::scope(|scope| {
        scope.spawn(|| {
            while !stop_pump.load(std::sync::atomic::Ordering::Acquire) {
                clk.advance(10e-6);
                std::thread::yield_now();
            }
        });
        let results = run_ranks(cfg, |proc| {
            let comm = proc.world_comm();
            let rank = comm.rank();
            let size = comm.size() as i32;
            let right = (rank + 1) % size;
            let left = (rank - 1).rem_euclid(size);
            // Several in-flight rendezvous transfers both ways.
            let recvs: Vec<_> = (0..4)
                .map(|t| comm.irecv::<u8>(10_000, left, t).unwrap())
                .collect();
            let sends: Vec<_> = (0..4)
                .map(|t| comm.isend(&vec![t as u8; 10_000], right, t).unwrap())
                .collect();
            for (t, r) in recvs.into_iter().enumerate() {
                let (data, _) = r.wait();
                assert_eq!(data, vec![t as u8; 10_000]);
            }
            // MPI semantics: sends must be completed too — a rank that stops
            // progressing with chunks still un-pumped would stall its
            // neighbor's pipelined receive.
            for s in sends {
                s.wait();
            }
            true
        });
        stop_pump.store(true, std::sync::atomic::Ordering::Release);
        assert!(results.iter().all(|&ok| ok));
    });
}

#[test]
#[should_panic(expected = "truncation")]
fn truncation_is_fatal_by_default() {
    // MPI_ERRORS_ARE_FATAL semantics surface as a panic in the receiving
    // rank's progress. The give-up bound is 2 *virtual* seconds —
    // `wait_timeout` measures its deadline on `wtime()`, a ticker thread
    // is the only thing advancing the frozen clock, and each quantum of
    // the wait drives the receiver's stream, so the landing message
    // panics inside the wait itself.
    let clk = mpfa::dst::virtual_time(0.0);
    let procs = mpfa::mpi::World::init(WorldConfig::instant(2));
    let p0 = procs[0].clone();
    let p1 = procs[1].clone();
    let sender = std::thread::spawn(move || {
        let comm = p0.world_comm();
        let _ = comm.isend(&[0u8; 100], 1, 1);
    });
    // The 100-byte message is committed to the fabric before the
    // too-small receive starts waiting.
    sender.join().unwrap();
    let comm = p1.world_comm();
    let r = comm.irecv::<u8>(10, 0, 1).unwrap(); // too small
    std::thread::scope(|s| {
        // Bounded ticker: advances past the deadline then exits, so an
        // unwinding main thread never leaves it spinning.
        s.spawn(|| {
            while clk.now() < 3.0 {
                clk.advance(1e-3);
                std::thread::yield_now();
            }
        });
        let _ = r.request().wait_timeout(std::time::Duration::from_secs(2));
    });
    unreachable!("the undersized receive never observed the message");
}

#[test]
fn injected_peer_death_completes_wait_all_with_errors() {
    // ULFM shape: a peer dying with operations outstanding must complete
    // every request — errored, not hung — so `wait_all_results` returns
    // a per-request verdict.
    use mpfa::core::RequestError;
    use mpfa::resil::DetectorConfig;

    // The failure detector's quiet-period accounting reads `wtime()`;
    // hold the real-time guard so a concurrently scheduled virtual-clock
    // test in this binary can't freeze time under it.
    let _rt = mpfa::dst::real_time();
    const N: usize = 4;
    const VICTIM: usize = 3;
    let past_barrier = std::sync::atomic::AtomicUsize::new(0);
    let results = run_ranks(WorldConfig::instant(N), |proc| {
        let r = proc.enable_resilience(DetectorConfig::default());
        let comm = proc.world_comm();
        comm.barrier().unwrap();
        // The kill must wait for *every* rank to leave the barrier, not
        // just the victim: a survivor still inside it when the victim is
        // declared dead gets its barrier recvs failed (`ProcFailed`),
        // which is legal ULFM behavior but not what this test probes.
        past_barrier.fetch_add(1, std::sync::atomic::Ordering::AcqRel);
        if proc.rank() == VICTIM {
            return Vec::new();
        }
        if proc.rank() == 0 {
            while past_barrier.load(std::sync::atomic::Ordering::Acquire) < N {
                std::hint::spin_loop();
            }
            assert!(proc.world().chaos_kill(VICTIM));
        }
        // Each survivor waits for its *own* detector to convict the
        // victim before posting the doomed operations. Without this,
        // `doomed_send` races the kill: an eager 8-byte send accepted
        // while the victim is still (locally) alive legitimately
        // completes Ok, and the per-request verdicts below would be
        // schedule-dependent.
        while !r.detector().is_failed(VICTIM) {
            comm.stream().progress();
        }
        // Ring among the survivors {0, 1, 2}.
        let next = (proc.rank() + 1) % (N - 1);
        let prev = (proc.rank() + N - 2) % (N - 1);
        // A mix: receives from the dead rank (doomed), sends to the dead
        // rank (doomed), and traffic between survivors (must succeed).
        let doomed_recv = comm.irecv::<u8>(8, VICTIM as i32, 1).unwrap();
        let doomed_send = comm.isend(&[1u8; 8], VICTIM as i32, 2).unwrap();
        let good_recv = comm.irecv::<u8>(8, prev as i32, 3).unwrap();
        let good_send = comm.isend(&[2u8; 8], next as i32, 3).unwrap();
        let reqs = [
            doomed_recv.request(),
            doomed_send,
            good_recv.request(),
            good_send,
        ];
        Request::wait_all_results(&reqs)
    });
    for (rank, outcomes) in results.iter().enumerate() {
        if rank == VICTIM {
            continue;
        }
        assert_eq!(outcomes.len(), 4, "rank {rank}");
        assert_eq!(
            outcomes[0],
            Err(RequestError::PeerFailed {
                rank: VICTIM as i32
            }),
            "rank {rank}: recv from dead peer"
        );
        assert!(
            matches!(outcomes[1], Err(RequestError::PeerFailed { .. })),
            "rank {rank}: send to dead peer, got {:?}",
            outcomes[1]
        );
        assert!(outcomes[2].is_ok(), "rank {rank}: survivor recv");
        assert!(outcomes[3].is_ok(), "rank {rank}: survivor send");
    }
}

#[test]
fn zero_sized_world_operations() {
    // Single-rank edge cases: self-sends, collectives of one.
    let results = run_ranks(WorldConfig::instant(1), |proc| {
        let comm = proc.world_comm();
        let r = comm.irecv::<i32>(2, 0, 0).unwrap();
        comm.isend(&[4i32, 2], 0, 0).unwrap();
        let (data, _) = r.wait();
        assert_eq!(data, vec![4, 2]);
        comm.barrier().unwrap();
        assert_eq!(
            comm.allreduce(&[7i32], mpfa::mpi::Op::Sum).unwrap(),
            vec![7]
        );
        assert_eq!(comm.allgather(&[1u8]).unwrap(), vec![1]);
        true
    });
    assert!(results[0]);
}

#[test]
fn empty_messages_flow_through_every_path() {
    let results = run_ranks(WorldConfig::instant_nodes(4, 2), |proc| {
        let comm = proc.world_comm();
        let rank = comm.rank();
        for peer in 0..comm.size() as i32 {
            if peer == rank {
                continue;
            }
            comm.isend::<u8>(&[], peer, rank).unwrap();
        }
        for peer in 0..comm.size() as i32 {
            if peer == rank {
                continue;
            }
            let (data, status) = comm.recv::<u8>(0, peer, peer).unwrap();
            assert!(data.is_empty());
            assert_eq!(status.bytes, 0);
        }
        true
    });
    assert!(results.iter().all(|&ok| ok));
}

//! Property-based tests: collectives (native and user-level) against
//! serial references, for arbitrary payloads and rank counts, on the
//! cooperative driver (deterministic on any host).

mod common;

use common::Coop;
use mpfa::interop::user_coll::my_iallreduce;
use mpfa::mpi::{Op, WorldConfig};
use proptest::prelude::*;

const MAX_SWEEPS: u64 = 10_000_000;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn allreduce_sum_matches_serial(
        ranks in 1usize..9,
        data in proptest::collection::vec(-1000i64..1000, 1..20),
    ) {
        let w = Coop::new(WorldConfig::instant(ranks));
        let comms = w.comms();
        let futs: Vec<_> = comms
            .iter()
            .map(|c| {
                let mine: Vec<i64> =
                    data.iter().map(|v| v * (c.rank() as i64 + 1)).collect();
                c.iallreduce(&mine, Op::Sum).unwrap()
            })
            .collect();
        w.drive(|| futs.iter().all(|f| f.is_complete()), MAX_SWEEPS);
        let factor: i64 = (1..=ranks as i64).sum();
        let expect: Vec<i64> = data.iter().map(|v| v * factor).collect();
        for f in futs {
            prop_assert_eq!(f.take(), expect.clone());
        }
    }

    #[test]
    fn allreduce_min_max_match_serial(
        ranks in 1usize..7,
        base in proptest::collection::vec(any::<i32>(), 1..10),
    ) {
        let w = Coop::new(WorldConfig::instant(ranks));
        let comms = w.comms();
        // Rank r's value at index i: base[i] rotated by r.
        let value = |r: usize, i: usize| base[(i + r) % base.len()];
        let maxs: Vec<_> = comms
            .iter()
            .map(|c| {
                let mine: Vec<i32> =
                    (0..base.len()).map(|i| value(c.rank() as usize, i)).collect();
                c.iallreduce(&mine, Op::Max).unwrap()
            })
            .collect();
        w.drive(|| maxs.iter().all(|f| f.is_complete()), MAX_SWEEPS);
        for f in maxs {
            let got = f.take();
            for (i, v) in got.iter().enumerate() {
                let expect = (0..ranks).map(|r| value(r, i)).max().unwrap();
                prop_assert_eq!(*v, expect);
            }
        }
    }

    #[test]
    fn user_allreduce_equals_native_allreduce(
        log_ranks in 0u32..4,
        data in proptest::collection::vec(-10_000i32..10_000, 1..16),
    ) {
        let ranks = 1usize << log_ranks;
        let w = Coop::new(WorldConfig::instant(ranks));
        let comms = w.comms();

        let native: Vec<_> = comms
            .iter()
            .map(|c| {
                let mine: Vec<i32> = data.iter().map(|v| v ^ c.rank()).collect();
                c.iallreduce(&mine, Op::Sum).unwrap()
            })
            .collect();
        w.drive(|| native.iter().all(|f| f.is_complete()), MAX_SWEEPS);
        let native: Vec<Vec<i32>> = native.into_iter().map(|f| f.take()).collect();

        let user: Vec<_> = comms
            .iter()
            .map(|c| {
                let mine: Vec<i32> = data.iter().map(|v| v ^ c.rank()).collect();
                my_iallreduce(c, mine).unwrap()
            })
            .collect();
        w.drive(|| user.iter().all(|f| f.is_complete()), MAX_SWEEPS);
        for (n, u) in native.into_iter().zip(user) {
            prop_assert_eq!(n, u.take());
        }
    }

    #[test]
    fn allgather_concatenates_in_rank_order(
        ranks in 1usize..7,
        block in 0usize..8,
    ) {
        let w = Coop::new(WorldConfig::instant(ranks));
        let comms = w.comms();
        let futs: Vec<_> = comms
            .iter()
            .map(|c| {
                let mine: Vec<u32> =
                    (0..block).map(|i| (c.rank() as u32) * 1000 + i as u32).collect();
                c.iallgather(&mine).unwrap()
            })
            .collect();
        w.drive(|| futs.iter().all(|f| f.is_complete()), MAX_SWEEPS);
        let mut expect = Vec::new();
        for r in 0..ranks as u32 {
            for i in 0..block as u32 {
                expect.push(r * 1000 + i);
            }
        }
        for f in futs {
            prop_assert_eq!(f.take(), expect.clone());
        }
    }

    #[test]
    fn alltoall_is_a_transpose(ranks in 1usize..6, count in 1usize..4) {
        let w = Coop::new(WorldConfig::instant(ranks));
        let comms = w.comms();
        let futs: Vec<_> = comms
            .iter()
            .map(|c| {
                let mine: Vec<i32> = (0..ranks * count)
                    .map(|i| (c.rank() as usize * 10_000 + i) as i32)
                    .collect();
                c.ialltoall(&mine, count).unwrap()
            })
            .collect();
        w.drive(|| futs.iter().all(|f| f.is_complete()), MAX_SWEEPS);
        for (dst, f) in futs.into_iter().enumerate() {
            let got = f.take();
            for src in 0..ranks {
                for k in 0..count {
                    let expect = (src * 10_000 + dst * count + k) as i32;
                    prop_assert_eq!(got[src * count + k], expect);
                }
            }
        }
    }

    #[test]
    fn bcast_delivers_root_payload(
        ranks in 1usize..7,
        root_choice in any::<usize>(),
        data in proptest::collection::vec(any::<i16>(), 0..12),
    ) {
        let root = (root_choice % ranks) as i32;
        let w = Coop::new(WorldConfig::instant(ranks));
        let comms = w.comms();
        let futs: Vec<_> = comms
            .iter()
            .map(|c| {
                if c.rank() == root {
                    c.ibcast(Some(&data[..]), data.len(), root).unwrap()
                } else {
                    c.ibcast::<i16>(None, data.len(), root).unwrap()
                }
            })
            .collect();
        w.drive(|| futs.iter().all(|f| f.is_complete()), MAX_SWEEPS);
        for f in futs {
            prop_assert_eq!(f.take(), data.clone());
        }
    }
}

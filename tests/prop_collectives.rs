//! Randomized-property tests: collectives (native and user-level) against
//! serial references, for arbitrary payloads and rank counts, on the
//! cooperative driver (deterministic on any host). Cases are generated
//! from fixed seeds (see `common::Rng`).

mod common;

use common::{Coop, Rng};
use mpfa::interop::user_coll::my_iallreduce;
use mpfa::mpi::{Op, WorldConfig};

const MAX_SWEEPS: u64 = 10_000_000;

#[test]
fn allreduce_sum_matches_serial() {
    for seed in 0..24u64 {
        let mut rng = Rng::new(seed);
        let ranks = rng.usize_in(1, 9);
        let data = rng.vec_in(1, 20, |r| r.i64_in(-1000, 1000));

        let w = Coop::new(WorldConfig::instant(ranks));
        let comms = w.comms();
        let futs: Vec<_> = comms
            .iter()
            .map(|c| {
                let mine: Vec<i64> = data.iter().map(|v| v * (c.rank() as i64 + 1)).collect();
                c.iallreduce(&mine, Op::Sum).unwrap()
            })
            .collect();
        w.drive(|| futs.iter().all(|f| f.is_complete()), MAX_SWEEPS);
        let factor: i64 = (1..=ranks as i64).sum();
        let expect: Vec<i64> = data.iter().map(|v| v * factor).collect();
        for f in futs {
            assert_eq!(f.take(), expect.clone(), "seed {seed}");
        }
    }
}

#[test]
fn allreduce_min_max_match_serial() {
    for seed in 0..24u64 {
        let mut rng = Rng::new(seed);
        let ranks = rng.usize_in(1, 7);
        let base = rng.vec_in(1, 10, |r| r.next_u64() as i32);

        let w = Coop::new(WorldConfig::instant(ranks));
        let comms = w.comms();
        // Rank r's value at index i: base[i] rotated by r.
        let value = |r: usize, i: usize| base[(i + r) % base.len()];
        let maxs: Vec<_> = comms
            .iter()
            .map(|c| {
                let mine: Vec<i32> = (0..base.len())
                    .map(|i| value(c.rank() as usize, i))
                    .collect();
                c.iallreduce(&mine, Op::Max).unwrap()
            })
            .collect();
        w.drive(|| maxs.iter().all(|f| f.is_complete()), MAX_SWEEPS);
        for f in maxs {
            let got = f.take();
            for (i, v) in got.iter().enumerate() {
                let expect = (0..ranks).map(|r| value(r, i)).max().unwrap();
                assert_eq!(*v, expect, "seed {seed}");
            }
        }
    }
}

#[test]
fn user_allreduce_equals_native_allreduce() {
    for seed in 0..24u64 {
        let mut rng = Rng::new(seed);
        let ranks = 1usize << rng.usize_in(0, 4);
        let data = rng.vec_in(1, 16, |r| r.i32_in(-10_000, 10_000));

        let w = Coop::new(WorldConfig::instant(ranks));
        let comms = w.comms();

        let native: Vec<_> = comms
            .iter()
            .map(|c| {
                let mine: Vec<i32> = data.iter().map(|v| v ^ c.rank()).collect();
                c.iallreduce(&mine, Op::Sum).unwrap()
            })
            .collect();
        w.drive(|| native.iter().all(|f| f.is_complete()), MAX_SWEEPS);
        let native: Vec<Vec<i32>> = native.into_iter().map(|f| f.take()).collect();

        let user: Vec<_> = comms
            .iter()
            .map(|c| {
                let mine: Vec<i32> = data.iter().map(|v| v ^ c.rank()).collect();
                my_iallreduce(c, mine).unwrap()
            })
            .collect();
        w.drive(|| user.iter().all(|f| f.is_complete()), MAX_SWEEPS);
        for (n, u) in native.into_iter().zip(user) {
            assert_eq!(n, u.take(), "seed {seed}");
        }
    }
}

#[test]
fn allgather_concatenates_in_rank_order() {
    for seed in 0..24u64 {
        let mut rng = Rng::new(seed);
        let ranks = rng.usize_in(1, 7);
        let block = rng.usize_in(0, 8);

        let w = Coop::new(WorldConfig::instant(ranks));
        let comms = w.comms();
        let futs: Vec<_> = comms
            .iter()
            .map(|c| {
                let mine: Vec<u32> = (0..block)
                    .map(|i| (c.rank() as u32) * 1000 + i as u32)
                    .collect();
                c.iallgather(&mine).unwrap()
            })
            .collect();
        w.drive(|| futs.iter().all(|f| f.is_complete()), MAX_SWEEPS);
        let mut expect = Vec::new();
        for r in 0..ranks as u32 {
            for i in 0..block as u32 {
                expect.push(r * 1000 + i);
            }
        }
        for f in futs {
            assert_eq!(f.take(), expect.clone(), "seed {seed}");
        }
    }
}

#[test]
fn alltoall_is_a_transpose() {
    for seed in 0..24u64 {
        let mut rng = Rng::new(seed);
        let ranks = rng.usize_in(1, 6);
        let count = rng.usize_in(1, 4);

        let w = Coop::new(WorldConfig::instant(ranks));
        let comms = w.comms();
        let futs: Vec<_> = comms
            .iter()
            .map(|c| {
                let mine: Vec<i32> = (0..ranks * count)
                    .map(|i| (c.rank() as usize * 10_000 + i) as i32)
                    .collect();
                c.ialltoall(&mine, count).unwrap()
            })
            .collect();
        w.drive(|| futs.iter().all(|f| f.is_complete()), MAX_SWEEPS);
        for (dst, f) in futs.into_iter().enumerate() {
            let got = f.take();
            for src in 0..ranks {
                for k in 0..count {
                    let expect = (src * 10_000 + dst * count + k) as i32;
                    assert_eq!(got[src * count + k], expect, "seed {seed}");
                }
            }
        }
    }
}

#[test]
fn bcast_delivers_root_payload() {
    for seed in 0..24u64 {
        let mut rng = Rng::new(seed);
        let ranks = rng.usize_in(1, 7);
        let root = (rng.next_u64() as usize % ranks) as i32;
        let data = rng.vec_in(0, 12, |r| r.next_u64() as i16);

        let w = Coop::new(WorldConfig::instant(ranks));
        let comms = w.comms();
        let futs: Vec<_> = comms
            .iter()
            .map(|c| {
                if c.rank() == root {
                    c.ibcast(Some(&data[..]), data.len(), root).unwrap()
                } else {
                    c.ibcast::<i16>(None, data.len(), root).unwrap()
                }
            })
            .collect();
        w.drive(|| futs.iter().all(|f| f.is_complete()), MAX_SWEEPS);
        for f in futs {
            assert_eq!(f.take(), data.clone(), "seed {seed}");
        }
    }
}

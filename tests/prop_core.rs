//! Randomized-property tests of the core progress engine: for arbitrary
//! mixtures of task behaviors, the engine must drain, account, and
//! isolate correctly. Cases are generated from fixed seeds (see
//! `common::Rng`) so every run is deterministic.

mod common;

use common::Rng;
use mpfa::core::{AsyncPoll, CompletionCounter, Stream};

/// A task's scripted behavior.
#[derive(Debug, Clone, Copy)]
enum Behavior {
    /// Complete after `polls` pending polls.
    CompleteAfter { polls: u8 },
    /// Report progress `progresses` times, then complete.
    ProgressThenDone { progresses: u8 },
    /// Panic on poll number `at` (0-based).
    PanicAt { at: u8 },
    /// Spawn `children` instant children, then complete.
    SpawnThenDone { children: u8 },
}

fn random_behavior(rng: &mut Rng) -> Behavior {
    match rng.usize_in(0, 4) {
        0 => Behavior::CompleteAfter {
            polls: rng.usize_in(0, 8) as u8,
        },
        1 => Behavior::ProgressThenDone {
            progresses: rng.usize_in(0, 5) as u8,
        },
        2 => Behavior::PanicAt {
            at: rng.usize_in(0, 4) as u8,
        },
        _ => Behavior::SpawnThenDone {
            children: rng.usize_in(0, 6) as u8,
        },
    }
}

#[test]
fn engine_drains_any_task_mixture() {
    for seed in 0..64u64 {
        let mut rng = Rng::new(seed);
        let behaviors = rng.vec_in(0, 40, random_behavior);

        let stream = Stream::create();
        let completions = CompletionCounter::new(0);
        let mut expected_completions = 0usize;
        let mut expected_poisoned = 0u64;

        for b in &behaviors {
            match *b {
                Behavior::CompleteAfter { polls } => {
                    expected_completions += 1;
                    let mut left = polls;
                    let done = completions.clone();
                    done.add(1);
                    stream.async_start(move |_t| {
                        if left == 0 {
                            done.done();
                            AsyncPoll::Done
                        } else {
                            left -= 1;
                            AsyncPoll::Pending
                        }
                    });
                }
                Behavior::ProgressThenDone { progresses } => {
                    expected_completions += 1;
                    let mut left = progresses;
                    let done = completions.clone();
                    done.add(1);
                    stream.async_start(move |_t| {
                        if left == 0 {
                            done.done();
                            AsyncPoll::Done
                        } else {
                            left -= 1;
                            AsyncPoll::Progress
                        }
                    });
                }
                Behavior::PanicAt { at } => {
                    expected_poisoned += 1;
                    let mut n = 0;
                    stream.async_start(move |_t| {
                        if n == at {
                            panic!("scripted poison");
                        }
                        n += 1;
                        AsyncPoll::Pending
                    });
                }
                Behavior::SpawnThenDone { children } => {
                    expected_completions += 1 + children as usize;
                    let done = completions.clone();
                    done.add(1 + children as usize);
                    stream.async_start(move |t| {
                        for _ in 0..children {
                            let d = done.clone();
                            t.spawn(move |_t2| {
                                d.done();
                                AsyncPoll::Done
                            });
                        }
                        done.done();
                        AsyncPoll::Done
                    });
                }
            }
        }

        assert!(stream.drain(10.0), "engine failed to drain (seed {seed})");
        assert_eq!(stream.pending_tasks(), 0, "seed {seed}");
        assert_eq!(completions.remaining(), 0, "seed {seed}");
        assert_eq!(stream.poisoned_tasks(), expected_poisoned, "seed {seed}");
        let stats = stream.stats();
        assert_eq!(
            stats.task_completions, expected_completions as u64,
            "seed {seed}"
        );
        assert!(stats.task_polls >= stats.task_completions, "seed {seed}");
    }
}

#[test]
fn pending_count_is_exact_at_every_step() {
    for seed in 0..32u64 {
        let mut rng = Rng::new(seed);
        let batch_sizes = rng.vec_in(1, 6, |r| r.usize_in(1, 10));

        let stream = Stream::create();
        let mut alive = 0usize;
        for batch in &batch_sizes {
            for _ in 0..*batch {
                // Complete after exactly one poll.
                let mut first = true;
                stream.async_start(move |_t| {
                    if first {
                        first = false;
                        AsyncPoll::Pending
                    } else {
                        AsyncPoll::Done
                    }
                });
                alive += 1;
            }
            assert_eq!(stream.pending_tasks(), alive, "seed {seed}");
            // One progress: nobody completes on the first poll.
            stream.progress();
            assert_eq!(stream.pending_tasks(), alive, "seed {seed}");
            // Second progress: this batch and all previous complete.
            stream.progress();
            alive = 0;
            assert_eq!(stream.pending_tasks(), 0, "seed {seed}");
        }
    }
}

#[test]
fn drain_is_idempotent() {
    for extra_drains in 1usize..5 {
        let stream = Stream::create();
        stream.async_start(|_t| AsyncPoll::Done);
        for _ in 0..extra_drains {
            assert!(stream.drain(1.0));
        }
        assert_eq!(stream.pending_tasks(), 0);
    }
}

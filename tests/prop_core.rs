//! Property-based tests of the core progress engine: for arbitrary
//! mixtures of task behaviors, the engine must drain, account, and
//! isolate correctly.

use mpfa::core::{AsyncPoll, CompletionCounter, Stream};
use proptest::prelude::*;

/// A task's scripted behavior.
#[derive(Debug, Clone)]
enum Behavior {
    /// Complete after `polls` pending polls.
    CompleteAfter { polls: u8 },
    /// Report progress `progresses` times, then complete.
    ProgressThenDone { progresses: u8 },
    /// Panic on poll number `at` (0-based).
    PanicAt { at: u8 },
    /// Spawn `children` instant children, then complete.
    SpawnThenDone { children: u8 },
}

fn behavior_strategy() -> impl Strategy<Value = Behavior> {
    prop_oneof![
        (0u8..8).prop_map(|polls| Behavior::CompleteAfter { polls }),
        (0u8..5).prop_map(|progresses| Behavior::ProgressThenDone { progresses }),
        (0u8..4).prop_map(|at| Behavior::PanicAt { at }),
        (0u8..6).prop_map(|children| Behavior::SpawnThenDone { children }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn engine_drains_any_task_mixture(behaviors in proptest::collection::vec(behavior_strategy(), 0..40)) {
        let stream = Stream::create();
        let completions = CompletionCounter::new(0);
        let mut expected_completions = 0usize;
        let mut expected_poisoned = 0u64;

        for b in &behaviors {
            match *b {
                Behavior::CompleteAfter { polls } => {
                    expected_completions += 1;
                    let mut left = polls;
                    let done = completions.clone();
                    done.add(1);
                    stream.async_start(move |_t| {
                        if left == 0 {
                            done.done();
                            AsyncPoll::Done
                        } else {
                            left -= 1;
                            AsyncPoll::Pending
                        }
                    });
                }
                Behavior::ProgressThenDone { progresses } => {
                    expected_completions += 1;
                    let mut left = progresses;
                    let done = completions.clone();
                    done.add(1);
                    stream.async_start(move |_t| {
                        if left == 0 {
                            done.done();
                            AsyncPoll::Done
                        } else {
                            left -= 1;
                            AsyncPoll::Progress
                        }
                    });
                }
                Behavior::PanicAt { at } => {
                    expected_poisoned += 1;
                    let mut n = 0;
                    stream.async_start(move |_t| {
                        if n == at {
                            panic!("scripted poison");
                        }
                        n += 1;
                        AsyncPoll::Pending
                    });
                }
                Behavior::SpawnThenDone { children } => {
                    expected_completions += 1 + children as usize;
                    let done = completions.clone();
                    done.add(1 + children as usize);
                    stream.async_start(move |t| {
                        for _ in 0..children {
                            let d = done.clone();
                            t.spawn(move |_t2| {
                                d.done();
                                AsyncPoll::Done
                            });
                        }
                        done.done();
                        AsyncPoll::Done
                    });
                }
            }
        }

        prop_assert!(stream.drain(10.0), "engine failed to drain");
        prop_assert_eq!(stream.pending_tasks(), 0);
        prop_assert_eq!(completions.remaining(), 0);
        prop_assert_eq!(stream.poisoned_tasks(), expected_poisoned);
        let stats = stream.stats();
        prop_assert_eq!(stats.task_completions, expected_completions as u64);
        prop_assert!(stats.task_polls >= stats.task_completions);
    }

    #[test]
    fn pending_count_is_exact_at_every_step(
        batch_sizes in proptest::collection::vec(1usize..10, 1..6),
    ) {
        let stream = Stream::create();
        let mut alive = 0usize;
        for batch in &batch_sizes {
            for _ in 0..*batch {
                // Complete after exactly one poll.
                let mut first = true;
                stream.async_start(move |_t| {
                    if first {
                        first = false;
                        AsyncPoll::Pending
                    } else {
                        AsyncPoll::Done
                    }
                });
                alive += 1;
            }
            prop_assert_eq!(stream.pending_tasks(), alive);
            // One progress: nobody completes on the first poll.
            stream.progress();
            prop_assert_eq!(stream.pending_tasks(), alive);
            // Second progress: this batch and all previous complete.
            stream.progress();
            alive = 0;
            prop_assert_eq!(stream.pending_tasks(), 0);
        }
    }

    #[test]
    fn drain_is_idempotent(extra_drains in 1usize..5) {
        let stream = Stream::create();
        stream.async_start(|_t| AsyncPoll::Done);
        for _ in 0..extra_drains {
            prop_assert!(stream.drain(1.0));
        }
        prop_assert_eq!(stream.pending_tasks(), 0);
    }
}

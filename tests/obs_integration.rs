//! End-to-end observability tests: real runtime activity recorded through
//! the `obs` event layer, exported as a Chrome trace, and analyzed by the
//! progress doctor. Compiled only with `--features obs` (without it there
//! are no events to observe).
#![cfg(feature = "obs")]

use mpfa::core::{AsyncPoll, Stream};
use mpfa::mpi::{World, WorldConfig};
use mpfa::obs::{diagnose, DoctorConfig, EventKind};

mod common;
use common::Coop;

/// Events recorded on this thread for the given stream ids.
fn events_for(streams: &[u64]) -> Vec<mpfa::obs::Event> {
    mpfa::obs::snapshot_all()
        .iter()
        .flat_map(|s| s.events.iter().cloned())
        .filter(|e| match e.kind {
            EventKind::HookRegistered { stream, .. }
            | EventKind::HookPoll { stream, .. }
            | EventKind::StreamProgress { stream, .. }
            | EventKind::TaskStart { stream, .. }
            | EventKind::TaskPoll { stream, .. }
            | EventKind::RequestComplete { stream, .. } => streams.contains(&stream),
            _ => false,
        })
        .collect()
}

fn snap_of(events: Vec<mpfa::obs::Event>) -> mpfa::obs::ThreadSnapshot {
    mpfa::obs::ThreadSnapshot {
        label: "test".into(),
        pushed: events.len() as u64,
        dropped: 0,
        events,
    }
}

#[test]
fn doctor_flags_deliberate_no_poller_stall() {
    // A task started on a stream that nobody ever progresses: the classic
    // "progress for all" user error the doctor exists to catch.
    let stalled = Stream::create();
    stalled.async_start(|_t| AsyncPoll::Pending);
    // Note: NO progress() call on `stalled`.

    let events = events_for(&[stalled.id().raw()]);
    let report = diagnose(&[snap_of(events)], &DoctorConfig::default());
    assert!(!report.healthy(), "expected a finding, got: {report}");
    let crit = report.criticals().next().expect("a critical finding");
    assert!(
        crit.title.contains("no poller"),
        "wrong finding: {}",
        crit.title
    );
    assert!(crit.advice.contains("MPIX_Stream_progress"));
}

#[test]
fn doctor_is_healthy_for_progressed_stream() {
    let s = Stream::create();
    let mut polls = 0;
    s.async_start(move |_t| {
        polls += 1;
        if polls >= 3 {
            AsyncPoll::Done
        } else {
            AsyncPoll::Pending
        }
    });
    assert!(s.drain(1.0));

    let events = events_for(&[s.id().raw()]);
    let report = diagnose(&[snap_of(events)], &DoctorConfig::default());
    assert!(report.healthy(), "unexpected findings: {report}");
    // The sweeps and the task lifecycle were all recorded.
    assert!(events_for(&[s.id().raw()])
        .iter()
        .any(|e| matches!(e.kind, EventKind::StreamProgress { .. })));
    assert!(events_for(&[s.id().raw()]).iter().any(|e| matches!(
        e.kind,
        EventKind::TaskPoll {
            verdict: mpfa::obs::TaskVerdict::Done,
            ..
        }
    )));
}

#[test]
fn mpi_traffic_records_protocol_events_and_valid_trace() {
    // Drive a real 2-rank exchange (eager + rendezvous) and check the
    // protocol transitions show up and export as balanced Chrome JSON.
    let w = Coop::new(WorldConfig::instant(2));
    let comms = w.comms();
    let small = comms[0].isend(&[1i32, 2, 3], 1, 7).unwrap();
    let r_small = comms[1].irecv::<i32>(3, 0, 7).unwrap();
    let big_payload = vec![7u8; 512 * 1024];
    let big = comms[0].isend(&big_payload, 1, 8).unwrap();
    let r_big = comms[1].irecv::<u8>(512 * 1024, 0, 8).unwrap();
    w.drive(
        || small.is_complete() && r_small.is_complete() && big.is_complete() && r_big.is_complete(),
        10_000_000,
    );

    let snaps = mpfa::obs::snapshot_all();
    let all: Vec<_> = snaps.iter().flat_map(|s| s.events.iter()).collect();
    assert!(
        all.iter()
            .any(|e| matches!(e.kind, EventKind::FabricTx { .. })),
        "no fabric TX events recorded"
    );
    assert!(
        all.iter()
            .any(|e| matches!(e.kind, EventKind::RndvRts { .. })),
        "no rendezvous RTS recorded for a 512KiB send"
    );
    assert!(
        all.iter()
            .any(|e| matches!(e.kind, EventKind::RndvDone { sender: true, .. })),
        "rendezvous never completed on the sender side"
    );

    // The exported trace must parse as one JSON object with traceEvents.
    let json = mpfa::obs::trace::chrome_trace_json(&snaps);
    assert!(json.starts_with('{') && json.trim_end().ends_with('}'));
    assert!(json.contains("\"traceEvents\""));
    let mut depth = 0i64;
    let mut in_str = false;
    let mut esc = false;
    for c in json.chars() {
        if esc {
            esc = false;
            continue;
        }
        match c {
            '\\' if in_str => esc = true,
            '"' => in_str = !in_str,
            '{' | '[' if !in_str => depth += 1,
            '}' | ']' if !in_str => depth -= 1,
            _ => {}
        }
        assert!(depth >= 0, "unbalanced JSON");
    }
    assert_eq!(depth, 0, "unbalanced JSON");
    assert!(!in_str, "unterminated string");
}

#[test]
fn global_counters_track_real_traffic() {
    let before = mpfa::obs::global_counters().snapshot();
    let w = Coop::new(WorldConfig::instant(2));
    let comms = w.comms();
    let s = comms[0].isend(&[42i64], 1, 1).unwrap();
    let r = comms[1].irecv::<i64>(1, 0, 1).unwrap();
    w.drive(|| s.is_complete() && r.is_complete(), 10_000_000);
    drop(w);
    let after = mpfa::obs::global_counters().snapshot();
    assert!(after.sweeps > before.sweeps, "no sweeps counted");
    assert!(
        after.msgs_total() > before.msgs_total(),
        "no packets counted"
    );
    assert!(
        after.request_completions > before.request_completions,
        "no request completions counted"
    );
}

#[test]
fn world_streams_register_named_hooks() {
    let procs = World::init(WorldConfig::instant(1));
    let sid = procs[0].default_stream().id().raw();
    let events = events_for(&[sid]);
    let registered: Vec<String> = events
        .iter()
        .filter_map(|e| match e.kind {
            EventKind::HookRegistered { name, .. } => Some(name.resolve()),
            _ => None,
        })
        .collect();
    assert!(
        !registered.is_empty(),
        "world construction should register progress hooks"
    );
}

//! Differential test for the epoll readiness reactor: the wire backends
//! must produce byte-identical behaviour whether readiness comes from
//! the reactor (default) or from the legacy speculative scan, and all
//! backends must agree with the simulated fabric.
//!
//! Beyond payload equivalence (which `transport_equiv.rs` also covers),
//! this binary checks the properties the reactor *changes*:
//!
//! * syscall economy — a workload over TCP must bank
//!   `wire_syscalls_saved` (peers skipped because the reactor knew they
//!   were quiet) and `reactor_wakeups` (epoll wakeups published);
//! * settle-to-quiet — a drained mesh stops reporting `external_work`,
//!   so the progress engine can suppress netmod polls at idle;
//! * peer death — liveness evidence after a kill schedule is identical
//!   across backends with the reactor consuming readiness;
//! * reconnect backoff — retry timers run on `wtime()`, so a frozen
//!   DST virtual clock steps the budget deterministically instead of
//!   racing the wall clock (the `failure_injection.rs` idiom).
//!
//! Wire-backed tests hold [`mpfa::dst::real_time`] so a concurrently
//! scheduled virtual-clock test can never freeze `wtime()` under their
//! progress deadlines; the backoff test takes the virtual guard.

mod common;

use std::sync::Arc;

use common::run_ranks;
use mpfa::mpi::protocol::ProtoConfig;
use mpfa::mpi::wire::WireMsg;
use mpfa::mpi::{Comm, Op, Proc, World, WorldConfig};
use mpfa::transport::{
    loopback_mesh, mesh_kill, reactor_enabled, Path, Transport, TransportKind, WireOpts,
};

const RANKS: usize = 3;

/// Sizes crossing buffered / eager / rendezvous under [`proto`].
const SIZES: [usize; 3] = [16, 2048, 48_000];

fn proto() -> ProtoConfig {
    ProtoConfig {
        buffered_max: 64,
        eager_max: 4096,
        chunk: 8192,
        depth: 2,
    }
}

fn config() -> WorldConfig {
    WorldConfig {
        proto: proto(),
        ..WorldConfig::instant(RANKS)
    }
}

fn payload(src: i32, k: usize) -> Vec<u8> {
    (0..SIZES[k % SIZES.len()])
        .map(|i| (src as usize * 37 + k * 11 + i) as u8)
        .collect()
}

/// Everything one rank observed, compared bitwise across transports.
#[derive(Debug, PartialEq, Eq)]
struct RankRecord {
    inbound: Vec<((i32, i32), Vec<u8>)>,
    sum: Vec<i64>,
}

/// Bursty all-to-all: every rank fires a burst at every peer, then
/// waits — exactly the pattern where the reactor's readiness bitmap
/// (sweep only who has bytes) diverges from the legacy scan (touch
/// every peer every pump).
fn workload(comm: &Comm) -> RankRecord {
    let me = comm.rank();
    let size = comm.size() as i32;
    let mut recvs = Vec::new();
    for src in 0..size {
        if src == me {
            continue;
        }
        for k in 0..SIZES.len() {
            recvs.push((src, comm.irecv::<u8>(64 * 1024, src, k as i32).unwrap()));
        }
    }
    let mut sends = Vec::new();
    for dst in 0..size {
        if dst == me {
            continue;
        }
        for k in 0..SIZES.len() {
            sends.push(comm.isend_bytes(payload(me, k), dst, k as i32).unwrap());
        }
    }
    let mut inbound = Vec::new();
    for (src, r) in recvs {
        let (data, status) = r.wait();
        assert_eq!(status.source, src);
        inbound.push(((src, status.tag), data));
    }
    for s in sends {
        s.wait();
    }
    let mine: Vec<i64> = (0..6).map(|i| (me as i64 + 1) * (i + 3)).collect();
    let sum = comm.allreduce(&mine, Op::Sum).unwrap();
    comm.barrier().unwrap();
    RankRecord { inbound, sum }
}

fn run_wire(kind: TransportKind) -> Vec<RankRecord> {
    let cfg = config();
    let mesh = loopback_mesh::<WireMsg>(kind, RANKS, cfg.max_vcis, WireOpts::default())
        .expect("loopback mesh");
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..RANKS)
            .map(|rank| {
                let cfg = WorldConfig {
                    transport: kind,
                    ..cfg.clone()
                };
                let port = mesh[rank].clone();
                s.spawn(move || {
                    let proc: Proc = World::init_with_transport(cfg, rank, port);
                    workload(&proc.world_comm())
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("rank thread panicked"))
            .collect()
    })
}

fn check_payloads(records: &[RankRecord], what: &str) {
    for (rank, rec) in records.iter().enumerate() {
        assert_eq!(
            rec.inbound.len(),
            (RANKS - 1) * SIZES.len(),
            "{what} rank {rank}"
        );
        for ((src, tag), data) in &rec.inbound {
            assert_eq!(
                data,
                &payload(*src, *tag as usize),
                "{what}: rank {rank} payload from ({src},{tag})"
            );
        }
    }
}

/// The tentpole differential: the same workload, byte-identical over
/// the simulated fabric and all three reactor-driven wire backends —
/// and the reactor must have banked saved syscalls and wakeups doing it.
#[test]
fn reactor_path_agrees_across_backends_and_saves_syscalls() {
    let _rt = mpfa::dst::real_time();
    let counters = mpfa::obs::global_counters();
    let saved0 = counters
        .wire_syscalls_saved
        .load(std::sync::atomic::Ordering::Relaxed);
    let wake0 = counters
        .reactor_wakeups
        .load(std::sync::atomic::Ordering::Relaxed);

    let sim = run_ranks(config(), |p| workload(&p.world_comm()));
    let tcp = run_wire(TransportKind::Tcp);
    check_payloads(&sim, "sim");
    check_payloads(&tcp, "tcp");
    assert_eq!(sim, tcp, "sim and TCP diverged under the reactor");
    #[cfg(unix)]
    {
        let uds = run_wire(TransportKind::Uds);
        check_payloads(&uds, "uds");
        assert_eq!(sim, uds, "sim and UDS diverged under the reactor");
        let shm = run_wire(TransportKind::Shm);
        check_payloads(&shm, "shm");
        assert_eq!(sim, shm, "sim and SHM diverged under the reactor");
    }

    if reactor_enabled() {
        let saved = counters
            .wire_syscalls_saved
            .load(std::sync::atomic::Ordering::Relaxed);
        let wakes = counters
            .reactor_wakeups
            .load(std::sync::atomic::Ordering::Relaxed);
        assert!(
            saved > saved0,
            "reactor pump never skipped a quiet peer (saved {saved0} -> {saved})"
        );
        assert!(
            wakes > wake0,
            "epoll thread never published a wakeup ({wake0} -> {wakes})"
        );
    }
}

/// A drained reactor-backed mesh must settle to "no external work" so
/// the progress engine can stop polling it — and a fresh send must
/// re-raise the flag via a reactor wakeup, without the receiver
/// speculatively polling every peer.
#[test]
fn drained_mesh_settles_quiet_and_wakes_on_traffic() {
    let _rt = mpfa::dst::real_time();
    if !reactor_enabled() {
        return; // legacy scan intentionally reports work while peers live
    }
    let mesh =
        loopback_mesh::<Vec<u8>>(TransportKind::Tcp, 2, 1, WireOpts::default()).expect("mesh");
    let deadline = mpfa::core::wtime() + 10.0;
    // Let the hello handshakes finish and drain to quiet.
    while mesh[0].external_work() || mesh[1].external_work() {
        for t in mesh.iter() {
            t.progress();
            let mut sink = Vec::new();
            t.poll(0, Path::Net, usize::MAX, &mut sink);
            t.poll(1, Path::Net, usize::MAX, &mut sink);
        }
        assert!(
            mpfa::core::wtime() < deadline,
            "mesh never settled to external_work == false"
        );
    }
    // Traffic from rank 0 must surface as work on rank 1 without rank 1
    // having polled anything — the eventfd/epoll path, not a scan.
    mesh[0].send(0, 1, vec![0xC3; 512], 512);
    let deadline = mpfa::core::wtime() + 10.0;
    while !mesh[1].external_work() {
        mesh[0].progress(); // sender flushes; receiver only watches its flag
        assert!(
            mpfa::core::wtime() < deadline,
            "reactor wakeup lost: peer readable but external_work stayed false"
        );
    }
    let mut got = Vec::new();
    let deadline = mpfa::core::wtime() + 10.0;
    while got.is_empty() {
        mesh[1].progress();
        mesh[1].poll(1, Path::Net, usize::MAX, &mut got);
        assert!(mpfa::core::wtime() < deadline, "frame never arrived");
    }
    assert_eq!(got[0].msg, vec![0xC3; 512]);
}

/// Liveness evidence after the same kill schedule must be identical
/// across backends when the reactor is consuming readiness (dead-peer
/// counts, per-peer views, refused sends).
#[test]
fn peer_death_liveness_identical_under_reactor() {
    let _rt = mpfa::dst::real_time();
    const VICTIM: usize = 1;

    fn run_schedule(kind: TransportKind) -> Vec<(usize, Vec<bool>, bool)> {
        use mpfa::mpi::wire::MsgHeader;
        let eps = 2;
        let mesh = loopback_mesh::<WireMsg>(kind, RANKS, eps, WireOpts::default()).expect("mesh");
        mesh_kill(&mesh, VICTIM);
        mesh.iter()
            .enumerate()
            .map(|(r, t)| {
                t.progress();
                let refused = r != VICTIM && {
                    let tx = t.send(
                        r * eps,
                        VICTIM * eps,
                        WireMsg::Eager {
                            hdr: MsgHeader {
                                context_id: 0,
                                src_rank: r as i32,
                                tag: 3,
                            },
                            data: vec![0x5A; 24].into(),
                        },
                        24,
                    );
                    tx.is_failed()
                };
                (
                    t.dead_peers(),
                    (0..RANKS).map(|p| t.peer_alive(p)).collect(),
                    refused,
                )
            })
            .collect()
    }

    let sim = run_schedule(TransportKind::Sim);
    let tcp = run_schedule(TransportKind::Tcp);
    assert_eq!(sim, tcp, "sim and TCP liveness diverged");
    #[cfg(unix)]
    {
        assert_eq!(
            sim,
            run_schedule(TransportKind::Uds),
            "UDS liveness diverged"
        );
        assert_eq!(
            sim,
            run_schedule(TransportKind::Shm),
            "SHM liveness diverged"
        );
    }
    for (r, (dead, alive, refused)) in sim.iter().enumerate() {
        if r == VICTIM {
            assert_eq!(*dead, 0, "victim never observes its own death");
            continue;
        }
        assert_eq!(*dead, 1, "rank {r}");
        assert!(*refused, "rank {r}: send to victim must be refused");
        for (p, a) in alive.iter().enumerate() {
            assert_eq!(*a, p != VICTIM, "rank {r} view of {p}");
        }
    }
}

/// Reconnect backoff on the DST virtual clock: retry timers are
/// `wtime()`-based, so freezing the clock and advancing it in fixed
/// quanta burns the retry budget deterministically — no wall-clock
/// sleeps, no flaking on a loaded machine.
#[test]
fn reconnect_backoff_burns_budget_on_virtual_clock() {
    let clk = mpfa::dst::virtual_time(0.0);
    let opts = WireOpts {
        retry_base: 0.05,
        retry_max: 0.2,
        max_attempts: 3,
        ..WireOpts::default()
    };
    let mesh = loopback_mesh::<Vec<u8>>(TransportKind::Tcp, 2, 1, opts).expect("mesh");
    let t1: Arc<dyn Transport<Vec<u8>>> = mesh[1].clone();
    drop(mesh); // rank 0 (listener included) is gone
    t1.send(1, 0, b"void".to_vec(), 4);

    // Total budget: 0.05 + 0.1 + 0.2 virtual seconds of timers. Step in
    // 50ms quanta; progress between steps retries (and fails) the dial.
    // Bounded by *iterations*, not wall time.
    let mut steps = 0u32;
    while t1.dead_peers() == 0 {
        t1.progress();
        clk.advance(0.05);
        steps += 1;
        assert!(
            steps < 200,
            "peer not declared dead after {:.2} virtual seconds",
            f64::from(steps) * 0.05
        );
    }
    assert!(!t1.peer_alive(0));
    assert!(t1.peer_alive(1));
    // The budget is timers, not luck: at 50ms quanta the three retries
    // cannot complete in fewer than 7 steps (0.35s of virtual time).
    assert!(
        steps >= 7,
        "retry budget burned after only {steps} steps — backoff not honored"
    );
    let tx = t1.send(1, 0, b"more".to_vec(), 4);
    assert!(tx.is_failed(), "sends to a dead peer must be refused");
}

//! Differential property test: the bucketed `MatchState` must be
//! observably identical to `LinearMatchState` — the original linear-scan
//! implementation, kept as the executable specification of the MPI
//! matching rules — under random interleavings of wildcard/exact posts,
//! incoming messages, and probes.
//!
//! Identity is checked *per operation*, not just at the end: each posted
//! receive encodes its post index in `capacity` and each incoming message
//! encodes its arrival index in the payload, so any divergence in match
//! *order* (not merely match *count*) fails immediately with the seed.

mod common;

use common::Rng;
use mpfa::core::{Request, Status, Stream};
use mpfa::mpi::matching::{
    LinearMatchState, MatchState, PostedRecv, RecvSlot, Unexpected, ANY_SOURCE, ANY_TAG,
};

#[derive(Debug, Clone, Copy)]
enum Op {
    /// Post a receive for (src, tag); negative = wildcard.
    Post { src: i32, tag: i32 },
    /// An incoming eager message from (src, tag) (always concrete).
    Incoming { src: i32, tag: i32 },
    /// Probe the unexpected queue; negative = wildcard.
    Probe { src: i32, tag: i32 },
}

fn random_op(rng: &mut Rng) -> Op {
    let wild_or = |rng: &mut Rng, wildcard: i32| {
        if rng.usize_in(0, 2) == 0 {
            wildcard
        } else {
            rng.i32_in(0, 3)
        }
    };
    match rng.usize_in(0, 5) {
        0 | 1 => Op::Post {
            src: wild_or(rng, ANY_SOURCE),
            tag: wild_or(rng, ANY_TAG),
        },
        2 | 3 => Op::Incoming {
            src: rng.i32_in(0, 3),
            tag: rng.i32_in(0, 3),
        },
        _ => Op::Probe {
            src: wild_or(rng, ANY_SOURCE),
            tag: wild_or(rng, ANY_TAG),
        },
    }
}

/// Build two identical receives (same post index in `capacity`).
fn recv_pair(
    stream: &Stream,
    src: i32,
    tag: i32,
    post_idx: usize,
) -> ((PostedRecv, Request), (PostedRecv, Request)) {
    let mk = || {
        let (req, completer) = Request::pair(stream);
        (
            PostedRecv {
                src,
                tag,
                // The post's identity, recoverable from a match result.
                capacity: 10_000 + post_idx,
                slot: RecvSlot::new(),
                completer,
            },
            req,
        )
    };
    (mk(), mk())
}

/// Payload for incoming message `idx`: the index, padded so `bytes()`
/// also discriminates between messages.
fn payload(idx: usize) -> Vec<u8> {
    let mut data = (idx as u64).to_ne_bytes().to_vec();
    data.resize(8 + idx % 5, 0xEE);
    data
}

fn unexpected_id(u: &Unexpected) -> (i32, i32, usize) {
    match u {
        Unexpected::Eager { src, tag, data } => {
            let idx = u64::from_ne_bytes(data[..8].try_into().unwrap()) as usize;
            (*src, *tag, idx)
        }
        Unexpected::Rts { .. } => panic!("test only sends eager"),
    }
}

#[test]
fn bucketed_matching_equals_linear_reference() {
    for seed in 0..256u64 {
        let mut rng = Rng::new(seed);
        let ops = rng.vec_in(0, 80, random_op);

        let stream = Stream::create();
        let mut fast = MatchState::new();
        let mut lin = LinearMatchState::new();
        let mut post_count = 0usize;
        let mut incoming_count = 0usize;

        for (step, op) in ops.iter().enumerate() {
            match *op {
                Op::Post { src, tag } => {
                    let idx = post_count;
                    post_count += 1;
                    let ((rf, _qf), (rl, _ql)) = recv_pair(&stream, src, tag, idx);
                    let hit_f = fast.post_recv(rf);
                    let hit_l = lin.post_recv(rl);
                    match (hit_f, hit_l) {
                        (None, None) => {}
                        (Some((recv_f, un_f)), Some((recv_l, un_l))) => {
                            assert_eq!(
                                unexpected_id(&un_f),
                                unexpected_id(&un_l),
                                "post consumed different unexpected msg \
                                 (seed {seed}, step {step})"
                            );
                            recv_f.completer.complete(Status::empty());
                            recv_l.completer.complete(Status::empty());
                        }
                        (f, l) => panic!(
                            "post divergence: bucketed matched {} / linear matched {} \
                             (seed {seed}, step {step})",
                            f.is_some(),
                            l.is_some()
                        ),
                    }
                }
                Op::Incoming { src, tag } => {
                    let idx = incoming_count;
                    incoming_count += 1;
                    let hit_f = fast.match_incoming(src, tag);
                    let hit_l = lin.match_incoming(src, tag);
                    match (hit_f, hit_l) {
                        (None, None) => {
                            fast.push_unexpected(Unexpected::Eager {
                                src,
                                tag,
                                data: payload(idx).into(),
                            });
                            lin.push_unexpected(Unexpected::Eager {
                                src,
                                tag,
                                data: payload(idx).into(),
                            });
                        }
                        (Some(recv_f), Some(recv_l)) => {
                            assert_eq!(
                                recv_f.capacity, recv_l.capacity,
                                "incoming matched different posted recv \
                                 (seed {seed}, step {step})"
                            );
                            recv_f.completer.complete(Status::empty());
                            recv_l.completer.complete(Status::empty());
                        }
                        (f, l) => panic!(
                            "incoming divergence: bucketed matched {} / linear \
                             matched {} (seed {seed}, step {step})",
                            f.is_some(),
                            l.is_some()
                        ),
                    }
                }
                Op::Probe { src, tag } => {
                    assert_eq!(
                        fast.probe_unexpected(src, tag),
                        lin.probe_unexpected(src, tag),
                        "probe divergence (seed {seed}, step {step})"
                    );
                }
            }
            assert_eq!(
                fast.posted_len(),
                lin.posted_len(),
                "seed {seed}, step {step}"
            );
            assert_eq!(
                fast.unexpected_len(),
                lin.unexpected_len(),
                "seed {seed}, step {step}"
            );
        }
    }
}

/// Wildcard-dense variant of the differential test: two thirds of posts
/// and probes use `ANY_SOURCE`/`ANY_TAG`, over a tag space small enough
/// that wildcard and exact receives constantly compete for the same
/// messages. A fresh seed range keeps it from retreading the main test's
/// interleavings.
#[test]
fn any_tag_heavy_interleavings_match_reference() {
    let wildcard_heavy_op = |rng: &mut Rng| -> Op {
        let wild_or = |rng: &mut Rng, wildcard: i32| {
            if rng.usize_in(0, 3) < 2 {
                wildcard
            } else {
                rng.i32_in(0, 2)
            }
        };
        match rng.usize_in(0, 5) {
            0 | 1 => Op::Post {
                src: wild_or(rng, ANY_SOURCE),
                tag: wild_or(rng, ANY_TAG),
            },
            2 | 3 => Op::Incoming {
                src: rng.i32_in(0, 2),
                tag: rng.i32_in(0, 2),
            },
            _ => Op::Probe {
                src: wild_or(rng, ANY_SOURCE),
                tag: wild_or(rng, ANY_TAG),
            },
        }
    };

    for seed in 1000..1256u64 {
        let mut rng = Rng::new(seed);
        let ops = rng.vec_in(0, 80, wildcard_heavy_op);

        let stream = Stream::create();
        let mut fast = MatchState::new();
        let mut lin = LinearMatchState::new();
        let mut post_count = 0usize;
        let mut incoming_count = 0usize;

        for (step, op) in ops.iter().enumerate() {
            match *op {
                Op::Post { src, tag } => {
                    let idx = post_count;
                    post_count += 1;
                    let ((rf, _qf), (rl, _ql)) = recv_pair(&stream, src, tag, idx);
                    match (fast.post_recv(rf), lin.post_recv(rl)) {
                        (None, None) => {}
                        (Some((recv_f, un_f)), Some((recv_l, un_l))) => {
                            assert_eq!(
                                unexpected_id(&un_f),
                                unexpected_id(&un_l),
                                "seed {seed}, step {step}"
                            );
                            recv_f.completer.complete(Status::empty());
                            recv_l.completer.complete(Status::empty());
                        }
                        (f, l) => panic!(
                            "post divergence: bucketed {} / linear {} (seed {seed}, step {step})",
                            f.is_some(),
                            l.is_some()
                        ),
                    }
                }
                Op::Incoming { src, tag } => {
                    let idx = incoming_count;
                    incoming_count += 1;
                    match (fast.match_incoming(src, tag), lin.match_incoming(src, tag)) {
                        (None, None) => {
                            for state in [&mut fast as &mut dyn PushUnexpected, &mut lin] {
                                state.push(Unexpected::Eager {
                                    src,
                                    tag,
                                    data: payload(idx).into(),
                                });
                            }
                        }
                        (Some(recv_f), Some(recv_l)) => {
                            assert_eq!(
                                recv_f.capacity, recv_l.capacity,
                                "seed {seed}, step {step}"
                            );
                            recv_f.completer.complete(Status::empty());
                            recv_l.completer.complete(Status::empty());
                        }
                        (f, l) => panic!(
                            "incoming divergence: bucketed {} / linear {} \
                             (seed {seed}, step {step})",
                            f.is_some(),
                            l.is_some()
                        ),
                    }
                }
                Op::Probe { src, tag } => {
                    assert_eq!(
                        fast.probe_unexpected(src, tag),
                        lin.probe_unexpected(src, tag),
                        "probe divergence (seed {seed}, step {step})"
                    );
                }
            }
            assert_eq!(
                fast.posted_len(),
                lin.posted_len(),
                "seed {seed}, step {step}"
            );
            assert_eq!(
                fast.unexpected_len(),
                lin.unexpected_len(),
                "seed {seed}, step {step}"
            );
        }
    }
}

/// Unify the two implementations behind one trait so the wildcard-heavy
/// test can push unexpected messages to both without duplicating the
/// construction.
trait PushUnexpected {
    fn push(&mut self, msg: Unexpected);
}
impl PushUnexpected for MatchState {
    fn push(&mut self, msg: Unexpected) {
        self.push_unexpected(msg)
    }
}
impl PushUnexpected for LinearMatchState {
    fn push(&mut self, msg: Unexpected) {
        self.push_unexpected(msg)
    }
}

/// A hand-built mixed wildcard/exact interleaving where the *expected*
/// outcome is asserted against the MPI matching rules themselves (not
/// just cross-implementation identity): an incoming message matches the
/// earliest-posted receive that accepts it, and a posted receive
/// consumes unexpected messages in arrival order.
#[test]
fn mixed_wildcard_exact_interleaving_follows_posted_order() {
    let stream = Stream::create();
    let mut fast = MatchState::new();
    let mut lin = LinearMatchState::new();

    let post = |fast: &mut MatchState, lin: &mut LinearMatchState, src, tag, idx| {
        let ((rf, _), (rl, _)) = recv_pair(&stream, src, tag, idx);
        let (hf, hl) = (fast.post_recv(rf), lin.post_recv(rl));
        assert_eq!(hf.is_some(), hl.is_some(), "post {idx} diverged");
        hf.map(|(recv_f, un_f)| {
            let (_, un_l) = hl.unwrap();
            assert_eq!(unexpected_id(&un_f), unexpected_id(&un_l), "post {idx}");
            recv_f.completer.complete(Status::empty());
            unexpected_id(&un_f)
        })
    };

    // Posted queue: [0] exact (0,0) · [1] wildcard (ANY,ANY) · [2] exact (1,1).
    // (An empty unexpected queue: no post can match yet.)
    // The wildcard at [1] shadows [2] for (1,1) messages — posted order wins.
    let p = |f: &mut _, l: &mut _, s, t, i| assert!(post(f, l, s, t, i).is_none());
    p(&mut fast, &mut lin, 0, 0, 0);
    p(&mut fast, &mut lin, ANY_SOURCE, ANY_TAG, 1);
    p(&mut fast, &mut lin, 1, 1, 2);

    let expect_match =
        |fast: &mut MatchState, lin: &mut LinearMatchState, src, tag, want: usize| {
            let (hf, hl) = (fast.match_incoming(src, tag), lin.match_incoming(src, tag));
            let (recv_f, recv_l) = (hf.expect("must match"), hl.expect("must match"));
            assert_eq!(
                recv_f.capacity,
                10_000 + want,
                "bucketed matched wrong post"
            );
            assert_eq!(recv_l.capacity, 10_000 + want, "linear matched wrong post");
            recv_f.completer.complete(Status::empty());
            recv_l.completer.complete(Status::empty());
        };

    // (0,0) → the exact post [0], which predates the wildcard.
    expect_match(&mut fast, &mut lin, 0, 0, 0);
    // (1,1) → the wildcard [1]: posted before the exact (1,1) at [2].
    expect_match(&mut fast, &mut lin, 1, 1, 1);
    // (1,1) again → now the exact [2].
    expect_match(&mut fast, &mut lin, 1, 1, 2);
    assert_eq!(fast.posted_len(), 0);
    assert_eq!(lin.posted_len(), 0);

    // Unexpected side: arrivals 0..2 from src 1 with mixed tags.
    for (idx, tag) in [(0usize, 2i32), (1, 7), (2, 2)] {
        for state in [&mut fast as &mut dyn PushUnexpected, &mut lin] {
            state.push(Unexpected::Eager {
                src: 1,
                tag,
                data: payload(idx).into(),
            });
        }
    }
    // A wildcard-tag post takes the *earliest* arrival from src 1…
    assert_eq!(post(&mut fast, &mut lin, 1, ANY_TAG, 3), Some((1, 2, 0)));
    // …an exact-tag post skips the non-matching tag-7 arrival…
    assert_eq!(post(&mut fast, &mut lin, ANY_SOURCE, 2, 4), Some((1, 2, 2)));
    // …and the skipped message is still there for a full wildcard.
    assert_eq!(
        post(&mut fast, &mut lin, ANY_SOURCE, ANY_TAG, 5),
        Some((1, 7, 1))
    );
    assert_eq!(fast.unexpected_len(), 0);
    assert_eq!(lin.unexpected_len(), 0);
    assert_eq!(fast.probe_unexpected(ANY_SOURCE, ANY_TAG), None);
    assert_eq!(lin.probe_unexpected(ANY_SOURCE, ANY_TAG), None);
}

//! Differential property test: the bucketed `MatchState` must be
//! observably identical to `LinearMatchState` — the original linear-scan
//! implementation, kept as the executable specification of the MPI
//! matching rules — under random interleavings of wildcard/exact posts,
//! incoming messages, and probes.
//!
//! Identity is checked *per operation*, not just at the end: each posted
//! receive encodes its post index in `capacity` and each incoming message
//! encodes its arrival index in the payload, so any divergence in match
//! *order* (not merely match *count*) fails immediately with the seed.

mod common;

use common::Rng;
use mpfa::core::{Request, Status, Stream};
use mpfa::mpi::matching::{
    LinearMatchState, MatchState, PostedRecv, RecvSlot, Unexpected, ANY_SOURCE, ANY_TAG,
};

#[derive(Debug, Clone, Copy)]
enum Op {
    /// Post a receive for (src, tag); negative = wildcard.
    Post { src: i32, tag: i32 },
    /// An incoming eager message from (src, tag) (always concrete).
    Incoming { src: i32, tag: i32 },
    /// Probe the unexpected queue; negative = wildcard.
    Probe { src: i32, tag: i32 },
}

fn random_op(rng: &mut Rng) -> Op {
    let wild_or = |rng: &mut Rng, wildcard: i32| {
        if rng.usize_in(0, 2) == 0 {
            wildcard
        } else {
            rng.i32_in(0, 3)
        }
    };
    match rng.usize_in(0, 5) {
        0 | 1 => Op::Post {
            src: wild_or(rng, ANY_SOURCE),
            tag: wild_or(rng, ANY_TAG),
        },
        2 | 3 => Op::Incoming {
            src: rng.i32_in(0, 3),
            tag: rng.i32_in(0, 3),
        },
        _ => Op::Probe {
            src: wild_or(rng, ANY_SOURCE),
            tag: wild_or(rng, ANY_TAG),
        },
    }
}

/// Build two identical receives (same post index in `capacity`).
fn recv_pair(
    stream: &Stream,
    src: i32,
    tag: i32,
    post_idx: usize,
) -> ((PostedRecv, Request), (PostedRecv, Request)) {
    let mk = || {
        let (req, completer) = Request::pair(stream);
        (
            PostedRecv {
                src,
                tag,
                // The post's identity, recoverable from a match result.
                capacity: 10_000 + post_idx,
                slot: RecvSlot::new(),
                completer,
            },
            req,
        )
    };
    (mk(), mk())
}

/// Payload for incoming message `idx`: the index, padded so `bytes()`
/// also discriminates between messages.
fn payload(idx: usize) -> Vec<u8> {
    let mut data = (idx as u64).to_ne_bytes().to_vec();
    data.resize(8 + idx % 5, 0xEE);
    data
}

fn unexpected_id(u: &Unexpected) -> (i32, i32, usize) {
    match u {
        Unexpected::Eager { src, tag, data } => {
            let idx = u64::from_ne_bytes(data[..8].try_into().unwrap()) as usize;
            (*src, *tag, idx)
        }
        Unexpected::Rts { .. } => panic!("test only sends eager"),
    }
}

#[test]
fn bucketed_matching_equals_linear_reference() {
    for seed in 0..256u64 {
        let mut rng = Rng::new(seed);
        let ops = rng.vec_in(0, 80, random_op);

        let stream = Stream::create();
        let mut fast = MatchState::new();
        let mut lin = LinearMatchState::new();
        let mut post_count = 0usize;
        let mut incoming_count = 0usize;

        for (step, op) in ops.iter().enumerate() {
            match *op {
                Op::Post { src, tag } => {
                    let idx = post_count;
                    post_count += 1;
                    let ((rf, _qf), (rl, _ql)) = recv_pair(&stream, src, tag, idx);
                    let hit_f = fast.post_recv(rf);
                    let hit_l = lin.post_recv(rl);
                    match (hit_f, hit_l) {
                        (None, None) => {}
                        (Some((recv_f, un_f)), Some((recv_l, un_l))) => {
                            assert_eq!(
                                unexpected_id(&un_f),
                                unexpected_id(&un_l),
                                "post consumed different unexpected msg \
                                 (seed {seed}, step {step})"
                            );
                            recv_f.completer.complete(Status::empty());
                            recv_l.completer.complete(Status::empty());
                        }
                        (f, l) => panic!(
                            "post divergence: bucketed matched {} / linear matched {} \
                             (seed {seed}, step {step})",
                            f.is_some(),
                            l.is_some()
                        ),
                    }
                }
                Op::Incoming { src, tag } => {
                    let idx = incoming_count;
                    incoming_count += 1;
                    let hit_f = fast.match_incoming(src, tag);
                    let hit_l = lin.match_incoming(src, tag);
                    match (hit_f, hit_l) {
                        (None, None) => {
                            fast.push_unexpected(Unexpected::Eager {
                                src,
                                tag,
                                data: payload(idx),
                            });
                            lin.push_unexpected(Unexpected::Eager {
                                src,
                                tag,
                                data: payload(idx),
                            });
                        }
                        (Some(recv_f), Some(recv_l)) => {
                            assert_eq!(
                                recv_f.capacity, recv_l.capacity,
                                "incoming matched different posted recv \
                                 (seed {seed}, step {step})"
                            );
                            recv_f.completer.complete(Status::empty());
                            recv_l.completer.complete(Status::empty());
                        }
                        (f, l) => panic!(
                            "incoming divergence: bucketed matched {} / linear \
                             matched {} (seed {seed}, step {step})",
                            f.is_some(),
                            l.is_some()
                        ),
                    }
                }
                Op::Probe { src, tag } => {
                    assert_eq!(
                        fast.probe_unexpected(src, tag),
                        lin.probe_unexpected(src, tag),
                        "probe divergence (seed {seed}, step {step})"
                    );
                }
            }
            assert_eq!(
                fast.posted_len(),
                lin.posted_len(),
                "seed {seed}, step {step}"
            );
            assert_eq!(
                fast.unexpected_len(),
                lin.unexpected_len(),
                "seed {seed}, step {step}"
            );
        }
    }
}

//! The tentpole's acceptance proof: persistent re-fires **never touch
//! the tag matcher**. The bucket-probe counters
//! (`match_bucket_hits` + `match_wildcard_hits`) must stay flat across
//! K re-fires of an established pair, and a one-shot pair run right
//! after — as a positive control — must move them.
//!
//! This lives in its own integration-test binary: the counters are
//! process-global, so any concurrently running test that sends ordinary
//! messages would pollute the flat window. Rank coordination inside the
//! measured window uses `std::sync::Barrier`, not `Comm::barrier` —
//! collective traffic goes through the matcher and would bump the very
//! counters under test.

use std::sync::atomic::Ordering;
use std::sync::Barrier;

use mpfa::mpi::{World, WorldConfig};

const K: usize = 64;
const TAG: i32 = 2;

#[test]
fn refires_leave_matcher_counters_flat() {
    let counters = mpfa::obs::global_counters();
    let probes = || {
        counters.match_bucket_hits.load(Ordering::Relaxed)
            + counters.match_wildcard_hits.load(Ordering::Relaxed)
    };

    let procs = World::init(WorldConfig::instant(2));
    let (p0, p1) = (procs[0].clone(), procs[1].clone());
    let gate = Barrier::new(2);
    let gate = &gate;

    std::thread::scope(|s| {
        // Rank 0: sender + the measuring rank.
        s.spawn(move || {
            let comm = p0.world_comm();
            let mut ps = comm.send_init_bytes(vec![0xEEu8; 256], 1, TAG).unwrap();

            // Round 0 absorbs the bind handshake and anything the world
            // bring-up matched; the flat window starts after it.
            let r = ps.start().unwrap();
            while !r.is_complete() {
                comm.stream().progress();
                std::thread::yield_now();
            }
            gate.wait(); // receiver finished round 0 too
            let before = probes();
            let refires_before = counters.persist_refires.load(Ordering::Relaxed);
            gate.wait();

            for _ in 0..K {
                let r = ps.start().unwrap();
                while !r.is_complete() {
                    comm.stream().progress();
                    std::thread::yield_now();
                }
            }
            gate.wait(); // receiver drained all K rounds
            assert_eq!(
                probes(),
                before,
                "a persistent re-fire entered the tag matcher"
            );
            assert!(
                counters.persist_refires.load(Ordering::Relaxed) >= refires_before + K as u64,
                "re-fires were not counted as re-fires"
            );
            gate.wait();

            // Positive control: the same traffic shape as one-shots
            // must probe the matcher.
            let r = comm.isend_bytes(vec![0xEEu8; 256], 1, TAG + 1).unwrap();
            while !r.is_complete() {
                comm.stream().progress();
                std::thread::yield_now();
            }
            gate.wait(); // one-shot round observed on both sides
            assert!(
                probes() > before,
                "the control one-shot pair never probed the matcher — \
                 the flat assertion above proves nothing"
            );
        });

        // Rank 1: receiver.
        s.spawn(move || {
            let comm = p1.world_comm();
            let mut pr = comm.recv_init_bytes(256, 0, TAG).unwrap();

            pr.start().unwrap();
            let req = pr.request().unwrap();
            while !req.is_complete() {
                comm.stream().progress();
                std::thread::yield_now();
            }
            pr.wait().unwrap();
            gate.wait(); // round 0 done everywhere
            gate.wait(); // snapshot taken

            for _ in 0..K {
                pr.start().unwrap();
                let req = pr.request().unwrap();
                while !req.is_complete() {
                    comm.stream().progress();
                    std::thread::yield_now();
                }
                pr.wait().unwrap();
            }
            gate.wait(); // flat window closes
            gate.wait(); // flat assertion done

            let r = comm.irecv_bytes(256, 0, TAG + 1).unwrap();
            while !r.is_complete() {
                comm.stream().progress();
                std::thread::yield_now();
            }
            r.take();
            gate.wait();
        });
    });
}

//! Randomized-property tests for the second wave of collectives: scans,
//! reduce-scatter, ring allreduce, scatter-allgather bcast, and the
//! variable-count family — all against serial references on the
//! cooperative driver. Cases are generated from fixed seeds (see
//! `common::Rng`).

mod common;

use common::{Coop, Rng};
use mpfa::mpi::{Op, WorldConfig};

const MAX_SWEEPS: u64 = 10_000_000;

#[test]
fn scan_matches_prefix_sums() {
    for seed in 0..20u64 {
        let mut rng = Rng::new(seed);
        let ranks = rng.usize_in(1, 8);
        let data = rng.vec_in(1, 8, |r| r.i64_in(-100, 100));

        let w = Coop::new(WorldConfig::instant(ranks));
        let comms = w.comms();
        let value = |r: usize, i: usize| data[i].wrapping_mul(r as i64 + 1);
        let futs: Vec<_> = comms
            .iter()
            .map(|c| {
                let mine: Vec<i64> = (0..data.len())
                    .map(|i| value(c.rank() as usize, i))
                    .collect();
                c.iscan(&mine, Op::Sum).unwrap()
            })
            .collect();
        w.drive(|| futs.iter().all(|f| f.is_complete()), MAX_SWEEPS);
        for (r, f) in futs.into_iter().enumerate() {
            let got = f.take();
            for (i, v) in got.iter().enumerate() {
                let expect: i64 = (0..=r).map(|rr| value(rr, i)).sum();
                assert_eq!(*v, expect, "rank {r} index {i} (seed {seed})");
            }
        }
    }
}

#[test]
fn exscan_excludes_self() {
    for case in 0..20u64 {
        let mut rng = Rng::new(case);
        let ranks = rng.usize_in(2, 8);
        let seed = rng.i32_in(-50, 50);

        let w = Coop::new(WorldConfig::instant(ranks));
        let comms = w.comms();
        let futs: Vec<_> = comms
            .iter()
            .map(|c| c.iexscan(&[seed + c.rank()], Op::Sum).unwrap())
            .collect();
        w.drive(|| futs.iter().all(|f| f.is_complete()), MAX_SWEEPS);
        for (r, f) in futs.into_iter().enumerate() {
            let got = f.take();
            if r == 0 {
                assert!(got.is_empty(), "case {case}");
            } else {
                let expect: i32 = (0..r as i32).map(|rr| seed + rr).sum();
                assert_eq!(got, vec![expect], "case {case}");
            }
        }
    }
}

#[test]
fn reduce_scatter_equals_allreduce_block() {
    for case in 0..20u64 {
        let mut rng = Rng::new(case);
        let ranks = rng.usize_in(1, 7);
        let count = rng.usize_in(1, 5);
        let seed = rng.next_u64() as i32;

        let w = Coop::new(WorldConfig::instant(ranks));
        let comms = w.comms();
        let value = |r: usize, i: usize| {
            (seed as i64)
                .wrapping_add((r as i64) << 16)
                .wrapping_add(i as i64)
        };
        let rs: Vec<_> = comms
            .iter()
            .map(|c| {
                let mine: Vec<i64> = (0..ranks * count)
                    .map(|i| value(c.rank() as usize, i))
                    .collect();
                c.ireduce_scatter_block(&mine, count, Op::Sum).unwrap()
            })
            .collect();
        w.drive(|| rs.iter().all(|f| f.is_complete()), MAX_SWEEPS);
        for (r, f) in rs.into_iter().enumerate() {
            let got = f.take();
            for (k, g) in got.iter().enumerate() {
                let i = r * count + k;
                let expect: i64 = (0..ranks).map(|rr| value(rr, i)).sum();
                assert_eq!(*g, expect, "rank {r} block elem {k} (case {case})");
            }
        }
    }
}

#[test]
fn ring_allreduce_equals_rd() {
    for seed in 0..20u64 {
        let mut rng = Rng::new(seed);
        let ranks = rng.usize_in(2, 7);
        let data = rng.vec_in(1, 30, |r| r.i32_in(-1000, 1000));

        let w = Coop::new(WorldConfig::instant(ranks));
        let comms = w.comms();
        let mine = |r: usize| -> Vec<i32> { data.iter().map(|v| v ^ (r as i32)).collect() };

        let rd: Vec<_> = comms
            .iter()
            .map(|c| c.iallreduce(&mine(c.rank() as usize), Op::Sum).unwrap())
            .collect();
        w.drive(|| rd.iter().all(|f| f.is_complete()), MAX_SWEEPS);
        let rd: Vec<Vec<i32>> = rd.into_iter().map(|f| f.take()).collect();

        let ring: Vec<_> = comms
            .iter()
            .map(|c| {
                c.iallreduce_ring(&mine(c.rank() as usize), Op::Sum)
                    .unwrap()
            })
            .collect();
        w.drive(|| ring.iter().all(|f| f.is_complete()), MAX_SWEEPS);
        for (a, b) in rd.into_iter().zip(ring) {
            assert_eq!(a, b.take(), "seed {seed}");
        }
    }
}

#[test]
fn sag_bcast_equals_binomial() {
    for case in 0..20u64 {
        let mut rng = Rng::new(case);
        let ranks = rng.usize_in(2, 7);
        let count = rng.usize_in(1, 40);
        let root = (rng.next_u64() as usize % ranks) as i32;

        let payload: Vec<i32> = (0..count as i32).map(|i| i.wrapping_mul(37)).collect();
        let w = Coop::new(WorldConfig::instant(ranks));
        let comms = w.comms();
        let futs: Vec<_> = comms
            .iter()
            .map(|c| {
                if c.rank() == root {
                    c.ibcast_sag(Some(&payload), count, root).unwrap()
                } else {
                    c.ibcast_sag::<i32>(None, count, root).unwrap()
                }
            })
            .collect();
        w.drive(|| futs.iter().all(|f| f.is_complete()), MAX_SWEEPS);
        for f in futs {
            assert_eq!(f.take(), payload.clone(), "case {case}");
        }
    }
}

#[test]
fn gatherv_scatterv_are_inverses() {
    for case in 0..20u64 {
        let mut rng = Rng::new(case);
        let ranks = rng.usize_in(1, 6);
        let counts_seed = rng.vec_in(1, 6, |r| r.usize_in(0, 5));

        let w = Coop::new(WorldConfig::instant(ranks));
        let comms = w.comms();
        let counts: Vec<usize> = (0..ranks)
            .map(|r| counts_seed[r % counts_seed.len()])
            .collect();

        // gatherv to rank 0…
        let g: Vec<_> = comms
            .iter()
            .map(|c| {
                let r = c.rank() as usize;
                let mine: Vec<i32> = (0..counts[r] as i32)
                    .map(|i| (r as i32) * 100 + i)
                    .collect();
                c.igatherv(&mine, &counts, 0).unwrap()
            })
            .collect();
        w.drive(|| g.iter().all(|f| f.is_complete()), MAX_SWEEPS);
        let gathered = g.into_iter().map(|f| f.take()).collect::<Vec<_>>();
        let root_view = gathered[0].clone();
        let total: usize = counts.iter().sum();
        assert_eq!(root_view.len(), total, "case {case}");

        // …then scatterv back: each rank recovers its original block.
        let s: Vec<_> = comms
            .iter()
            .map(|c| {
                if c.rank() == 0 {
                    c.iscatterv(Some(&root_view), &counts, 0).unwrap()
                } else {
                    c.iscatterv::<i32>(None, &counts, 0).unwrap()
                }
            })
            .collect();
        w.drive(|| s.iter().all(|f| f.is_complete()), MAX_SWEEPS);
        for (r, f) in s.into_iter().enumerate() {
            let got = f.take();
            let expect: Vec<i32> = (0..counts[r] as i32)
                .map(|i| (r as i32) * 100 + i)
                .collect();
            assert_eq!(got, expect, "rank {r} (case {case})");
        }
    }
}

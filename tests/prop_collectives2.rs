//! Property-based tests for the second wave of collectives: scans,
//! reduce-scatter, ring allreduce, scatter-allgather bcast, and the
//! variable-count family — all against serial references on the
//! cooperative driver.

mod common;

use common::Coop;
use mpfa::mpi::{Op, WorldConfig};
use proptest::prelude::*;

const MAX_SWEEPS: u64 = 10_000_000;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(20))]

    #[test]
    fn scan_matches_prefix_sums(
        ranks in 1usize..8,
        data in proptest::collection::vec(-100i64..100, 1..8),
    ) {
        let w = Coop::new(WorldConfig::instant(ranks));
        let comms = w.comms();
        let value = |r: usize, i: usize| data[i].wrapping_mul(r as i64 + 1);
        let futs: Vec<_> = comms
            .iter()
            .map(|c| {
                let mine: Vec<i64> =
                    (0..data.len()).map(|i| value(c.rank() as usize, i)).collect();
                c.iscan(&mine, Op::Sum).unwrap()
            })
            .collect();
        w.drive(|| futs.iter().all(|f| f.is_complete()), MAX_SWEEPS);
        for (r, f) in futs.into_iter().enumerate() {
            let got = f.take();
            for (i, v) in got.iter().enumerate() {
                let expect: i64 = (0..=r).map(|rr| value(rr, i)).sum();
                prop_assert_eq!(*v, expect, "rank {} index {}", r, i);
            }
        }
    }

    #[test]
    fn exscan_excludes_self(
        ranks in 2usize..8,
        seed in -50i32..50,
    ) {
        let w = Coop::new(WorldConfig::instant(ranks));
        let comms = w.comms();
        let futs: Vec<_> = comms
            .iter()
            .map(|c| c.iexscan(&[seed + c.rank()], Op::Sum).unwrap())
            .collect();
        w.drive(|| futs.iter().all(|f| f.is_complete()), MAX_SWEEPS);
        for (r, f) in futs.into_iter().enumerate() {
            let got = f.take();
            if r == 0 {
                prop_assert!(got.is_empty());
            } else {
                let expect: i32 = (0..r as i32).map(|rr| seed + rr).sum();
                prop_assert_eq!(got, vec![expect]);
            }
        }
    }

    #[test]
    fn reduce_scatter_equals_allreduce_block(
        ranks in 1usize..7,
        count in 1usize..5,
        seed in any::<i32>(),
    ) {
        let w = Coop::new(WorldConfig::instant(ranks));
        let comms = w.comms();
        let value = |r: usize, i: usize| {
            (seed as i64).wrapping_add((r as i64) << 16).wrapping_add(i as i64)
        };
        let rs: Vec<_> = comms
            .iter()
            .map(|c| {
                let mine: Vec<i64> =
                    (0..ranks * count).map(|i| value(c.rank() as usize, i)).collect();
                c.ireduce_scatter_block(&mine, count, Op::Sum).unwrap()
            })
            .collect();
        w.drive(|| rs.iter().all(|f| f.is_complete()), MAX_SWEEPS);
        for (r, f) in rs.into_iter().enumerate() {
            let got = f.take();
            for (k, g) in got.iter().enumerate() {
                let i = r * count + k;
                let expect: i64 = (0..ranks).map(|rr| value(rr, i)).sum();
                prop_assert_eq!(*g, expect, "rank {} block elem {}", r, k);
            }
        }
    }

    #[test]
    fn ring_allreduce_equals_rd(
        ranks in 2usize..7,
        data in proptest::collection::vec(-1000i32..1000, 1..30),
    ) {
        let w = Coop::new(WorldConfig::instant(ranks));
        let comms = w.comms();
        let mine = |r: usize| -> Vec<i32> { data.iter().map(|v| v ^ (r as i32)).collect() };

        let rd: Vec<_> = comms
            .iter()
            .map(|c| c.iallreduce(&mine(c.rank() as usize), Op::Sum).unwrap())
            .collect();
        w.drive(|| rd.iter().all(|f| f.is_complete()), MAX_SWEEPS);
        let rd: Vec<Vec<i32>> = rd.into_iter().map(|f| f.take()).collect();

        let ring: Vec<_> = comms
            .iter()
            .map(|c| c.iallreduce_ring(&mine(c.rank() as usize), Op::Sum).unwrap())
            .collect();
        w.drive(|| ring.iter().all(|f| f.is_complete()), MAX_SWEEPS);
        for (a, b) in rd.into_iter().zip(ring) {
            prop_assert_eq!(a, b.take());
        }
    }

    #[test]
    fn sag_bcast_equals_binomial(
        ranks in 2usize..7,
        count in 1usize..40,
        root_pick in any::<usize>(),
    ) {
        let root = (root_pick % ranks) as i32;
        let payload: Vec<i32> = (0..count as i32).map(|i| i.wrapping_mul(37)).collect();
        let w = Coop::new(WorldConfig::instant(ranks));
        let comms = w.comms();
        let futs: Vec<_> = comms
            .iter()
            .map(|c| {
                if c.rank() == root {
                    c.ibcast_sag(Some(&payload), count, root).unwrap()
                } else {
                    c.ibcast_sag::<i32>(None, count, root).unwrap()
                }
            })
            .collect();
        w.drive(|| futs.iter().all(|f| f.is_complete()), MAX_SWEEPS);
        for f in futs {
            prop_assert_eq!(f.take(), payload.clone());
        }
    }

    #[test]
    fn gatherv_scatterv_are_inverses(
        ranks in 1usize..6,
        counts_seed in proptest::collection::vec(0usize..5, 1..6),
    ) {
        let w = Coop::new(WorldConfig::instant(ranks));
        let comms = w.comms();
        let counts: Vec<usize> = (0..ranks).map(|r| counts_seed[r % counts_seed.len()]).collect();

        // gatherv to rank 0…
        let g: Vec<_> = comms
            .iter()
            .map(|c| {
                let r = c.rank() as usize;
                let mine: Vec<i32> = (0..counts[r] as i32).map(|i| (r as i32) * 100 + i).collect();
                c.igatherv(&mine, &counts, 0).unwrap()
            })
            .collect();
        w.drive(|| g.iter().all(|f| f.is_complete()), MAX_SWEEPS);
        let gathered = g.into_iter().map(|f| f.take()).collect::<Vec<_>>();
        let root_view = gathered[0].clone();
        let total: usize = counts.iter().sum();
        prop_assert_eq!(root_view.len(), total);

        // …then scatterv back: each rank recovers its original block.
        let s: Vec<_> = comms
            .iter()
            .map(|c| {
                if c.rank() == 0 {
                    c.iscatterv(Some(&root_view), &counts, 0).unwrap()
                } else {
                    c.iscatterv::<i32>(None, &counts, 0).unwrap()
                }
            })
            .collect();
        w.drive(|| s.iter().all(|f| f.is_complete()), MAX_SWEEPS);
        for (r, f) in s.into_iter().enumerate() {
            let got = f.take();
            let expect: Vec<i32> = (0..counts[r] as i32).map(|i| (r as i32) * 100 + i).collect();
            prop_assert_eq!(got, expect, "rank {}", r);
        }
    }
}

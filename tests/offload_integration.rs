//! Integration: device copies, storage I/O, and messaging collated under
//! the same progress loops (paper §2.6), across ranks.

mod common;

use common::run_ranks;
use mpfa::core::sync::Mutex;
use mpfa::core::Request;
use mpfa::mpi::{Op, WorldConfig};
use mpfa::offload::{
    device::{recv_to_device, send_from_device},
    CopyEngine, DeviceBuffer, DeviceConfig, Storage, StorageConfig,
};
use std::sync::Arc;

#[test]
fn gpu_aware_ring_exchange() {
    let n = 3;
    let results = run_ranks(WorldConfig::instant(n), move |proc| {
        let comm = proc.world_comm();
        let engine = CopyEngine::register(comm.stream(), DeviceConfig::instant());
        let rank = comm.rank();
        let size = comm.size() as i32;
        let right = (rank + 1) % size;
        let left = (rank - 1).rem_euclid(size);

        let mine = DeviceBuffer::alloc(1000);
        engine.h2d(&vec![rank as u8; 1000], &mine, 0).wait();
        let incoming = DeviceBuffer::alloc(1000);

        let recv = recv_to_device(&comm, &engine, &incoming, 0, 1000, left, 1).unwrap();
        let send = send_from_device(&comm, &engine, &mine, 0..1000, right, 1).unwrap();
        Request::wait_all(&[send, recv]);

        incoming.debug_snapshot()[0]
    });
    for (rank, v) in results.iter().enumerate() {
        assert_eq!(*v as usize, (rank + n - 1) % n);
    }
}

#[test]
fn checkpoint_restart_roundtrip() {
    // Write a distributed checkpoint, then "restart" and verify via a
    // collective checksum. Storage volumes are per-rank (like node-local
    // burst buffers).
    let results = run_ranks(WorldConfig::instant(4), |proc| {
        let comm = proc.world_comm();
        let volume = Storage::register(comm.stream(), StorageConfig::instant());
        let rank = comm.rank();

        let data: Vec<u8> = (0..256)
            .map(|i| (i as u8).wrapping_mul(rank as u8 + 1))
            .collect();
        volume.iwrite("ckpt", 0, &data).wait();

        // Restart: read back asynchronously, overlapped with a barrier.
        let landing = Arc::new(Mutex::new(Vec::new()));
        let read = volume.iread("ckpt", 0, 256, landing.clone());
        comm.barrier().unwrap();
        read.wait();
        let restored = landing.lock().clone();
        assert_eq!(restored, data);

        // Cross-rank agreement on the restored bytes.
        let local_sum: i64 = restored.iter().map(|&b| b as i64).sum();
        comm.allreduce(&[local_sum], Op::Sum).unwrap()[0]
    });
    let expect: i64 = (0..4i64)
        .map(|r| {
            (0..256)
                .map(|i| ((i as u8).wrapping_mul(r as u8 + 1)) as i64)
                .sum::<i64>()
        })
        .sum();
    for v in results {
        assert_eq!(v, expect);
    }
}

#[test]
fn three_subsystems_one_wait_loop() {
    let results = run_ranks(WorldConfig::instant(2), |proc| {
        let comm = proc.world_comm();
        let stream = comm.stream().clone();
        let engine = CopyEngine::register(&stream, DeviceConfig::instant());
        let volume = Storage::register(&stream, StorageConfig::instant());
        let peer = 1 - comm.rank();

        // Issue one operation in each subsystem, all pending at once.
        let dev = DeviceBuffer::alloc(64);
        let copy = engine.h2d(&[1u8; 64], &dev, 0);
        let write = volume.iwrite("obj", 0, &[2u8; 64]);
        let recv = comm.irecv::<u8>(64, peer, 1).unwrap();
        let send = comm.isend(&[3u8; 64], peer, 1).unwrap();

        // One wait over all four requests; the collated engine sorts out
        // which subsystem each belongs to.
        let statuses = Request::wait_all(&[copy, write, send, recv.request()]);
        assert!(statuses.iter().all(|s| !s.cancelled));
        let (data, _) = recv.take();
        assert_eq!(data, vec![3u8; 64]);
        // Every subsystem's hook actually ran.
        let stats = stream.stats();
        assert!(stats.hook_polls[mpfa::core::SubsystemClass::DatatypeEngine as usize] > 0);
        assert!(stats.hook_polls[mpfa::core::SubsystemClass::Other as usize] > 0);
        true
    });
    assert!(results.iter().all(|&ok| ok));
}

//! Shared harness for the integration tests.
#![allow(dead_code)] // each test binary uses a subset of the helpers

use mpfa::mpi::{Comm, Proc, World, WorldConfig};

/// Run `f(proc)` on one thread per rank; collect results in rank order.
pub fn run_ranks<R: Send>(cfg: WorldConfig, f: impl Fn(Proc) -> R + Send + Sync) -> Vec<R> {
    let procs = World::init(cfg);
    let f = &f;
    std::thread::scope(|s| {
        let handles: Vec<_> = procs.into_iter().map(|p| s.spawn(move || f(p))).collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("rank thread panicked"))
            .collect()
    })
}

/// Cooperative (single-thread) world: all ranks progressed round-robin.
/// Use only nonblocking operations through this.
pub struct Coop {
    pub procs: Vec<Proc>,
}

impl Coop {
    pub fn new(cfg: WorldConfig) -> Coop {
        Coop { procs: World::init(cfg) }
    }

    pub fn comms(&self) -> Vec<Comm> {
        self.procs.iter().map(Proc::world_comm).collect()
    }

    pub fn poll_all(&self) {
        for p in &self.procs {
            p.default_stream().progress();
        }
    }

    /// Sweep until `cond`; panics after `max_sweeps` (deadlock guard).
    pub fn drive(&self, mut cond: impl FnMut() -> bool, max_sweeps: u64) {
        let mut sweeps = 0;
        while !cond() {
            self.poll_all();
            sweeps += 1;
            assert!(sweeps < max_sweeps, "cooperative drive did not converge");
        }
    }
}

//! Shared harness for the integration tests.
#![allow(dead_code)] // each test binary uses a subset of the helpers

use mpfa::mpi::{Comm, Proc, World, WorldConfig};

/// Run `f(proc)` on one thread per rank; collect results in rank order.
pub fn run_ranks<R: Send>(cfg: WorldConfig, f: impl Fn(Proc) -> R + Send + Sync) -> Vec<R> {
    let procs = World::init(cfg);
    let f = &f;
    std::thread::scope(|s| {
        let handles: Vec<_> = procs.into_iter().map(|p| s.spawn(move || f(p))).collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("rank thread panicked"))
            .collect()
    })
}

/// Small deterministic PRNG (splitmix64) for randomized-case tests.
///
/// The property tests iterate a fixed number of seeded cases, so failures
/// reproduce exactly: re-run with the printed seed.
pub struct Rng(u64);

impl Rng {
    pub fn new(seed: u64) -> Rng {
        Rng(seed.wrapping_add(0x9e37_79b9_7f4a_7c15))
    }

    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform in `[lo, hi)`.
    pub fn usize_in(&mut self, lo: usize, hi: usize) -> usize {
        assert!(lo < hi);
        lo + (self.next_u64() as usize) % (hi - lo)
    }

    /// Uniform in `[lo, hi)`.
    pub fn i64_in(&mut self, lo: i64, hi: i64) -> i64 {
        assert!(lo < hi);
        lo + (self.next_u64() % (hi - lo) as u64) as i64
    }

    /// Uniform in `[lo, hi)`.
    pub fn i32_in(&mut self, lo: i32, hi: i32) -> i32 {
        self.i64_in(lo as i64, hi as i64) as i32
    }

    /// A vec of `len` values of `f(self)`.
    pub fn vec_with<T>(&mut self, len: usize, mut f: impl FnMut(&mut Rng) -> T) -> Vec<T> {
        (0..len).map(|_| f(self)).collect()
    }

    /// A vec of random length in `[lo, hi)` filled with `f(self)`.
    pub fn vec_in<T>(&mut self, lo: usize, hi: usize, f: impl FnMut(&mut Rng) -> T) -> Vec<T> {
        let len = self.usize_in(lo, hi);
        self.vec_with(len, f)
    }
}

/// Cooperative (single-thread) world: all ranks progressed round-robin.
/// Use only nonblocking operations through this.
pub struct Coop {
    pub procs: Vec<Proc>,
}

impl Coop {
    pub fn new(cfg: WorldConfig) -> Coop {
        Coop {
            procs: World::init(cfg),
        }
    }

    pub fn comms(&self) -> Vec<Comm> {
        self.procs.iter().map(Proc::world_comm).collect()
    }

    pub fn poll_all(&self) {
        for p in &self.procs {
            p.default_stream().progress();
        }
    }

    /// Sweep until `cond`; panics after `max_sweeps` (deadlock guard).
    pub fn drive(&self, mut cond: impl FnMut() -> bool, max_sweeps: u64) {
        let mut sweeps = 0;
        while !cond() {
            self.poll_all();
            sweeps += 1;
            assert!(sweeps < max_sweeps, "cooperative drive did not converge");
        }
    }
}

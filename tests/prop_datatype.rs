//! Randomized-property tests for the datatype layer: byte round-trips and
//! pack/unpack invariants for arbitrary layouts. Cases are generated from
//! fixed seeds (see `common::Rng`) so every run is deterministic.

mod common;

use common::Rng;
use mpfa::mpi::datatype::{from_bytes, read_into, to_bytes, Layout};

#[test]
fn bytes_roundtrip_i32() {
    for seed in 0..32u64 {
        let mut rng = Rng::new(seed);
        let data: Vec<i32> = rng.vec_in(0, 200, |r| r.next_u64() as i32);
        let bytes = to_bytes(&data);
        assert_eq!(bytes.len(), data.len() * 4);
        let back: Vec<i32> = from_bytes(&bytes);
        assert_eq!(back, data, "seed {seed}");
    }
}

#[test]
fn bytes_roundtrip_f64() {
    for seed in 0..32u64 {
        let mut rng = Rng::new(seed);
        // Raw bit patterns: exercises NaNs, infinities, subnormals.
        let data: Vec<f64> = rng.vec_in(0, 200, |r| f64::from_bits(r.next_u64()));
        let bytes = to_bytes(&data);
        let back: Vec<f64> = from_bytes(&bytes);
        // Bit-exact comparison (NaNs preserved).
        assert_eq!(back.len(), data.len());
        for (a, b) in back.iter().zip(&data) {
            assert_eq!(a.to_bits(), b.to_bits(), "seed {seed}");
        }
    }
}

#[test]
fn bytes_roundtrip_u16() {
    for seed in 0..32u64 {
        let mut rng = Rng::new(seed);
        let data: Vec<u16> = rng.vec_in(0, 300, |r| r.next_u64() as u16);
        let bytes = to_bytes(&data);
        let mut out = vec![0u16; data.len()];
        read_into(&bytes, &mut out);
        assert_eq!(out, data, "seed {seed}");
    }
}

#[test]
fn vector_pack_unpack_roundtrip() {
    for case in 0..64u64 {
        let mut rng = Rng::new(case);
        let count = rng.usize_in(0, 20);
        let blocklen = rng.usize_in(1, 8);
        let extra_stride = rng.usize_in(0, 8);
        let seed = rng.next_u64();

        let stride = blocklen + extra_stride;
        let layout = Layout::Vector {
            count,
            blocklen,
            stride,
        };
        let buf_len = layout.extent() + 3; // slack beyond the extent
        let data: Vec<i64> = (0..buf_len as i64)
            .map(|i| i.wrapping_mul(seed as i64 | 1))
            .collect();

        let packed = layout.pack(&data);
        assert_eq!(packed.len(), layout.element_count());

        let mut restored = vec![0i64; buf_len];
        layout.unpack(&packed, &mut restored);

        // Selected positions match the original; gaps are zero.
        let mut selected = vec![false; buf_len];
        for b in 0..count {
            for j in 0..blocklen {
                selected[b * stride + j] = true;
            }
        }
        for i in 0..layout.extent() {
            if selected[i] {
                assert_eq!(restored[i], data[i], "selected index {i} (case {case})");
            } else {
                assert_eq!(restored[i], 0, "gap index {i} (case {case})");
            }
        }
    }
}

#[test]
fn pack_is_order_preserving() {
    for case in 0..64u64 {
        let mut rng = Rng::new(case);
        let count = rng.usize_in(1, 16);
        let blocklen = rng.usize_in(1, 4);
        let extra = rng.usize_in(0, 4);

        let stride = blocklen + extra;
        let layout = Layout::Vector {
            count,
            blocklen,
            stride,
        };
        let data: Vec<i32> = (0..layout.extent() as i32).collect();
        let packed = layout.pack(&data);
        // Packed order must be monotonically increasing (source order).
        for w in packed.windows(2) {
            assert!(w[0] < w[1], "case {case}");
        }
    }
}

#[test]
fn contiguous_pack_is_prefix() {
    for case in 0..64u64 {
        let mut rng = Rng::new(case);
        let count = rng.usize_in(0, 50);
        let slack = rng.usize_in(0, 10);

        let layout = Layout::Contiguous { count };
        let data: Vec<u8> = (0..(count + slack) as u32)
            .map(|i| (i % 256) as u8)
            .collect();
        assert_eq!(layout.pack(&data), data[..count].to_vec(), "case {case}");
    }
}

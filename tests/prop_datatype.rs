//! Property-based tests for the datatype layer: byte round-trips and
//! pack/unpack invariants for arbitrary layouts.

use mpfa::mpi::datatype::{from_bytes, read_into, to_bytes, Layout};
use proptest::prelude::*;

proptest! {
    #[test]
    fn bytes_roundtrip_i32(data in proptest::collection::vec(any::<i32>(), 0..200)) {
        let bytes = to_bytes(&data);
        prop_assert_eq!(bytes.len(), data.len() * 4);
        let back: Vec<i32> = from_bytes(&bytes);
        prop_assert_eq!(back, data);
    }

    #[test]
    fn bytes_roundtrip_f64(data in proptest::collection::vec(any::<f64>(), 0..200)) {
        let bytes = to_bytes(&data);
        let back: Vec<f64> = from_bytes(&bytes);
        // Bit-exact comparison (NaNs preserved).
        prop_assert_eq!(back.len(), data.len());
        for (a, b) in back.iter().zip(&data) {
            prop_assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn bytes_roundtrip_u16(data in proptest::collection::vec(any::<u16>(), 0..300)) {
        let bytes = to_bytes(&data);
        let mut out = vec![0u16; data.len()];
        read_into(&bytes, &mut out);
        prop_assert_eq!(out, data);
    }

    #[test]
    fn vector_pack_unpack_roundtrip(
        count in 0usize..20,
        blocklen in 1usize..8,
        extra_stride in 0usize..8,
        seed in any::<u64>(),
    ) {
        let stride = blocklen + extra_stride;
        let layout = Layout::Vector { count, blocklen, stride };
        let buf_len = layout.extent() + 3; // slack beyond the extent
        let data: Vec<i64> = (0..buf_len as i64).map(|i| i.wrapping_mul(seed as i64 | 1)).collect();

        let packed = layout.pack(&data);
        prop_assert_eq!(packed.len(), layout.element_count());

        let mut restored = vec![0i64; buf_len];
        layout.unpack(&packed, &mut restored);

        // Selected positions match the original; gaps are zero.
        let mut selected = vec![false; buf_len];
        for b in 0..count {
            for j in 0..blocklen {
                selected[b * stride + j] = true;
            }
        }
        for i in 0..layout.extent() {
            if selected[i] {
                prop_assert_eq!(restored[i], data[i], "selected index {}", i);
            } else {
                prop_assert_eq!(restored[i], 0, "gap index {}", i);
            }
        }
    }

    #[test]
    fn pack_is_order_preserving(
        count in 1usize..16,
        blocklen in 1usize..4,
        extra in 0usize..4,
    ) {
        let stride = blocklen + extra;
        let layout = Layout::Vector { count, blocklen, stride };
        let data: Vec<i32> = (0..layout.extent() as i32).collect();
        let packed = layout.pack(&data);
        // Packed order must be monotonically increasing (source order).
        for w in packed.windows(2) {
            prop_assert!(w[0] < w[1]);
        }
    }

    #[test]
    fn contiguous_pack_is_prefix(count in 0usize..50, slack in 0usize..10) {
        let layout = Layout::Contiguous { count };
        let data: Vec<u8> = (0..(count + slack) as u32).map(|i| (i % 256) as u8).collect();
        prop_assert_eq!(layout.pack(&data), data[..count].to_vec());
    }
}

#!/usr/bin/env bash
# Regenerate every figure and ablation of EXPERIMENTS.md.
# Usage: scripts/run_experiments.sh [output-dir]
set -euo pipefail
cd "$(dirname "$0")/.."
OUT="${1:-results}"
mkdir -p "$OUT"

cargo build -p mpfa-bench --release

for bin in fig07 fig08 fig09 fig10 fig11 fig12 fig13 \
           abl_collation abl_overlap abl_baselines abl_modes abl_algos; do
    echo "=== $bin ==="
    ./target/release/$bin | tee "$OUT/$bin.txt"
    echo
done

echo "all outputs in $OUT/"
